//! The experiment implementations (E1–E9); see `DESIGN.md` for the
//! index mapping each experiment to the paper artifact it reproduces.
//!
//! Every experiment has a `eN_*` data function (returning plain
//! structs, used by tests and the Criterion benches) and an
//! `eN_render` function producing the table the `report` binary
//! prints.

use crate::table::{f2, f3, Table};
use crate::toy::{hazard_program, toy_plan};
use autopipe_dlx::branchy::{
    branchy_program, branchy_synth_options, build_branchy_spec, Predictor,
};
use autopipe_dlx::machine::{dlx_interlock_options, dlx_interrupt_options, load_program};
use autopipe_dlx::workload::{random_program, HazardProfile};
use autopipe_dlx::{build_dlx_spec, dlx_synth_options, DlxConfig, Instr};
use autopipe_hdl::NetlistStats;
use autopipe_psm::SequentialMachine;
use autopipe_synth::{
    ForwardingSpec, MuxTopology, PipelineSynthesizer, PipelinedMachine, SynthOptions,
};
use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
use autopipe_verify::equiv::retirement_miter;
use autopipe_verify::{check_obligations, Cosim};
use std::time::Instant;

// ---------------------------------------------------------------------
// E1 — Table 1: sequential scheduling.
// ---------------------------------------------------------------------

/// The update-enable pattern of the sequential 3-stage machine.
pub fn e1_data(cycles: usize) -> Vec<Vec<bool>> {
    let mut m = SequentialMachine::new(toy_plan(&hazard_program())).expect("elaborates");
    m.ue_table(cycles)
}

/// Renders Table 1.
pub fn e1_render() -> String {
    let rows = e1_data(9);
    let mut t = Table::new(vec!["cycle", "ue_0", "ue_1", "ue_2"]);
    for (cycle, row) in rows.iter().enumerate() {
        t.row(vec![
            cycle.to_string(),
            u8::from(row[0]).to_string(),
            u8::from(row[1]).to_string(),
            u8::from(row[2]).to_string(),
        ]);
    }
    format!(
        "E1 / Table 1 — sequential scheduling of a three-stage pipeline\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// E2 — Figure 1: register-file write interface.
// ---------------------------------------------------------------------

/// Describes the synthesized write interface of the toy machine's
/// 4-entry register file (α = 2), i.e. the paper's Figure 1 signals.
pub fn e2_render() -> String {
    let plan = toy_plan(&hazard_program());
    let m = SequentialMachine::new(plan).expect("elaborates");
    let nl = m.netlist();
    let mut out =
        String::from("E2 / Figure 1 — register file write interface (4 registers, alpha = 2)\n");
    for mem in nl.mem_ids() {
        let info = nl.memory_info(mem);
        if info.name != "RF" {
            continue;
        }
        out.push_str(&format!(
            "  file `{}`: {} entries x {} bits, {} write port(s)\n",
            info.name,
            info.entries(),
            info.data_width,
            info.write_ports.len()
        ));
        for (i, p) in info.write_ports.iter().enumerate() {
            out.push_str(&format!(
                "    port {i}: Din[{}] = {},  Aw[{}] = {},  we = {} (gated by ue of the write stage)\n",
                nl.width(p.data),
                p.data,
                nl.width(p.addr),
                p.addr,
                p.enable,
            ));
        }
    }
    // The precomputed Rwe/Rwa pipeline registers.
    let pipes: Vec<String> = nl
        .registers()
        .iter()
        .filter(|r| r.name.starts_with("RF.w"))
        .map(|r| format!("{}[{}]", r.name, r.width))
        .collect();
    out.push_str(&format!(
        "  precomputed write controls (Rwe.j / Rwa.j): {}\n",
        pipes.join(", ")
    ));
    out
}

// ---------------------------------------------------------------------
// E3 — Figure 2: the DLX forwarding hardware.
// ---------------------------------------------------------------------

/// Builds the case-study DLX pipeline.
pub fn dlx_pipeline(options: SynthOptions) -> PipelinedMachine {
    let plan = build_dlx_spec(DlxConfig::default())
        .expect("spec builds")
        .plan()
        .expect("plans");
    PipelineSynthesizer::new(options)
        .run(&plan)
        .expect("synthesizes")
}

/// Renders the generated forwarding structure (Figure 2).
pub fn e3_render() -> String {
    let pm = dlx_pipeline(dlx_synth_options());
    let mut out = String::from("E3 / Figure 2 — generated forwarding hardware, five-stage DLX\n");
    out.push_str(&format!("{}", pm.report));
    out.push_str("  per-operand hit signals (full_j AND GPRwe.j AND addr compare):\n");
    for port in ["GPRa", "GPRb"] {
        let hits: Vec<String> = [2usize, 3, 4]
            .iter()
            .map(|j| format!("{port}_hit[{j}]"))
            .collect();
        out.push_str(&format!(
            "    g_1_{port} <- mux cascade over {{C.3 wire/reg, C.4, Din}} selected by {}\n",
            hits.join(", ")
        ));
    }
    let stats = NetlistStats::of(&pm.netlist);
    out.push_str(&format!(
        "  whole pipelined netlist: {} gate equivalents, critical path {} levels, {} register bits\n",
        stats.gates, stats.critical_path, stats.register_bits
    ));
    let opt = pm.optimized();
    let so = NetlistStats::of(&opt.netlist);
    out.push_str(&format!(
        "  after netlist optimization (verified equivalent): {} gates, critical path {} levels\n",
        so.gates, so.critical_path
    ));
    // Dump the actual generated network as a graph for inspection.
    if let Ok(g) = pm.netlist.find("g.1.GPRa") {
        let dot = autopipe_hdl::cone_to_dot(&pm.netlist, &[g], 6);
        let path = std::env::temp_dir().join("autopipe_figure2_gpra.dot");
        if std::fs::write(&path, dot).is_ok() {
            out.push_str(&format!(
                "  GPRa forwarding cone written to {} (render with `dot -Tsvg`)\n",
                path.display()
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// E4 — CPI vs hazard density.
// ---------------------------------------------------------------------

/// One row of the CPI sweep.
#[derive(Debug, Clone, Copy)]
pub struct CpiRow {
    /// RAW-dependence density of the workload.
    pub density: f64,
    /// CPI of the forwarding pipeline.
    pub cpi_forward: f64,
    /// CPI of the interlock-only pipeline.
    pub cpi_interlock: f64,
}

/// Runs the pipelined machine until `n` instructions retire; returns
/// the cycle count.
///
/// # Panics
///
/// Panics if a consistency violation occurs or progress stops.
pub fn run_until_retired(pm: &PipelinedMachine, cfg: DlxConfig, prog: &[Instr], n: u64) -> u64 {
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
    let mut cosim = Cosim::new(pm).expect("cosim builds");
    load_program(cosim.sim_mut(), cfg, &words);
    load_program(cosim.seq_sim_mut(), cfg, &words);
    while cosim.stats().retired < n {
        cosim.step().expect("consistency holds");
        assert!(cosim.stats().cycles < 100 * n + 1000, "no forward progress");
    }
    cosim.stats().cycles
}

/// The E4 sweep data (workload seeds `0..seeds`).
pub fn e4_data(seeds: u64, prog_len: usize) -> Vec<CpiRow> {
    e4_data_from(0, seeds, prog_len)
}

/// The E4 sweep data with workload seeds `base..base + seeds`.
pub fn e4_data_from(base: u64, seeds: u64, prog_len: usize) -> Vec<CpiRow> {
    let cfg = DlxConfig::default();
    let fwd = dlx_pipeline(dlx_synth_options());
    let ilk = dlx_pipeline(dlx_interlock_options());
    let mut rows = Vec::new();
    for density in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let profile = HazardProfile {
            raw_density: density,
            short_distance: 0.6,
            mem_frac: 0.15,
            branch_frac: 0.0,
        };
        let mut cyc_f = 0u64;
        let mut cyc_i = 0u64;
        let mut instr = 0u64;
        for seed in base..base + seeds {
            let prog = random_program(cfg, prog_len, profile, seed);
            let n = prog_len as u64;
            cyc_f += run_until_retired(&fwd, cfg, &prog, n);
            cyc_i += run_until_retired(&ilk, cfg, &prog, n);
            instr += n;
        }
        rows.push(CpiRow {
            density,
            cpi_forward: cyc_f as f64 / instr as f64,
            cpi_interlock: cyc_i as f64 / instr as f64,
        });
    }
    rows
}

/// Renders E4.
pub fn e4_render() -> String {
    e4_render_seeded(0)
}

/// Renders E4 with workload seeds starting at `base`.
pub fn e4_render_seeded(base: u64) -> String {
    let rows = e4_data_from(base, 3, 60);
    let mut t = Table::new(vec![
        "raw density",
        "CPI forward",
        "CPI interlock",
        "CPI sequential",
        "speedup fwd/seq",
    ]);
    for r in rows {
        t.row(vec![
            f2(r.density),
            f2(r.cpi_forward),
            f2(r.cpi_interlock),
            f2(5.0),
            f2(5.0 / r.cpi_forward),
        ]);
    }
    format!(
        "E4 — CPI vs RAW hazard density (five-stage DLX, random workloads)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// E5 — load-use interlock.
// ---------------------------------------------------------------------

/// One row of the load-use study.
#[derive(Debug, Clone, Copy)]
pub struct LoadUseRow {
    /// Memory-instruction fraction of the workload.
    pub mem_frac: f64,
    /// CPI of the forwarding pipeline (fast memory).
    pub cpi: f64,
    /// Fraction of cycles with a decode data hazard.
    pub dhaz_rate: f64,
    /// CPI with a 2-wait-state data memory (the paper's external
    /// stall condition, "e.g. caused by slow memory").
    pub cpi_slow_mem: f64,
}

/// The E5 sweep data (workload seeds `100..100 + seeds`).
pub fn e5_data(seeds: u64, prog_len: usize) -> Vec<LoadUseRow> {
    e5_data_from(100, seeds, prog_len)
}

/// The E5 sweep data with workload seeds `base..base + seeds`.
pub fn e5_data_from(base: u64, seeds: u64, prog_len: usize) -> Vec<LoadUseRow> {
    let cfg = DlxConfig::default();
    let fwd = dlx_pipeline(dlx_synth_options());
    let fwd_ext = dlx_pipeline(dlx_synth_options().with_ext_stalls());
    let mut rows = Vec::new();
    for mem_frac in [0.0, 0.15, 0.3, 0.5] {
        let profile = HazardProfile {
            raw_density: 0.6,
            short_distance: 0.7,
            mem_frac,
            branch_frac: 0.0,
        };
        let mut cycles = 0u64;
        let mut dhaz = 0u64;
        let mut slow_cycles = 0u64;
        let mut instr = 0u64;
        for seed in base..base + seeds {
            let prog = random_program(cfg, prog_len, profile, seed);
            let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
            let n = prog_len as u64;

            let mut cosim = Cosim::new(&fwd).expect("cosim builds");
            load_program(cosim.sim_mut(), cfg, &words);
            load_program(cosim.seq_sim_mut(), cfg, &words);
            while cosim.stats().retired < n {
                cosim.step().expect("consistency holds");
            }
            cycles += cosim.stats().cycles;
            dhaz += cosim.stats().dhaz_counts[1];

            let hook = autopipe_dlx::machine::wait_state_memory(&fwd_ext, 2);
            let mut slow = Cosim::new(&fwd_ext)
                .expect("cosim builds")
                .with_ext_stalls(hook);
            load_program(slow.sim_mut(), cfg, &words);
            load_program(slow.seq_sim_mut(), cfg, &words);
            while slow.stats().retired < n {
                slow.step().expect("consistency holds");
            }
            slow_cycles += slow.stats().cycles;
            instr += n;
        }
        rows.push(LoadUseRow {
            mem_frac,
            cpi: cycles as f64 / instr as f64,
            dhaz_rate: dhaz as f64 / cycles as f64,
            cpi_slow_mem: slow_cycles as f64 / instr as f64,
        });
    }
    rows
}

/// Renders E5.
pub fn e5_render() -> String {
    e5_render_seeded(100)
}

/// Renders E5 with workload seeds starting at `base`.
pub fn e5_render_seeded(base: u64) -> String {
    let rows = e5_data_from(base, 3, 60);
    let mut t = Table::new(vec![
        "mem fraction",
        "CPI",
        "decode dhaz rate",
        "CPI (2-wait mem)",
    ]);
    for r in rows {
        t.row(vec![
            f2(r.mem_frac),
            f2(r.cpi),
            f3(r.dhaz_rate),
            f2(r.cpi_slow_mem),
        ]);
    }
    format!(
        "E5 — load-use interlock and slow memory (paper 4.1.1 / ext stalls, 3)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// E6 — speculation: guess quality is performance only.
// ---------------------------------------------------------------------

/// One row of the speculation study.
#[derive(Debug, Clone, Copy)]
pub struct SpecRow {
    /// Branch fraction of the workload.
    pub branch_frac: f64,
    /// Predictor used.
    pub predictor: Predictor,
    /// Cycles per retired instruction.
    pub cpi: f64,
    /// Rollbacks per retired instruction.
    pub rollback_rate: f64,
}

/// The E6 sweep data.
pub fn e6_data(cycles: u64) -> Vec<SpecRow> {
    let mut rows = Vec::new();
    for branch_frac in [0.0, 0.1, 0.25, 0.4] {
        for predictor in [Predictor::NextLine, Predictor::AlwaysTaken] {
            let plan = build_branchy_spec(predictor)
                .expect("spec builds")
                .plan()
                .expect("plans");
            let pm = PipelineSynthesizer::new(branchy_synth_options())
                .run(&plan)
                .expect("synthesizes");
            let prog = branchy_program(branch_frac, 7);
            let mut cosim = Cosim::new(&pm).expect("cosim builds");
            {
                let sim = cosim.sim_mut();
                let nl = sim.netlist();
                let mem = nl
                    .mem_ids()
                    .find(|m| nl.memory_info(*m).name.ends_with("IMEM"))
                    .expect("imem");
                for (i, w) in prog.iter().enumerate() {
                    sim.poke_mem(mem, i, u64::from(*w));
                }
            }
            let stats = cosim.run(cycles).expect("liveness holds").clone();
            rows.push(SpecRow {
                branch_frac,
                predictor,
                cpi: stats.cpi(),
                rollback_rate: stats.rollbacks as f64 / stats.retired.max(1) as f64,
            });
        }
    }
    rows
}

/// Renders E6.
pub fn e6_render() -> String {
    let rows = e6_data(600);
    let mut t = Table::new(vec!["branch frac", "predictor", "CPI", "rollbacks/instr"]);
    for r in rows {
        t.row(vec![
            f2(r.branch_frac),
            format!("{:?}", r.predictor),
            f2(r.cpi),
            f3(r.rollback_rate),
        ]);
    }
    format!(
        "E6 — speculative fetch: the guess affects performance only (paper 5)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// E7 — forwarding network cost vs pipeline depth.
// ---------------------------------------------------------------------

/// One row of the cost study.
#[derive(Debug, Clone, Copy)]
pub struct CostRow {
    /// Pipeline depth.
    pub depth: usize,
    /// Gate equivalents of the sequential (pre-transformation) machine.
    pub gates_seq: u64,
    /// Gate equivalents, mux-cascade select network.
    pub gates_chain: u64,
    /// Critical path (levels), mux cascade.
    pub path_chain: u32,
    /// Gate equivalents, find-first-one + tree.
    pub gates_tree: u64,
    /// Critical path, tree.
    pub path_tree: u32,
}

impl CostRow {
    /// Gate overhead of the transformation (chain variant).
    pub fn overhead_chain(&self) -> u64 {
        self.gates_chain.saturating_sub(self.gates_seq)
    }
}

/// The E7 data.
pub fn e7_data(depths: &[usize]) -> Vec<CostRow> {
    depths
        .iter()
        .map(|&n| {
            let plan = crate::deep::deep_plan(n);
            let seq = SequentialMachine::new(plan.clone()).expect("elaborates");
            let gates_seq = NetlistStats::of(seq.netlist()).gates;
            let chain = PipelineSynthesizer::new(
                crate::deep::deep_options().with_topology(MuxTopology::Chain),
            )
            .run(&plan)
            .expect("synthesizes");
            let tree = PipelineSynthesizer::new(
                crate::deep::deep_options().with_topology(MuxTopology::Tree),
            )
            .run(&plan)
            .expect("synthesizes");
            // Measure after the (equivalence-certified) optimizer so
            // folding artifacts do not skew the comparison.
            let sc = NetlistStats::of(&chain.optimized().netlist);
            let st = NetlistStats::of(&tree.optimized().netlist);
            CostRow {
                depth: n,
                gates_seq,
                gates_chain: sc.gates,
                path_chain: sc.critical_path,
                gates_tree: st.gates,
                path_tree: st.critical_path,
            }
        })
        .collect()
}

/// Renders E7.
pub fn e7_render() -> String {
    let rows = e7_data(&[4, 5, 6, 8, 10, 12]);
    let mut t = Table::new(vec![
        "depth",
        "gates (seq)",
        "gates (chain)",
        "path (chain)",
        "gates (tree)",
        "path (tree)",
        "overhead",
    ]);
    for r in rows {
        t.row(vec![
            r.depth.to_string(),
            r.gates_seq.to_string(),
            r.gates_chain.to_string(),
            r.path_chain.to_string(),
            r.gates_tree.to_string(),
            r.path_tree.to_string(),
            format!(
                "{:.0}%",
                100.0 * r.overhead_chain() as f64 / r.gates_seq as f64
            ),
        ]);
    }
    format!(
        "E7 — Figure 2 cascade vs find-first-one tree (paper 4.2 remark)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// E8 — machine-checked verification effort.
// ---------------------------------------------------------------------

/// One obligation-discharge summary.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Machine name.
    pub machine: String,
    /// Number of obligations.
    pub obligations: usize,
    /// How many were fully proved.
    pub proved: usize,
    /// Wall-clock milliseconds.
    pub millis: u128,
}

/// Discharges the stall-engine obligations of the toy machine and the
/// (small) DLX.
pub fn e8_obligations() -> Vec<VerifyRow> {
    let mut rows = Vec::new();
    let toy = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&toy_plan(&hazard_program()))
    .expect("synthesizes");
    let t0 = Instant::now();
    let reps = check_obligations(&toy.netlist, &toy.obligations, 2).expect("lowers");
    rows.push(VerifyRow {
        machine: "acc3".into(),
        obligations: reps.len(),
        proved: reps
            .iter()
            .filter(|r| matches!(r.outcome, BmcOutcome::Proved { .. }))
            .count(),
        millis: t0.elapsed().as_millis(),
    });

    let plan = build_dlx_spec(DlxConfig::small())
        .expect("spec builds")
        .plan()
        .expect("plans");
    let dlx = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .expect("synthesizes");
    let t0 = Instant::now();
    let reps = check_obligations(&dlx.netlist, &dlx.obligations, 2).expect("lowers");
    rows.push(VerifyRow {
        machine: "dlx5 (small)".into(),
        obligations: reps.len(),
        proved: reps
            .iter()
            .filter(|r| matches!(r.outcome, BmcOutcome::Proved { .. }))
            .count(),
        millis: t0.elapsed().as_millis(),
    });
    rows
}

/// Machine-checked bounded equivalence of the pipelined DLX (small
/// configuration) against its sequential specification: the first
/// `writes` DMEM writes agree, proven by BMC over the product machine.
pub fn e8_dlx_equivalence(writes: u64, depth: usize) -> (u128, bool, usize) {
    let cfg = DlxConfig::small();
    let mut spec = build_dlx_spec(cfg).expect("spec builds");
    let prog: Vec<u64> = autopipe_dlx::asm::assemble(
        "   addi r1, r0, 3
            sw   r1, 0(r0)
            addi r2, r1, 4
            sw   r2, 4(r0)
            add  r3, r2, r1
            sw   r3, 8(r0)
            halt
            nop",
    )
    .expect("assembles")
    .iter()
    .map(|i| u64::from(i.encode()))
    .collect();
    for f in &mut spec.files {
        if f.name == "IMEM" {
            f.init = prog.clone();
        }
    }
    let plan = spec.plan().expect("plans");
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .expect("synthesizes");
    let (nl, p) = retirement_miter(&pm, "DMEM", writes).expect("miter builds");
    let low = autopipe_hdl::aig::lower(&nl).expect("lowers");
    let ands = low.aig.and_count();
    let prop = low.net_lits(p)[0];
    let t0 = Instant::now();
    let ok = matches!(
        bmc_invariant(&low.aig, prop, depth),
        BmcOutcome::BoundedOk { .. }
    );
    (t0.elapsed().as_millis(), ok, ands)
}

/// BMC depth sweep on the toy retirement-equivalence miter.
pub fn e8_bmc_sweep(depths: &[usize]) -> Vec<(usize, u128, bool)> {
    let pm = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&toy_plan(&hazard_program()))
    .expect("synthesizes");
    let (nl, prop) = retirement_miter(&pm, "RF", 4).expect("miter builds");
    let low = autopipe_hdl::aig::lower(&nl).expect("lowers");
    let p = low.net_lits(prop)[0];
    depths
        .iter()
        .map(|&d| {
            let t0 = Instant::now();
            let ok = matches!(bmc_invariant(&low.aig, p, d), BmcOutcome::BoundedOk { .. });
            (d, t0.elapsed().as_millis(), ok)
        })
        .collect()
}

/// Renders E8.
pub fn e8_render() -> String {
    let mut out =
        String::from("E8 — machine-checked discharge of the generated proof obligations\n");
    let mut t = Table::new(vec!["machine", "obligations", "proved", "ms"]);
    for r in e8_obligations() {
        t.row(vec![
            r.machine.clone(),
            r.obligations.to_string(),
            r.proved.to_string(),
            r.millis.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n  BMC of pipelined-vs-sequential retirement equivalence (toy, K = 4 writes):\n",
    );
    let mut t = Table::new(vec!["depth", "ms", "holds"]);
    for (d, ms, ok) in e8_bmc_sweep(&[8, 12, 16, 20]) {
        t.row(vec![d.to_string(), ms.to_string(), ok.to_string()]);
    }
    out.push_str(&t.render());
    let (ms, ok, ands) = e8_dlx_equivalence(3, 45);
    out.push_str(&format!(
        "\n  full DLX (small config) vs sequential spec, 3 DMEM writes, depth 45:\n  product-machine AIG = {ands} AND gates, result holds = {ok}, {ms} ms\n"
    ));
    out
}

// ---------------------------------------------------------------------
// E9 — precise interrupts.
// ---------------------------------------------------------------------

/// One row of the interrupt-rate study.
#[derive(Debug, Clone, Copy)]
pub struct IrqRow {
    /// Interrupt period in cycles (0 = never).
    pub period: u64,
    /// Cycles per retired instruction.
    pub cpi: f64,
    /// Observed rollbacks.
    pub rollbacks: u64,
}

/// The E9 data: a store loop with a restarting handler, interrupts
/// pulsed every `period` cycles.
pub fn e9_data(cycles: u64) -> Vec<IrqRow> {
    let cfg = DlxConfig::default().with_interrupts();
    let isr = 0x40u32;
    let plan = build_dlx_spec(cfg).expect("builds").plan().expect("plans");
    let pm = PipelineSynthesizer::new(dlx_interrupt_options(isr))
        .run(&plan)
        .expect("synthesizes");
    let image: Vec<u32> = autopipe_dlx::asm::assemble_image(
        "       addi r1, r0, 0
         loop:  addi r2, r1, 100
                sw   r2, 0(r1)
                addi r1, r1, 4
                j    loop
                nop
         .org 0x40                 ; the restarting handler
                addi r1, r0, 0
                j    1
                nop",
    )
    .expect("assembles");

    let mut rows = Vec::new();
    for period in [0u64, 200, 50, 20] {
        let mut sim = pm.simulator().expect("simulates");
        load_program(&mut sim, cfg, &image);
        let irq = pm.netlist.find("irq").expect("irq input");
        let retire = *pm.control.ue.last().expect("stages");
        let rbnet = pm.netlist.find("rollback.4").expect("rollback net");
        let mut retired = 0u64;
        let mut rollbacks = 0u64;
        for t in 0..cycles {
            let fire = period != 0 && t % period == 0 && t > 0;
            sim.set_input(irq, u64::from(fire));
            sim.settle();
            if sim.get(retire) == 1 {
                retired += 1;
            }
            if sim.get(rbnet) == 1 {
                rollbacks += 1;
            }
            sim.clock();
        }
        rows.push(IrqRow {
            period,
            cpi: cycles as f64 / retired.max(1) as f64,
            rollbacks,
        });
    }
    rows
}

/// Renders E9.
pub fn e9_render() -> String {
    let rows = e9_data(2000);
    let mut t = Table::new(vec!["irq period", "CPI", "rollbacks"]);
    for r in rows {
        t.row(vec![
            if r.period == 0 {
                "never".to_string()
            } else {
                r.period.to_string()
            },
            f2(r.cpi),
            r.rollbacks.to_string(),
        ]);
    }
    format!(
        "E9 — precise interrupts by speculation (paper 5 / Smith-Pleszkun)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// BENCH_9.json — the machine-readable verification section.
// ---------------------------------------------------------------------

/// The verification section of `BENCH_9.json`: obligation outcomes and
/// summed SAT counters for the small DLX (see `docs/OBSERVABILITY.md`
/// for the schema).
#[derive(Debug, Clone, Default)]
pub struct Bench5Verify {
    /// Obligations discharged.
    pub obligations: usize,
    /// Fully proved (k-induction closed).
    pub proved: usize,
    /// Violated or timed out (expected 0).
    pub failed: usize,
    /// k-induction depth used.
    pub max_k: usize,
    /// Summed solver work across every obligation.
    pub stats: autopipe_verify::SolveStats,
    /// Wall-clock milliseconds for the whole batch.
    pub millis: u128,
}

/// Discharges the small DLX's proof obligations and folds the
/// per-obligation [`autopipe_verify::SolveStats`] into one record.
pub fn bench5_verify(jobs: usize) -> Bench5Verify {
    let max_k = 2;
    let plan = build_dlx_spec(DlxConfig::small())
        .expect("spec builds")
        .plan()
        .expect("plans");
    let dlx = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .expect("synthesizes");
    let t0 = Instant::now();
    let reps = autopipe_verify::check_obligations_jobs(&dlx.netlist, &dlx.obligations, max_k, jobs)
        .expect("lowers");
    let mut out = Bench5Verify {
        obligations: reps.len(),
        max_k,
        millis: t0.elapsed().as_millis(),
        ..Bench5Verify::default()
    };
    for r in &reps {
        match r.outcome {
            BmcOutcome::Proved { .. } => out.proved += 1,
            BmcOutcome::BoundedOk { .. } => {}
            _ => out.failed += 1,
        }
        out.stats.merge(r.stats);
    }
    out
}

// ---------------------------------------------------------------------
// Serve benchmark — cold vs warm daemon latency (BENCH_9 record).
// ---------------------------------------------------------------------

/// Cold-vs-warm latency of the `autopipe serve` daemon on the toy
/// machine, plus the canonical digests its proof cache keys on.
#[derive(Debug, Default)]
pub struct Bench6Serve {
    /// Design name from the `.psm` machine declaration.
    pub design: String,
    /// Canonical digest of the synthesized netlist (32 hex digits).
    pub netlist_digest: String,
    /// `(name, cone digest)` per obligation, in report order.
    pub obligation_digests: Vec<(String, String)>,
    /// First submission: compile + synthesize + solve everything.
    pub cold_micros: u128,
    /// Identical resubmission: memoized elaboration + cache hits only.
    pub warm_micros: u128,
    /// Proof-cache lookups that returned a verdict.
    pub hits: u64,
    /// Proof-cache lookups that found nothing usable.
    pub misses: u64,
    /// Verdicts persisted by the cold pass.
    pub stores: u64,
}

impl Bench6Serve {
    /// Fraction of cache lookups that hit (`0.0` when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Submits the toy machine to an in-process [`autopipe_serve::Server`]
/// twice and measures the cold solve against the warm all-cached
/// resubmission.
pub fn bench6_serve(jobs: usize) -> Bench6Serve {
    use autopipe_serve::{elaborate, Op, Request, ServeConfig, Server};
    let src = include_str!("../../../examples/programs/toy.psm");
    let summary = elaborate(src, "toy.psm").expect("toy elaborates");
    let server = Server::new(ServeConfig {
        jobs,
        ..ServeConfig::default()
    })
    .expect("in-memory server");
    let submit = |id: u64| Request {
        id: Some(id),
        op: Op::Submit,
        source: Some(src.to_string()),
        path: None,
        max_k: None,
        timeout_ms: None,
        fresh: false,
    };
    let t0 = Instant::now();
    let cold = server.handle(&submit(1));
    let cold_micros = t0.elapsed().as_micros();
    let t1 = Instant::now();
    let warm = server.handle(&submit(2));
    let warm_micros = t1.elapsed().as_micros();
    assert!(
        cold.result.is_ok() && warm.result.is_ok(),
        "toy submits succeed"
    );
    let stats = server.cache().stats();
    Bench6Serve {
        design: summary.design.clone(),
        netlist_digest: autopipe_hdl::netlist_digest(&summary.netlist).to_string(),
        obligation_digests: summary
            .obligations
            .iter()
            .zip(&summary.cone_digests)
            .map(|(ob, d)| (ob.name.clone(), d.to_string()))
            .collect(),
        cold_micros,
        warm_micros,
        hits: stats.hits,
        misses: stats.misses,
        stores: stats.stores,
    }
}

// ---------------------------------------------------------------------
// Simulation-backend benchmark (BENCH_9 record).
// ---------------------------------------------------------------------

/// One backend's throughput on the 10k-cycle pipelined-DLX workload,
/// measured twice: the bare simulator loop and the full co-simulation
/// harness (pipeline + sequential machine + per-cycle checks).
#[derive(Debug, Clone)]
pub struct Bench7SimRow {
    /// Backend name (`interp`, `bitparallel`, `compiled`, `compiled64`).
    pub backend: String,
    /// Independent machine copies each step advances (64 for the
    /// word-packed engine, 1 otherwise).
    pub lanes: u32,
    /// Wall-clock microseconds for the bare simulator loop (best of
    /// three timed runs, after a warm-up run).
    pub sim_micros: u128,
    /// Wall-clock microseconds for the cosim harness run.
    pub cosim_micros: u128,
}

impl Bench7SimRow {
    /// Bare-loop throughput in simulated cycles per second (one lane).
    pub fn sim_cycles_per_sec(&self, cycles: u64) -> f64 {
        cycles as f64 * 1.0e6 / self.sim_micros.max(1) as f64
    }

    /// Bare-loop throughput summed over all lanes: the number of
    /// simulated machine-cycles the backend retires per wall-clock
    /// second, which is the honest basis for comparing the 64-lane
    /// engine against the scalar backends.
    pub fn aggregate_cycles_per_sec(&self, cycles: u64) -> f64 {
        self.lanes as f64 * self.sim_cycles_per_sec(cycles)
    }

    /// Cosim-harness throughput in simulated cycles per second.
    pub fn cosim_cycles_per_sec(&self, cycles: u64) -> f64 {
        cycles as f64 * 1.0e6 / self.cosim_micros.max(1) as f64
    }
}

/// The simulation section of `BENCH_9.json`: per-backend DLX
/// throughput plus the mutation kill-matrix wall-clock (the run the
/// compiled backend is meant to turn from dominant cost into noise).
#[derive(Debug, Clone)]
pub struct Bench7Sim {
    /// Cycle budget of each throughput run.
    pub cycles: u64,
    /// One row per [`Backend`](autopipe_hdl::Backend), report order
    /// `interp`, `bitparallel`, `compiled`, `compiled64`.
    pub rows: Vec<Bench7SimRow>,
    /// Wall-clock microseconds of the toy-machine soundness run.
    pub mutation_micros: u128,
    /// Mutants attacked by that run.
    pub mutation_mutants: usize,
    /// Mutants killed (must equal `mutation_mutants`).
    pub mutation_killed: usize,
}

impl Bench7Sim {
    /// Compiled-vs-interpreter speedup on the bare 10k-cycle DLX loop
    /// (scalar, one lane against one lane).
    pub fn compiled_speedup(&self) -> f64 {
        let micros = |name: &str| {
            self.rows
                .iter()
                .find(|r| r.backend == name)
                .map_or(1, |r| r.sim_micros.max(1))
        };
        micros("interp") as f64 / micros("compiled") as f64
    }

    /// Word-packed-engine speedup: simulated machine-cycles per second
    /// across all 64 lanes of `compiled64`, relative to the
    /// interpreter's single lane.
    pub fn compiled64_speedup(&self) -> f64 {
        let agg = |name: &str| {
            self.rows
                .iter()
                .find(|r| r.backend == name)
                .map_or(0.0, |r| r.aggregate_cycles_per_sec(self.cycles))
        };
        let interp = agg("interp");
        if interp == 0.0 {
            return 0.0;
        }
        agg("compiled64") / interp
    }
}

/// A non-halting DLX store loop: every cycle retires work, so both the
/// bare loop and the cosim harness run the full budget without
/// tripping the liveness check.
fn bench7_workload() -> Vec<u32> {
    autopipe_dlx::asm::assemble(
        "       addi r1, r0, 0
         loop:  addi r2, r1, 100
                sw   r2, 0(r1)
                addi r1, r1, 4
                j    loop
                nop",
    )
    .expect("assembles")
    .iter()
    .map(|i| i.encode())
    .collect()
}

/// Measures every simulation backend on the pipelined DLX for
/// `cycles` cycles and times one toy-machine mutation run.
pub fn bench7_sim(cycles: u64, jobs: usize) -> Bench7Sim {
    use autopipe_hdl::Backend;
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg)
        .expect("spec builds")
        .plan()
        .expect("plans");
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .expect("synthesizes");
    let words = bench7_workload();

    let mut rows = Vec::new();
    for backend in [
        Backend::Interp,
        Backend::Bitparallel,
        Backend::Compiled,
        Backend::Compiled64,
    ] {
        // Bare simulator loop: settle/clock only, no checker. One
        // warm-up run primes caches and branch predictors; the
        // reported figure is the best of three timed runs, the
        // standard way to strip scheduler noise from a throughput
        // measurement.
        let mut sim = pm.sim(backend).expect("simulates");
        load_program(sim.as_mut(), cfg, &words);
        sim.run(cycles / 10);
        let sim_micros = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                sim.run(cycles);
                t0.elapsed().as_micros()
            })
            .min()
            .unwrap_or(u128::MAX);

        // Full cosim harness on the same backend.
        let mut cosim = autopipe_verify::Cosim::with_backend(&pm, backend).expect("cosim builds");
        load_program(cosim.sim_mut(), cfg, &words);
        load_program(cosim.seq_sim_mut(), cfg, &words);
        let t1 = Instant::now();
        cosim.run(cycles).expect("loop stays consistent");
        let cosim_micros = t1.elapsed().as_micros();

        rows.push(Bench7SimRow {
            backend: backend.name().to_string(),
            lanes: if backend == Backend::Compiled64 {
                64
            } else {
                1
            },
            sim_micros,
            cosim_micros,
        });
    }

    // Mutation wall-clock: the toy kill matrix, all channels.
    let toy = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&toy_plan(&hazard_program()))
    .expect("synthesizes");
    let settings = autopipe_verify::SoundnessSettings {
        jobs,
        ..autopipe_verify::SoundnessSettings::default()
    };
    let t0 = Instant::now();
    let report = autopipe_verify::run_soundness(&toy, &settings).expect("soundness runs");
    let mutation_micros = t0.elapsed().as_micros();

    Bench7Sim {
        cycles,
        rows,
        mutation_micros,
        mutation_mutants: report.results.len(),
        mutation_killed: report.killed(),
    }
}

// ---------------------------------------------------------------------
// Timing benchmark — static timing analysis (BENCH_9 record).
// ---------------------------------------------------------------------

/// The timing section of `BENCH_9.json`: the small DLX's `sta` report
/// reduced to its deterministic headline numbers plus the SAT
/// wall-clock. Everything here except `wall_ms` is a pure function of
/// the design, so the record doubles as a cross-run regression check
/// on the timing analysis itself.
#[derive(Debug, Default)]
pub struct Bench9Timing {
    /// Design the report was taken on.
    pub machine: String,
    /// Load-aware clock period in levels.
    pub period: u32,
    /// Distinct timing endpoints.
    pub endpoints: usize,
    /// Ranked critical paths reported.
    pub paths: usize,
    /// Top paths proven unsensitizable.
    pub pruned: usize,
    /// Control endpoints swept by the false-path audit.
    pub audited_endpoints: usize,
    /// Audit paths put to the solver.
    pub audited_paths: usize,
    /// Audit paths proven unsensitizable.
    pub audit_pruned: usize,
    /// `AP04xx` findings raised.
    pub findings: usize,
    /// Wall-clock milliseconds for the whole analysis.
    pub millis: u128,
}

/// Runs the full static timing analysis (top-10 paths plus the
/// control false-path audit) on the small DLX across `jobs` workers.
pub fn bench9_timing(jobs: usize) -> Bench9Timing {
    use autopipe_analyze::sta;
    let plan = build_dlx_spec(DlxConfig::small())
        .expect("spec builds")
        .plan()
        .expect("plans");
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .expect("synthesizes");
    let analysis = autopipe_hdl::NetAnalysis::of(&pm.netlist);
    let opts = sta::StaOptions {
        jobs,
        ..sta::StaOptions::default()
    };
    let t0 = Instant::now();
    let report = sta::analyze(
        &pm,
        &analysis,
        &opts,
        &autopipe_analyze::LintConfig::new(),
        &autopipe_trace::Trace::disabled(),
    );
    Bench9Timing {
        machine: report.machine.clone(),
        period: report.period,
        endpoints: report.endpoints,
        paths: report.paths.len(),
        pruned: report.pruned(),
        audited_endpoints: report.audited_endpoints,
        audited_paths: report.audited_paths,
        audit_pruned: report.audit_pruned.len(),
        findings: report.findings.findings.len(),
        millis: t0.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_is_round_robin() {
        let rows = e1_data(9);
        for (cycle, row) in rows.iter().enumerate() {
            for (k, &on) in row.iter().enumerate() {
                assert_eq!(on, cycle % 3 == k);
            }
        }
    }

    #[test]
    fn e4_forwarding_beats_interlock_on_dense_hazards() {
        let rows = e4_data(1, 40);
        let dense = rows.last().unwrap();
        assert!(dense.cpi_interlock > dense.cpi_forward + 0.5);
        // Forwarding stays close to 1 CPI throughout (no loads in E4
        // ALU chains... loads exist at 15%; allow some slack).
        for r in &rows {
            assert!(
                r.cpi_forward < 2.2,
                "cpi {} at {}",
                r.cpi_forward,
                r.density
            );
            assert!(r.cpi_interlock < 5.5);
        }
    }

    #[test]
    fn e5_dhaz_grows_with_loads() {
        let rows = e5_data(1, 40);
        assert!(rows.last().unwrap().dhaz_rate >= rows[0].dhaz_rate);
    }

    #[test]
    fn e7_tree_wins_at_depth() {
        let rows = e7_data(&[4, 10]);
        let deep = rows.last().unwrap();
        assert!(
            deep.path_tree < deep.path_chain,
            "tree {} vs chain {}",
            deep.path_tree,
            deep.path_chain
        );
        // The shallow machine shows little or inverted difference —
        // the paper's point is the asymptotic behaviour.
        let shallow = &rows[0];
        let shallow_gain = shallow.path_chain as i64 - shallow.path_tree as i64;
        let deep_gain = deep.path_chain as i64 - deep.path_tree as i64;
        assert!(deep_gain > shallow_gain);
    }

    #[test]
    fn e8_all_obligations_prove() {
        for r in e8_obligations() {
            assert_eq!(r.proved, r.obligations, "{}", r.machine);
        }
    }

    #[test]
    fn e9_interrupts_cost_cycles() {
        let rows = e9_data(600);
        let never = rows.iter().find(|r| r.period == 0).unwrap();
        let often = rows.iter().find(|r| r.period == 20).unwrap();
        assert_eq!(never.rollbacks, 0);
        assert!(often.rollbacks > 10);
        assert!(often.cpi > never.cpi);
    }

    #[test]
    fn bench6_warm_pass_is_fully_cached() {
        let b = bench6_serve(1);
        let n = b.obligation_digests.len() as u64;
        assert!(n > 0);
        // Cold pass: every obligation misses and is stored; warm pass:
        // every obligation hits. The hit rate is therefore exactly 1/2.
        assert_eq!(b.misses, n, "cold pass misses everything");
        assert_eq!(b.stores, n, "cold verdicts all persist");
        assert_eq!(b.hits, n, "warm pass is fully cached");
        assert!((b.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(b.netlist_digest.len(), 32);
        for (name, d) in &b.obligation_digests {
            assert!(!name.is_empty());
            assert!(d.len() == 32 && d.bytes().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
