//! The three-stage accumulator machine used by Table 1 (E1) and the
//! verification-runtime experiment (E8): `RF[dst] := RF[src] + imm`,
//! fetch / execute / write-back.

use autopipe_hdl::Netlist;
use autopipe_psm::{FileDecl, Fragment, MachineSpec, Plan, ReadPort, RegisterDecl};

/// Builds the accumulator machine plan, with `program` in its ROM.
///
/// # Panics
///
/// Panics if the program exceeds 16 instructions (the machine's ROM).
pub fn toy_plan(program: &[u64]) -> Plan {
    assert!(program.len() <= 16);
    let mut spec = MachineSpec::new("acc", 3);
    spec.register(RegisterDecl::new("PC", 4).written_by(0).visible());
    spec.register(RegisterDecl::new("IR", 8).written_by(0));
    spec.register(RegisterDecl::new("X", 8).written_by(1));
    spec.file(FileDecl::read_only("IMEM", 4, 8).init(program.to_vec()));
    spec.file(FileDecl::new("RF", 2, 8, 2).ctrl(0).visible());

    let mut f0 = Netlist::new("fetch");
    let pc = f0.input("PC", 4);
    let insn = f0.input("insn", 8);
    let one = f0.constant(1, 4);
    let npc = f0.add(pc, one);
    f0.label("PC", npc);
    f0.label("IR", insn);
    let we = f0.one();
    f0.label("RF.we", we);
    let wa = f0.slice(insn, 1, 0);
    f0.label("RF.wa", wa);
    let mut fa = Netlist::new("fetch_addr");
    let pca = fa.input("PC", 4);
    fa.label("addr", pca);
    spec.stage(
        0,
        "F",
        Fragment::new(f0).expect("combinational"),
        vec![ReadPort::new(
            "IMEM",
            "insn",
            Fragment::new(fa).expect("combinational"),
        )],
    );

    let mut f1 = Netlist::new("ex");
    let ir = f1.input("IR", 8);
    let src = f1.input("srcv", 8);
    let imm4 = f1.slice(ir, 7, 4);
    let imm = f1.zext(imm4, 8);
    let x = f1.add(src, imm);
    f1.label("X", x);
    let mut ra = Netlist::new("src_addr");
    let ir2 = ra.input("IR", 8);
    let a = ra.slice(ir2, 3, 2);
    ra.label("addr", a);
    spec.stage(
        1,
        "EX",
        Fragment::new(f1).expect("combinational"),
        vec![ReadPort::new(
            "RF",
            "srcv",
            Fragment::new(ra).expect("combinational"),
        )],
    );

    let mut f2 = Netlist::new("wb");
    let x = f2.input("X", 8);
    f2.label("RF", x);
    spec.stage(2, "WB", Fragment::new(f2).expect("combinational"), vec![]);
    spec.plan().expect("toy machine plans")
}

/// `RF[dst] := RF[src] + imm` instruction encoding.
pub fn insn(imm: u64, src: u64, dst: u64) -> u64 {
    imm << 4 | src << 2 | dst
}

/// A dependence-chained demo program.
pub fn hazard_program() -> Vec<u64> {
    vec![
        insn(1, 0, 0),
        insn(2, 0, 1),
        insn(3, 1, 2),
        insn(4, 2, 3),
        insn(5, 3, 0),
        insn(1, 0, 1),
        insn(2, 1, 2),
        insn(3, 2, 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_plan_builds() {
        let plan = toy_plan(&hazard_program());
        assert_eq!(plan.n_stages(), 3);
    }
}
