//! Minimal fixed-width ASCII table rendering for the report binary.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "x"]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
