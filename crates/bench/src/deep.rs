//! A parametric deep pipeline for the mux-chain vs balanced-tree cost
//! study (experiment E7 — the paper's remark that the Figure 2
//! cascade "gets slow with larger pipelines").
//!
//! Structure for depth `n ≥ 4`:
//!
//! ```text
//! stage 0        fetch (PC self-increment, instruction ROM)
//! stage 1        decode: two RF read ports (the forwarded reads),
//!                RF write controls
//! stage 2        execute: C := a + b
//! stages 3..n-2  pass-through (C travels; hits multiply)
//! stage n-1      write back: RF := C
//! ```
//!
//! Every added stage adds one hit comparator + one select level to a
//! decode operand, exactly the scaling the paper warns about.

use autopipe_hdl::Netlist;
use autopipe_psm::{FileDecl, Fragment, MachineSpec, Plan, ReadPort, RegisterDecl};
use autopipe_synth::{ForwardingSpec, SynthOptions};

/// Builds the depth-`n` machine plan.
///
/// # Panics
///
/// Panics for `n < 4`.
pub fn deep_plan(n: usize) -> Plan {
    assert!(n >= 4, "deep machine needs at least 4 stages");
    let mut spec = MachineSpec::new(format!("deep{n}"), n);
    spec.register(RegisterDecl::new("PC", 5).written_by(0).visible());
    spec.register(RegisterDecl::new("IR", 16).written_by(0));
    spec.register(RegisterDecl::new("A", 16).written_by(1));
    spec.register(RegisterDecl::new("B", 16).written_by(1));
    // C written by stage 2 and copied through every later stage up to
    // n-2; the designer names it as the forwarding register.
    let mut c = RegisterDecl::new("C", 16);
    for k in 2..n - 1 {
        c = c.written_by(k);
    }
    spec.register(c);
    spec.file(FileDecl::read_only("IMEM", 5, 16));
    spec.file(FileDecl::new("RF", 3, 16, n - 1).ctrl(1).visible());

    // Stage 0: fetch.
    let mut f0 = Netlist::new("F");
    let pc = f0.input("PC", 5);
    let insn = f0.input("insn", 16);
    let one = f0.constant(1, 5);
    let npc = f0.add(pc, one);
    f0.label("PC", npc);
    f0.label("IR", insn);
    let mut fa = Netlist::new("F_addr");
    let pca = fa.input("PC", 5);
    fa.label("addr", pca);
    spec.stage(
        0,
        "F",
        Fragment::new(f0).expect("combinational"),
        vec![ReadPort::new(
            "IMEM",
            "insn",
            Fragment::new(fa).expect("combinational"),
        )],
    );

    // Stage 1: decode with two forwarded operand reads.
    // insn: [15:13] dst, [12:10] srcA, [9:7] srcB, [6:0] imm.
    let mut f1 = Netlist::new("D");
    let ir = f1.input("IR", 16);
    let av = f1.input("opA", 16);
    let bv = f1.input("opB", 16);
    let imm = f1.slice(ir, 6, 0);
    let immx = f1.zext(imm, 16);
    let b = f1.add(bv, immx);
    f1.label("A", av);
    f1.label("B", b);
    let we = f1.one();
    f1.label("RF.we", we);
    let wa = f1.slice(ir, 15, 13);
    f1.label("RF.wa", wa);
    let mut ga = Netlist::new("D_a");
    let ira = ga.input("IR", 16);
    let aa = ga.slice(ira, 12, 10);
    ga.label("addr", aa);
    let mut gb = Netlist::new("D_b");
    let irb = gb.input("IR", 16);
    let ab = gb.slice(irb, 9, 7);
    gb.label("addr", ab);
    spec.stage(
        1,
        "D",
        Fragment::new(f1).expect("combinational"),
        vec![
            ReadPort::new("RF", "opA", Fragment::new(ga).expect("combinational")),
            ReadPort::new("RF", "opB", Fragment::new(gb).expect("combinational")),
        ],
    );

    // Stage 2: execute.
    let mut f2 = Netlist::new("X");
    let a = f2.input("A", 16);
    let b = f2.input("B", 16);
    let c = f2.add(a, b);
    f2.label("C", c);
    spec.stage(2, "X", Fragment::new(f2).expect("combinational"), vec![]);

    // Stages 3..n-2: pure pass-through (C copies automatically).
    for k in 3..n - 1 {
        let mut fk = Netlist::new(format!("P{k}"));
        fk.constant(0, 1); // a fragment needs at least one node
        spec.stage(
            k,
            format!("P{k}"),
            Fragment::new(fk).expect("combinational"),
            vec![],
        );
    }

    // Stage n-1: write back.
    let mut fw = Netlist::new("W");
    let c = fw.input("C", 16);
    fw.label("RF", c);
    spec.stage(
        n - 1,
        "W",
        Fragment::new(fw).expect("combinational"),
        vec![],
    );

    spec.plan().expect("deep machine plans")
}

/// The designer options for the deep machine.
pub fn deep_options() -> SynthOptions {
    SynthOptions::new()
        .with_forwarding(ForwardingSpec::forward("RF", "C"))
        .without_monitors()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_synth::{MuxTopology, PipelineSynthesizer};
    use autopipe_verify::Cosim;

    #[test]
    fn deep_machines_plan_and_pipeline() {
        for n in [4, 6, 9] {
            let plan = deep_plan(n);
            let pm = PipelineSynthesizer::new(deep_options()).run(&plan).unwrap();
            // Hits span stages 2..n-1 for each decode operand.
            let hits: Vec<usize> = (2..n).collect();
            for p in pm.report.forwards.iter().filter(|p| p.stage == 1) {
                assert_eq!(p.hit_stages, hits, "depth {n}");
            }
        }
    }

    #[test]
    fn deep_machine_is_consistent() {
        let plan = deep_plan(6);
        let pm = PipelineSynthesizer::new(deep_options()).run(&plan).unwrap();
        let mut cosim = Cosim::new(&pm).unwrap();
        cosim.run(150).unwrap();
    }

    #[test]
    fn tree_variant_is_consistent_too() {
        let plan = deep_plan(7);
        let pm = PipelineSynthesizer::new(deep_options().with_topology(MuxTopology::Tree))
            .run(&plan)
            .unwrap();
        let mut cosim = Cosim::new(&pm).unwrap();
        cosim.run(150).unwrap();
    }
}
