//! # autopipe-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper (E1–E3) plus the
//! quantitative studies its prose implies (E4–E9); see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for paper-vs-measured
//! notes. The `report` binary prints everything; the Criterion benches
//! measure the heavy kernels (simulation, synthesis, SAT).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deep;
pub mod experiments;
pub mod table;
pub mod toy;
