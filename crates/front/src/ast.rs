//! Abstract syntax of a `.psm` design, plus the canonical
//! pretty-printer.
//!
//! The printer emits exactly the concrete syntax the parser accepts, so
//! `parse(print(d))` reproduces `d` up to spans — the round-trip
//! property the test suite checks on random designs.

use crate::diag::Span;
use std::fmt;

/// One parsed `.psm` file.
#[derive(Debug, Clone)]
pub struct Design {
    pub name: String,
    pub name_span: Span,
    pub n_stages: usize,
    pub inputs: Vec<InputDecl>,
    pub regs: Vec<RegDecl>,
    pub files: Vec<FileDeclAst>,
    pub stages: Vec<StageDecl>,
    pub annotations: Vec<Annotation>,
}

#[derive(Debug, Clone)]
pub struct InputDecl {
    pub name: String,
    pub width: u32,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct RegDecl {
    pub name: String,
    pub width: u32,
    pub writers: Vec<usize>,
    pub init: u64,
    pub visible: bool,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct FileDeclAst {
    pub name: String,
    pub addr_width: u32,
    pub data_width: u32,
    pub read_only: bool,
    pub write_stage: usize,
    pub ctrl_stage: Option<usize>,
    pub init: Vec<u64>,
    pub visible: bool,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct StageDecl {
    pub index: usize,
    pub index_span: Span,
    pub name: String,
    pub stmts: Vec<Stmt>,
}

/// A statement inside a `stage` block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `read alias = FILE[addr_expr];`
    Read {
        alias: String,
        file: String,
        file_span: Span,
        addr: Expr,
    },
    /// `let name = expr;`
    Let {
        name: String,
        span: Span,
        expr: Expr,
    },
    /// `target = expr;` — target is a register/file output, optionally
    /// with a `.we` / `.wa` control suffix.
    Assign {
        target: String,
        suffix: Option<CtrlSuffix>,
        span: Span,
        expr: Expr,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlSuffix {
    We,
    Wa,
}

/// Machine-level annotations lowering to `SynthOptions`.
#[derive(Debug, Clone)]
pub enum Annotation {
    /// `forward T via S;` / `forward T;`
    Forward {
        target: String,
        target_span: Span,
        via: Option<(String, Span)>,
    },
    /// `interlock T;`
    Interlock { target: String, target_span: Span },
    /// `unprotected T;`
    Unprotected { target: String, target_span: Span },
    /// `topology tree;` / `topology chain;`
    Topology { tree: bool },
    /// `ext_stalls;`
    ExtStalls,
    /// `no_monitors;`
    NoMonitors,
    /// `no_transitive_dhaz;`
    NoTransitiveDhaz,
    /// `speculate NAME at K port P { guess = e; resolve at J ...; fixup ...; }`
    Speculate(SpeculateAst),
}

#[derive(Debug, Clone)]
pub struct SpeculateAst {
    pub name: String,
    pub stage: usize,
    pub stage_span: Span,
    pub port: String,
    pub port_span: Span,
    pub guess: Expr,
    pub resolve_stage: usize,
    pub resolve_span: Span,
    /// `None` = re-read through the forwarding network; `Some(input)` =
    /// compare against an external input.
    pub actual_input: Option<String>,
    pub fixups: Vec<FixupAst>,
}

#[derive(Debug, Clone)]
pub struct FixupAst {
    pub register: String,
    pub register_span: Span,
    pub value: FixupValueAst,
}

#[derive(Debug, Clone)]
pub enum FixupValueAst {
    Const(u64),
    Input(String),
    Instance(String),
    Actual,
}

/// Expressions. Every node carries its span for diagnostics.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Register, alias, let-binding or external input reference.
    Ident {
        name: String,
        span: Span,
    },
    /// Explicit register instance `R.k`.
    Instance {
        name: String,
        k: usize,
        span: Span,
    },
    /// Sized literal `w'hv`.
    Const {
        value: u64,
        width: u32,
        span: Span,
    },
    Unary {
        op: UnOp,
        a: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        a: Box<Expr>,
        b: Box<Expr>,
        span: Span,
    },
    /// `sel ? a : b`.
    Mux {
        sel: Box<Expr>,
        a: Box<Expr>,
        b: Box<Expr>,
        span: Span,
    },
    /// `e[hi:lo]`.
    Slice {
        a: Box<Expr>,
        hi: u32,
        lo: u32,
        span: Span,
    },
    /// `e[i]` single-bit index.
    Bit {
        a: Box<Expr>,
        idx: u32,
        span: Span,
    },
    /// Builtin call: sext/zext/cat/ult/ule/slt/sle/redor/redand/redxor.
    Call {
        func: String,
        func_span: Span,
        args: Vec<Expr>,
        /// Width argument of sext/zext, stored separately.
        width: Option<u32>,
        span: Span,
    },
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::Instance { span, .. }
            | Expr::Const { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Mux { span, .. }
            | Expr::Slice { span, .. }
            | Expr::Bit { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    Xor,
    And,
    Eq,
    Ne,
    Shl,
    Lshr,
    Ashr,
    Add,
    Sub,
    Mul,
}

impl BinOp {
    /// Binding strength; higher binds tighter. Mirrors the parser's
    /// precedence climbing levels.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne => 4,
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul => 7,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::And => "&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Shl => "<<",
            BinOp::Lshr => ">>",
            BinOp::Ashr => ">>>",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        }
    }
}

// ---------------------------------------------------------------------
// Pretty-printer
// ---------------------------------------------------------------------

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine {}({}) {{", self.name, self.n_stages)?;
        for i in &self.inputs {
            writeln!(f, "  input {} : {};", i.name, i.width)?;
        }
        for r in &self.regs {
            write!(f, "  reg {} : {} writes(", r.name, r.width)?;
            for (i, w) in r.writers.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{w}")?;
            }
            write!(f, ")")?;
            if r.init != 0 {
                write!(f, " init {}", r.init)?;
            }
            if r.visible {
                write!(f, " visible")?;
            }
            writeln!(f, ";")?;
        }
        for d in &self.files {
            write!(
                f,
                "  file {} : [{} x {}]",
                d.name, d.addr_width, d.data_width
            )?;
            if d.read_only {
                write!(f, " readonly")?;
            } else {
                write!(f, " write({})", d.write_stage)?;
                if let Some(c) = d.ctrl_stage {
                    write!(f, " ctrl({c})")?;
                }
            }
            if !d.init.is_empty() {
                write!(f, " init {{ ")?;
                for (i, v) in d.init.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " }}")?;
            }
            if d.visible {
                write!(f, " visible")?;
            }
            writeln!(f, ";")?;
        }
        for s in &self.stages {
            writeln!(f)?;
            writeln!(f, "  stage {} {} {{", s.index, s.name)?;
            for st in &s.stmts {
                match st {
                    Stmt::Read {
                        alias, file, addr, ..
                    } => writeln!(f, "    read {alias} = {file}[{addr}];")?,
                    Stmt::Let { name, expr, .. } => writeln!(f, "    let {name} = {expr};")?,
                    Stmt::Assign {
                        target,
                        suffix,
                        expr,
                        ..
                    } => {
                        let sfx = match suffix {
                            Some(CtrlSuffix::We) => ".we",
                            Some(CtrlSuffix::Wa) => ".wa",
                            None => "",
                        };
                        writeln!(f, "    {target}{sfx} = {expr};")?;
                    }
                }
            }
            writeln!(f, "  }}")?;
        }
        if !self.annotations.is_empty() {
            writeln!(f)?;
        }
        for a in &self.annotations {
            match a {
                Annotation::Forward { target, via, .. } => match via {
                    Some((s, _)) => writeln!(f, "  forward {target} via {s};")?,
                    None => writeln!(f, "  forward {target};")?,
                },
                Annotation::Interlock { target, .. } => writeln!(f, "  interlock {target};")?,
                Annotation::Unprotected { target, .. } => writeln!(f, "  unprotected {target};")?,
                Annotation::Topology { tree } => {
                    writeln!(f, "  topology {};", if *tree { "tree" } else { "chain" })?;
                }
                Annotation::ExtStalls => writeln!(f, "  ext_stalls;")?,
                Annotation::NoMonitors => writeln!(f, "  no_monitors;")?,
                Annotation::NoTransitiveDhaz => writeln!(f, "  no_transitive_dhaz;")?,
                Annotation::Speculate(s) => {
                    writeln!(
                        f,
                        "  speculate {} at {} port {} {{",
                        s.name, s.stage, s.port
                    )?;
                    writeln!(f, "    guess = {};", s.guess)?;
                    match &s.actual_input {
                        Some(input) => writeln!(
                            f,
                            "    resolve at {} from input {};",
                            s.resolve_stage, input
                        )?,
                        None => writeln!(f, "    resolve at {} by reread;", s.resolve_stage)?,
                    }
                    for fx in &s.fixups {
                        let v = match &fx.value {
                            FixupValueAst::Const(c) => format!("const {c}"),
                            FixupValueAst::Input(n) => format!("input {n}"),
                            FixupValueAst::Instance(n) => format!("instance {n}"),
                            FixupValueAst::Actual => "actual".into(),
                        };
                        writeln!(f, "    fixup {} = {v};", fx.register)?;
                    }
                    writeln!(f, "  }}")?;
                }
            }
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.print(f, 0)
    }
}

impl Expr {
    /// Precedence-aware printing: parenthesise exactly when the child
    /// binds looser than the context requires.
    fn print(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        match self {
            Expr::Ident { name, .. } => write!(f, "{name}"),
            Expr::Instance { name, k, .. } => write!(f, "{name}.{k}"),
            Expr::Const { value, width, .. } => write!(f, "{width}'h{value:x}"),
            Expr::Unary { op, a, .. } => {
                write!(f, "{}", if *op == UnOp::Not { "~" } else { "-" })?;
                a.print(f, 9)
            }
            Expr::Binary { op, a, b, .. } => {
                let p = op.precedence();
                let parens = p < min_prec;
                if parens {
                    write!(f, "(")?;
                }
                a.print(f, p)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: the right child needs one more level.
                b.print(f, p + 1)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Mux { sel, a, b, .. } => {
                let parens = min_prec > 0;
                if parens {
                    write!(f, "(")?;
                }
                sel.print(f, 1)?;
                write!(f, " ? ")?;
                a.print(f, 1)?;
                write!(f, " : ")?;
                b.print(f, 0)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Slice { a, hi, lo, .. } => {
                a.print(f, 8)?;
                write!(f, "[{hi}:{lo}]")
            }
            Expr::Bit { a, idx, .. } => {
                a.print(f, 8)?;
                write!(f, "[{idx}]")
            }
            Expr::Call {
                func, args, width, ..
            } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.print(f, 0)?;
                }
                if let Some(w) = width {
                    if !args.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, ")")
            }
        }
    }
}
