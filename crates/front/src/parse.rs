//! Recursive-descent parser for the `.psm` language.
//!
//! Grammar (see `docs/PSM_LANG.md` for the full EBNF):
//!
//! ```text
//! design  := "machine" IDENT "(" INT ")" "{" item* "}"
//! item    := input-decl | reg-decl | file-decl | stage | annotation
//! ```
//!
//! Keywords are contextual: the lexer emits them as identifiers and the
//! parser classifies them, so error messages can say what was expected.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::lex::{lex, Tok, Token};

/// Builtin function names accepted in call position.
pub const BUILTINS: &[&str] = &[
    "sext", "zext", "cat", "redor", "redand", "redxor", "ult", "ule", "slt", "sle",
];

/// Deepest expression nesting the parser accepts. Expression parsing is
/// recursive-descent, so pathological inputs like `((((…` or `~~~~…x`
/// would otherwise exhaust the stack instead of producing a diagnostic.
const MAX_EXPR_DEPTH: usize = 128;

/// Largest stage count a `machine` header may declare. Lowering allocates
/// per-stage tables, so an absurd header like `machine m(4000000000)` must
/// be rejected here rather than attempted.
const MAX_STAGES: u64 = 64;

/// Parses one `.psm` design, returning the first error encountered.
pub fn parse_design(src: &str) -> Result<Design, Diagnostic> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        depth: 0,
    }
    .design()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Current expression-recursion depth, bounded by [`MAX_EXPR_DEPTH`].
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, what: &str) -> Diagnostic {
        Diagnostic::new(
            format!("expected {what}, found {}", self.peek().describe()),
            self.span(),
            format!("expected {what}"),
        )
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<Span, Diagnostic> {
        if *self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(self.err(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            _ => Err(self.err(what)),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(u64, Span), Diagnostic> {
        match *self.peek() {
            Tok::Int(v) => {
                let span = self.bump().span;
                Ok((v, span))
            }
            _ => Err(self.err(what)),
        }
    }

    fn expect_small_int(&mut self, what: &str) -> Result<(u32, Span), Diagnostic> {
        let (v, span) = self.expect_int(what)?;
        u32::try_from(v)
            .map(|v| (v, span))
            .map_err(|_| Diagnostic::new(format!("{what} `{v}` is too large"), span, "too large"))
    }

    /// True if the current token is the contextual keyword `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes the contextual keyword `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.err(&format!("`{kw}`")))
        }
    }

    // -----------------------------------------------------------------
    // Top level
    // -----------------------------------------------------------------

    fn design(&mut self) -> Result<Design, Diagnostic> {
        self.expect_kw("machine")?;
        let (name, name_span) = self.expect_ident("machine name")?;
        self.expect(Tok::LParen, "`(`")?;
        let (n_stages, stages_span) = self.expect_int("stage count")?;
        if n_stages > MAX_STAGES {
            return Err(Diagnostic::new(
                format!("stage count {n_stages} exceeds the supported maximum of {MAX_STAGES}"),
                stages_span,
                "too many stages",
            ));
        }
        self.expect(Tok::RParen, "`)`")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut d = Design {
            name,
            name_span,
            n_stages: n_stages as usize,
            inputs: Vec::new(),
            regs: Vec::new(),
            files: Vec::new(),
            stages: Vec::new(),
            annotations: Vec::new(),
        };
        while *self.peek() != Tok::RBrace {
            match self.peek() {
                Tok::Ident(s) => match s.as_str() {
                    "input" => d.inputs.push(self.input_decl()?),
                    "reg" => d.regs.push(self.reg_decl()?),
                    "file" => d.files.push(self.file_decl()?),
                    "stage" => d.stages.push(self.stage_decl()?),
                    "forward" | "interlock" | "unprotected" | "topology" | "ext_stalls"
                    | "no_monitors" | "no_transitive_dhaz" | "speculate" => {
                        let a = self.annotation()?;
                        d.annotations.push(a);
                    }
                    _ => return Err(self.err("a declaration, stage or annotation")),
                },
                Tok::Eof => return Err(self.err("`}` closing the machine body")),
                _ => return Err(self.err("a declaration, stage or annotation")),
            }
        }
        self.bump(); // `}`
        if *self.peek() != Tok::Eof {
            return Err(self.err("end of file after the machine body"));
        }
        Ok(d)
    }

    fn input_decl(&mut self) -> Result<InputDecl, Diagnostic> {
        let start = self.expect_kw("input")?;
        let (name, _) = self.expect_ident("input name")?;
        self.expect(Tok::Colon, "`:`")?;
        let (width, wspan) = self.expect_small_int("input width")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(InputDecl {
            name,
            width,
            span: start.to(wspan),
        })
    }

    fn reg_decl(&mut self) -> Result<RegDecl, Diagnostic> {
        let start = self.expect_kw("reg")?;
        let (name, name_span) = self.expect_ident("register name")?;
        self.expect(Tok::Colon, "`:`")?;
        let (width, _) = self.expect_small_int("register width")?;
        self.expect_kw("writes")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut writers = Vec::new();
        loop {
            let (k, _) = self.expect_int("writer stage index")?;
            writers.push(k as usize);
            if !matches!(self.peek(), Tok::Comma) {
                break;
            }
            self.bump();
        }
        self.expect(Tok::RParen, "`)`")?;
        let mut init = 0;
        if self.eat_kw("init") {
            init = self.expect_int("initial value")?.0;
        }
        let visible = self.eat_kw("visible");
        let end = self.expect(Tok::Semi, "`;`")?;
        let _ = name_span;
        Ok(RegDecl {
            name,
            width,
            writers,
            init,
            visible,
            span: start.to(end),
        })
    }

    fn file_decl(&mut self) -> Result<FileDeclAst, Diagnostic> {
        let start = self.expect_kw("file")?;
        let (name, _) = self.expect_ident("register file name")?;
        self.expect(Tok::Colon, "`:`")?;
        self.expect(Tok::LBracket, "`[`")?;
        let (addr_width, _) = self.expect_small_int("address width")?;
        self.expect_kw("x")?;
        let (data_width, _) = self.expect_small_int("data width")?;
        self.expect(Tok::RBracket, "`]`")?;
        let (read_only, write_stage, ctrl_stage) = if self.eat_kw("readonly") {
            (true, 0, None)
        } else {
            self.expect_kw("write")?;
            self.expect(Tok::LParen, "`(`")?;
            let (w, _) = self.expect_int("write stage index")?;
            self.expect(Tok::RParen, "`)`")?;
            let ctrl = if self.eat_kw("ctrl") {
                self.expect(Tok::LParen, "`(`")?;
                let (c, _) = self.expect_int("control stage index")?;
                self.expect(Tok::RParen, "`)`")?;
                Some(c as usize)
            } else {
                None
            };
            (false, w as usize, ctrl)
        };
        let mut init = Vec::new();
        if self.eat_kw("init") {
            self.expect(Tok::LBrace, "`{`")?;
            if *self.peek() != Tok::RBrace {
                loop {
                    init.push(self.expect_int("initial memory word")?.0);
                    if !matches!(self.peek(), Tok::Comma) {
                        break;
                    }
                    self.bump();
                }
            }
            self.expect(Tok::RBrace, "`}`")?;
        }
        let visible = self.eat_kw("visible");
        let end = self.expect(Tok::Semi, "`;`")?;
        Ok(FileDeclAst {
            name,
            addr_width,
            data_width,
            read_only,
            write_stage,
            ctrl_stage,
            init,
            visible,
            span: start.to(end),
        })
    }

    fn stage_decl(&mut self) -> Result<StageDecl, Diagnostic> {
        self.expect_kw("stage")?;
        let (index, index_span) = self.expect_int("stage index")?;
        let (name, _) = self.expect_ident("stage name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("`}` closing the stage body"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(StageDecl {
            index: index as usize,
            index_span,
            name,
            stmts,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        // `read alias = FILE[addr];`
        if self.at_kw("read") && matches!(self.peek2(), Tok::Ident(_)) {
            self.bump();
            let (alias, _) = self.expect_ident("read-port alias")?;
            self.expect(Tok::Assign, "`=`")?;
            let (file, file_span) = self.expect_ident("register file name")?;
            self.expect(Tok::LBracket, "`[`")?;
            let addr = self.expr()?;
            self.expect(Tok::RBracket, "`]`")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Read {
                alias,
                file,
                file_span,
                addr,
            });
        }
        // `let name = expr;`
        if self.at_kw("let") && matches!(self.peek2(), Tok::Ident(_)) {
            self.bump();
            let (name, span) = self.expect_ident("binding name")?;
            self.expect(Tok::Assign, "`=`")?;
            let expr = self.expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Let { name, span, expr });
        }
        // `target[.we|.wa] = expr;`
        let (target, span) = self.expect_ident("assignment target")?;
        let suffix = if *self.peek() == Tok::Dot {
            self.bump();
            let (s, sspan) = self.expect_ident("`we` or `wa`")?;
            match s.as_str() {
                "we" => Some(CtrlSuffix::We),
                "wa" => Some(CtrlSuffix::Wa),
                _ => {
                    return Err(Diagnostic::new(
                        format!("unknown control suffix `.{s}`"),
                        sspan,
                        "expected `we` or `wa`",
                    ))
                }
            }
        } else {
            None
        };
        self.expect(Tok::Assign, "`=`")?;
        let expr = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(Stmt::Assign {
            target,
            suffix,
            span,
            expr,
        })
    }

    // -----------------------------------------------------------------
    // Annotations
    // -----------------------------------------------------------------

    fn annotation(&mut self) -> Result<Annotation, Diagnostic> {
        if self.eat_kw("forward") {
            let (target, target_span) = self.expect_ident("register or file name")?;
            let via = if self.eat_kw("via") {
                let (s, sspan) = self.expect_ident("source register name")?;
                Some((s, sspan))
            } else {
                None
            };
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::Forward {
                target,
                target_span,
                via,
            });
        }
        if self.eat_kw("interlock") {
            let (target, target_span) = self.expect_ident("register or file name")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::Interlock {
                target,
                target_span,
            });
        }
        if self.eat_kw("unprotected") {
            let (target, target_span) = self.expect_ident("register or file name")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::Unprotected {
                target,
                target_span,
            });
        }
        if self.eat_kw("topology") {
            let (kind, kspan) = self.expect_ident("`tree` or `chain`")?;
            let tree = match kind.as_str() {
                "tree" => true,
                "chain" => false,
                _ => {
                    return Err(Diagnostic::new(
                        format!("unknown topology `{kind}`"),
                        kspan,
                        "expected `tree` or `chain`",
                    ))
                }
            };
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::Topology { tree });
        }
        if self.eat_kw("ext_stalls") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::ExtStalls);
        }
        if self.eat_kw("no_monitors") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::NoMonitors);
        }
        if self.eat_kw("no_transitive_dhaz") {
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Annotation::NoTransitiveDhaz);
        }
        self.expect_kw("speculate")?;
        let (name, _) = self.expect_ident("speculation name")?;
        self.expect_kw("at")?;
        let (stage, stage_span) = self.expect_int("speculating stage index")?;
        self.expect_kw("port")?;
        let (port, port_span) = self.expect_ident("port name")?;
        self.expect(Tok::LBrace, "`{`")?;
        self.expect_kw("guess")?;
        self.expect(Tok::Assign, "`=`")?;
        let guess = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        self.expect_kw("resolve")?;
        self.expect_kw("at")?;
        let (resolve_stage, resolve_span) = self.expect_int("resolving stage index")?;
        let actual_input = if self.eat_kw("from") {
            self.expect_kw("input")?;
            Some(self.expect_ident("input name")?.0)
        } else {
            self.expect_kw("by")?;
            self.expect_kw("reread")?;
            None
        };
        self.expect(Tok::Semi, "`;`")?;
        let mut fixups = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            self.expect_kw("fixup")?;
            let (register, register_span) = self.expect_ident("register name")?;
            self.expect(Tok::Assign, "`=`")?;
            let value = if self.eat_kw("const") {
                FixupValueAst::Const(self.expect_int("constant value")?.0)
            } else if self.eat_kw("input") {
                FixupValueAst::Input(self.expect_ident("input name")?.0)
            } else if self.eat_kw("instance") {
                FixupValueAst::Instance(self.expect_ident("instance port name")?.0)
            } else if self.eat_kw("actual") {
                FixupValueAst::Actual
            } else {
                return Err(self.err("`const`, `input`, `instance` or `actual`"));
            };
            self.expect(Tok::Semi, "`;`")?;
            fixups.push(FixupAst {
                register,
                register_span,
                value,
            });
        }
        self.bump(); // `}`
        Ok(Annotation::Speculate(SpeculateAst {
            name,
            stage: stage as usize,
            stage_span,
            port,
            port_span,
            guess,
            resolve_stage: resolve_stage as usize,
            resolve_span,
            actual_input,
            fixups,
        }))
    }

    // -----------------------------------------------------------------
    // Expressions (precedence climbing)
    // -----------------------------------------------------------------

    /// Bumps the recursion depth, erroring out on pathological nesting.
    fn enter(&mut self) -> Result<(), Diagnostic> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(Diagnostic::new(
                "expression is nested too deeply",
                self.span(),
                format!("more than {MAX_EXPR_DEPTH} levels of nesting"),
            ));
        }
        Ok(())
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.enter()?;
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> Result<Expr, Diagnostic> {
        let sel = self.binary(1)?;
        if *self.peek() != Tok::Question {
            return Ok(sel);
        }
        self.bump();
        let a = self.binary(1)?;
        self.expect(Tok::Colon, "`:`")?;
        // Right-associative: `s ? a : t ? b : c` nests in the else arm.
        let b = self.expr()?;
        let span = sel.span().to(b.span());
        Ok(Expr::Mux {
            sel: Box::new(sel),
            a: Box::new(a),
            b: Box::new(b),
            span,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Pipe => BinOp::Or,
                Tok::Caret => BinOp::Xor,
                Tok::Amp => BinOp::And,
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                Tok::Shl => BinOp::Shl,
                Tok::Lshr => BinOp::Lshr,
                Tok::Ashr => BinOp::Ashr,
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Star => BinOp::Mul,
                _ => break,
            };
            if op.precedence() < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(op.precedence() + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                a: Box::new(lhs),
                b: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        self.enter()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, Diagnostic> {
        let op = match self.peek() {
            Tok::Tilde => Some(UnOp::Not),
            Tok::Minus => Some(UnOp::Neg),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let a = self.unary()?;
            let span = start.to(a.span());
            return Ok(Expr::Unary {
                op,
                a: Box::new(a),
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary()?;
        while *self.peek() == Tok::LBracket {
            self.bump();
            let (hi, _) = self.expect_small_int("bit index")?;
            if *self.peek() == Tok::Colon {
                self.bump();
                let (lo, _) = self.expect_small_int("low bit index")?;
                let end = self.expect(Tok::RBracket, "`]`")?;
                let span = e.span().to(end);
                e = Expr::Slice {
                    a: Box::new(e),
                    hi,
                    lo,
                    span,
                };
            } else {
                let end = self.expect(Tok::RBracket, "`]`")?;
                let span = e.span().to(end);
                e = Expr::Bit {
                    a: Box::new(e),
                    idx: hi,
                    span,
                };
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek().clone() {
            Tok::Sized { width, value } => {
                let span = self.bump().span;
                Ok(Expr::Const { value, width, span })
            }
            Tok::Int(_) => Err(Diagnostic::new(
                "unsized integer in expression position",
                self.span(),
                "use a sized literal like `8'd5`",
            )),
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let span = self.bump().span;
                // Builtin call?
                if *self.peek() == Tok::LParen && BUILTINS.contains(&name.as_str()) {
                    return self.call(name, span);
                }
                // Explicit instance ref `R.k`?
                if *self.peek() == Tok::Dot && matches!(self.peek2(), Tok::Int(_)) {
                    self.bump();
                    let (k, kspan) = self.expect_int("instance stage index")?;
                    return Ok(Expr::Instance {
                        name,
                        k: k as usize,
                        span: span.to(kspan),
                    });
                }
                Ok(Expr::Ident { name, span })
            }
            _ => Err(self.err("an expression")),
        }
    }

    fn call(&mut self, func: String, func_span: Span) -> Result<Expr, Diagnostic> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        let mut width = None;
        if *self.peek() != Tok::RParen {
            loop {
                // sext/zext take a trailing bare-integer width argument.
                if matches!(self.peek(), Tok::Int(_))
                    && (func == "sext" || func == "zext")
                    && width.is_none()
                {
                    width = Some(self.expect_small_int("target width")?.0);
                } else {
                    args.push(self.expr()?);
                }
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let end = self.expect(Tok::RParen, "`)`")?;
        Ok(Expr::Call {
            func,
            func_span,
            args,
            width,
            span: func_span.to(end),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_machine() {
        let d = parse_design(
            "machine m(2) {\n  reg X : 8 writes(1);\n  stage 0 A { }\n  stage 1 B { X = X + 8'd1; }\n}\n",
        )
        .unwrap();
        assert_eq!(d.name, "m");
        assert_eq!(d.n_stages, 2);
        assert_eq!(d.regs.len(), 1);
        assert_eq!(d.stages.len(), 2);
    }

    #[test]
    fn parses_precedence() {
        let d = parse_design(
            "machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A { X = X + X * X & X; }\n}\n",
        )
        .unwrap();
        let Stmt::Assign { expr, .. } = &d.stages[0].stmts[0] else {
            panic!()
        };
        // `&` binds loosest here: (X + (X * X)) & X.
        assert_eq!(format!("{expr}"), "X + X * X & X");
    }

    #[test]
    fn parses_ternary_right_assoc() {
        let d = parse_design(
            "machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A { X = X[0] ? X : X[1] ? X : X; }\n}\n",
        )
        .unwrap();
        let Stmt::Assign { expr, .. } = &d.stages[0].stmts[0] else {
            panic!()
        };
        assert_eq!(format!("{expr}"), "X[0] ? X : X[1] ? X : X");
    }

    #[test]
    fn parses_instance_and_slice() {
        let d = parse_design(
            "machine m(4) {\n  reg C : 32 writes(2, 3);\n  stage 3 W { C = C.3[31:16] == 16'h0 ? C.2 : C; }\n}\n",
        )
        .unwrap();
        let Stmt::Assign { expr, .. } = &d.stages[0].stmts[0] else {
            panic!()
        };
        assert_eq!(format!("{expr}"), "C.3[31:16] == 16'h0 ? C.2 : C");
    }

    #[test]
    fn parses_calls() {
        let d = parse_design(
            "machine m(1) {\n  reg X : 32 writes(0);\n  stage 0 A { X = sext(X[15:0], 32) + cat(X[15:0], 16'h0); }\n}\n",
        )
        .unwrap();
        let Stmt::Assign { expr, .. } = &d.stages[0].stmts[0] else {
            panic!()
        };
        assert_eq!(format!("{expr}"), "sext(X[15:0], 32) + cat(X[15:0], 16'h0)");
    }

    #[test]
    fn rejects_unsized_int_in_expr() {
        let err =
            parse_design("machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A { X = X + 1; }\n}\n")
                .unwrap_err();
        assert!(err.message.contains("unsized integer"));
    }

    #[test]
    fn parses_annotations() {
        let d = parse_design(
            "machine m(5) {\n  reg C : 32 writes(2, 3);\n  forward GPR via C;\n  forward DPC;\n  interlock RF;\n  topology tree;\n  ext_stalls;\n}\n",
        )
        .unwrap();
        assert_eq!(d.annotations.len(), 5);
    }

    #[test]
    fn parses_speculation_block() {
        let d = parse_design(
            "machine m(5) {\n  input irq : 1;\n  reg PC : 32 writes(1);\n  speculate irq at 0 port irq {\n    guess = 1'b0;\n    resolve at 2 from input irq;\n    fixup PC = const 16;\n    fixup DPC = actual;\n  }\n}\n",
        )
        .unwrap();
        let Annotation::Speculate(s) = &d.annotations[0] else {
            panic!()
        };
        assert_eq!(s.name, "irq");
        assert_eq!(s.resolve_stage, 2);
        assert_eq!(s.fixups.len(), 2);
    }

    #[test]
    fn roundtrips_through_pretty_printer() {
        let src = "machine m(3) {\n  input go : 1;\n  reg PC : 4 writes(0) init 1 visible;\n  reg IR : 8 writes(0);\n  file RF : [2 x 8] write(2) ctrl(0) visible;\n  file IMEM : [4 x 8] readonly init { 18, 33, 66, 129 };\n\n  stage 0 IF {\n    read insn = IMEM[PC[1:0]];\n    IR = insn;\n    PC = PC + 4'd1;\n  }\n\n  forward RF;\n  topology chain;\n}\n";
        let d1 = parse_design(src).unwrap();
        let printed = format!("{d1}");
        let d2 = parse_design(&printed).unwrap();
        assert_eq!(printed, format!("{d2}"));
    }
}
