//! `autopipe-front`: the textual front end and Verilog back end.
//!
//! This crate closes the loop around the synthesis core:
//!
//! * **`.psm` language** — a small textual form of the paper's prepared
//!   sequential machine (stages, registers, register files, per-stage
//!   combinational logic, forwarding/speculation annotations). The
//!   [`lex`]/[`parse`]/[`lower`] pipeline turns it into an
//!   [`autopipe_psm::MachineSpec`] plus [`autopipe_synth::SynthOptions`]
//!   with source-located [`diag::Diagnostics`].
//! * **Verilog emitter** — [`emit_verilog`] walks a synthesized
//!   [`autopipe_synth::PipelinedMachine`]'s netlist and prints
//!   structural Verilog-2001.
//! * The `autopipe` CLI binary (in the workspace root) wires both into
//!   `parse`/`synth`/`verify`/`emit`/`report` subcommands.

pub mod ast;
pub mod diag;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod reader;
pub mod verilog;

pub use diag::{Diagnostic, Diagnostics, Severity, Span};
pub use reader::{read_verilog, ReadError};
pub use verilog::emit_verilog;

use autopipe_psm::MachineSpec;
use autopipe_synth::SynthOptions;

/// A fully front-ended design: the surface syntax plus its lowering.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The parsed surface AST (pretty-printable).
    pub design: ast::Design,
    /// The lowered machine specification, ready for `plan()`.
    pub spec: MachineSpec,
    /// Transformation options from the design's annotations.
    pub options: SynthOptions,
}

/// Parses and lowers `.psm` source text.
///
/// `file` is only used in rendered diagnostics.
///
/// # Errors
///
/// Returns every diagnostic collected while parsing or lowering.
pub fn compile(src: &str, file: &str) -> Result<Compiled, Diagnostics> {
    compile_traced(src, file, &autopipe_trace::Trace::disabled())
}

/// [`compile`] that records `parse` and `lower` phase spans into
/// `trace`, carrying source size and the lowered machine's shape. Error
/// paths record an `errors` count on the failing phase so a recorded
/// run shows where compilation stopped.
///
/// # Errors
///
/// Returns every diagnostic collected while parsing or lowering.
pub fn compile_traced(
    src: &str,
    file: &str,
    trace: &autopipe_trace::Trace,
) -> Result<Compiled, Diagnostics> {
    use autopipe_trace::Track;
    let fail = |errors| Diagnostics {
        file: file.to_string(),
        source: src.to_string(),
        errors,
    };
    let mut span = trace.span(Track::RUN, "phase", "parse");
    span.arg("bytes", src.len());
    let design = match parse::parse_design(src) {
        Ok(d) => d,
        Err(e) => {
            span.arg("errors", 1u64);
            return Err(fail(vec![e]));
        }
    };
    span.arg("stages", design.n_stages);
    span.end();

    let mut span = trace.span(Track::RUN, "phase", "lower");
    let (spec, options) = match lower::lower(&design) {
        Ok(ok) => ok,
        Err(errors) => {
            span.arg("errors", errors.len());
            return Err(fail(errors));
        }
    };
    span.args(vec![
        autopipe_trace::a("registers", spec.registers.len()),
        autopipe_trace::a("files", spec.files.len()),
        autopipe_trace::a("forwards", options.forwarding.len()),
    ]);
    span.end();
    Ok(Compiled {
        design,
        spec,
        options,
    })
}

/// [`compile`] followed by reading the file, with I/O errors folded into
/// the diagnostics.
///
/// # Errors
///
/// Returns diagnostics for unreadable files as well as language errors.
pub fn compile_file(path: &std::path::Path) -> Result<Compiled, Diagnostics> {
    compile_file_traced(path, &autopipe_trace::Trace::disabled())
}

/// [`compile_file`] with telemetry (see [`compile_traced`]).
///
/// # Errors
///
/// Returns diagnostics for unreadable files as well as language errors.
pub fn compile_file_traced(
    path: &std::path::Path,
    trace: &autopipe_trace::Trace,
) -> Result<Compiled, Diagnostics> {
    let src = std::fs::read_to_string(path).map_err(|e| Diagnostics {
        file: path.display().to_string(),
        source: String::new(),
        errors: vec![Diagnostic::whole_file(format!(
            "cannot read `{}`: {e}",
            path.display()
        ))],
    })?;
    compile_traced(&src, &path.display().to_string(), trace)
}
