//! Source-located diagnostics, dependency-free.
//!
//! A [`Diagnostic`] carries a byte-span into the original source; the
//! renderer resolves it to line/column and prints the offending line
//! with a caret underline, in the style popularised by rustc/miette:
//!
//! ```text
//! error: unknown stage index 7
//!   --> dlx.psm:14:9
//!    |
//! 14 |   stage 7 XX {
//!    |         ^ machine has 5 stages
//! ```

use std::fmt;
use std::ops::Range;

/// A byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl From<Range<usize>> for Span {
    fn from(r: Range<usize>) -> Span {
        Span {
            start: r.start,
            end: r.end,
        }
    }
}

/// How serious a diagnostic is. Parse/lowering failures are always
/// [`Severity::Error`]; the static analyzer also emits warnings and
/// downgraded ("allowed") findings through the same renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Fatal: the design is rejected.
    #[default]
    Error,
    /// Suspicious but not fatal.
    Warning,
    /// Reported for the record only (e.g. an `--allow`ed lint).
    Note,
}

impl Severity {
    /// The rendering prefix (`error`, `warning`, `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One error with an optional span label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Main message (shown after `error:`).
    pub message: String,
    /// Location in the source, if known.
    pub span: Option<Span>,
    /// Short label printed under the caret.
    pub label: String,
    /// Severity prefix used when rendering.
    pub severity: Severity,
    /// Stable diagnostic code (e.g. `AP0101`), rendered as
    /// `error[AP0101]:` when present.
    pub code: Option<String>,
}

impl Diagnostic {
    pub fn new(message: impl Into<String>, span: Span, label: impl Into<String>) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span: Some(span),
            label: label.into(),
            severity: Severity::Error,
            code: None,
        }
    }

    /// A machine-level error with no source location (e.g. a plan error
    /// produced after lowering).
    pub fn whole_file(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span: None,
            label: String::new(),
            severity: Severity::Error,
            code: None,
        }
    }

    /// Sets the severity prefix.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Attaches a stable diagnostic code.
    #[must_use]
    pub fn with_code(mut self, code: impl Into<String>) -> Diagnostic {
        self.code = Some(code.into());
        self
    }
}

/// All errors from one parse/lower run, with enough context to render.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// File name used in renderings.
    pub file: String,
    /// Full source text.
    pub source: String,
    /// Errors, in source order.
    pub errors: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.errors {
            render_one(&mut out, &self.file, &self.source, d);
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for Diagnostics {}

fn render_one(out: &mut String, file: &str, source: &str, d: &Diagnostic) {
    use fmt::Write;
    match &d.code {
        Some(code) => {
            let _ = writeln!(out, "{}[{code}]: {}", d.severity.as_str(), d.message);
        }
        None => {
            let _ = writeln!(out, "{}: {}", d.severity.as_str(), d.message);
        }
    }
    let Some(span) = d.span else {
        let _ = writeln!(out, "  --> {file}");
        return;
    };
    let (line_no, col, line) = locate(source, span.start);
    let _ = writeln!(out, "  --> {file}:{line_no}:{col}");
    let gutter = line_no.to_string().len();
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{line_no} | {line}");
    // Caret width: clamp to the part of the span on this line.
    let span_len = span.end.saturating_sub(span.start).max(1);
    let width = span_len.min(line.len().saturating_sub(col - 1).max(1));
    // No trailing space after the carets when there is no label.
    let label = if d.label.is_empty() {
        String::new()
    } else {
        format!(" {}", d.label)
    };
    let _ = writeln!(
        out,
        "{:gutter$} | {:pad$}{carets}{label}",
        "",
        "",
        pad = col - 1,
        carets = "^".repeat(width),
    );
}

/// Resolves a byte offset to (1-based line, 1-based column, line text).
///
/// Shared by the renderer above and by machine-readable emitters (the
/// lint JSON/SARIF writers) so every consumer agrees on positions.
pub fn locate(source: &str, offset: usize) -> (usize, usize, &str) {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line_no = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[offset..]
        .find('\n')
        .map(|i| offset + i)
        .unwrap_or(source.len());
    (
        line_no,
        offset - line_start + 1,
        &source[line_start..line_end],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_at_location() {
        let src = "machine m(1) {\n  reg X : 99;\n}\n";
        let at = src.find("99").unwrap();
        let diags = Diagnostics {
            file: "m.psm".into(),
            source: src.into(),
            errors: vec![Diagnostic::new(
                "width out of range",
                Span::new(at, at + 2),
                "must be 1..=64",
            )],
        };
        let text = diags.render();
        assert!(text.contains("error: width out of range"));
        assert!(text.contains("m.psm:2:11"));
        assert!(text.contains("^^ must be 1..=64"));
    }

    #[test]
    fn severity_and_code_prefix_the_message() {
        let src = "machine m(1) {\n}\n";
        let diags = Diagnostics {
            file: "m.psm".into(),
            source: src.into(),
            errors: vec![
                Diagnostic::new("dead annotation", Span::new(0, 7), "unused")
                    .with_severity(Severity::Warning)
                    .with_code("AP0104"),
            ],
        };
        let text = diags.render();
        assert!(
            text.starts_with("warning[AP0104]: dead annotation"),
            "{text}"
        );
    }

    #[test]
    fn whole_file_diagnostic_renders_without_span() {
        let diags = Diagnostics {
            file: "m.psm".into(),
            source: String::new(),
            errors: vec![Diagnostic::whole_file("plan failed")],
        };
        assert!(diags.render().contains("error: plan failed"));
    }
}
