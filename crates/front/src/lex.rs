//! Hand-written lexer for the `.psm` language.
//!
//! Produces a flat token stream with byte spans. Keywords are lexed as
//! identifiers and classified by the parser, so register names like
//! `reg` are rejected with a proper diagnostic rather than a lex error.

use crate::diag::{Diagnostic, Span};

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Bare unsized integer (decimal or 0x/0b/0o prefixed).
    Int(u64),
    /// Verilog-style sized literal `<width>'<b|o|d|h><digits>`.
    Sized {
        width: u32,
        value: u64,
    },
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign,   // =
    Question, // ?
    Plus,
    Minus,
    Star,
    Amp,
    Pipe,
    Caret,
    Tilde,
    EqEq,
    NotEq,
    Shl,  // <<
    Lshr, // >>
    Ashr, // >>>
    Eof,
}

impl Tok {
    /// Human-readable description for "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Sized { width, value } => format!("sized literal `{width}'d{value}`"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Assign => "`=`".into(),
            Tok::Question => "`?`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Caret => "`^`".into(),
            Tok::Tilde => "`~`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::NotEq => "`!=`".into(),
            Tok::Shl => "`<<`".into(),
            Tok::Lshr => "`>>`".into(),
            Tok::Ashr => "`>>>`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenizes the whole input. Returns the first lexical error, if any.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Numbers: bare ints and sized literals.
        if c.is_ascii_digit() {
            let (value, end) = lex_int(src, i)?;
            i = end;
            if bytes.get(i) == Some(&b'\'') {
                i += 1;
                let width = u32::try_from(value).map_err(|_| {
                    Diagnostic::new(
                        "literal width does not fit in 32 bits",
                        Span::new(start, i),
                        "width too large",
                    )
                })?;
                let base = match bytes.get(i) {
                    Some(b'b') => 2,
                    Some(b'o') => 8,
                    Some(b'd') => 10,
                    Some(b'h') => 16,
                    _ => {
                        return Err(Diagnostic::new(
                            "sized literal needs a base: b, o, d or h",
                            Span::new(start, i + 1),
                            "expected `<width>'<base><digits>`",
                        ))
                    }
                };
                i += 1;
                let digit_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let digits = src[digit_start..i].replace('_', "");
                let value = u64::from_str_radix(&digits, base).map_err(|_| {
                    Diagnostic::new(
                        format!("invalid base-{base} digits `{digits}`"),
                        Span::new(digit_start, i),
                        "bad digits",
                    )
                })?;
                if !(1..=64).contains(&width) {
                    return Err(Diagnostic::new(
                        format!("literal width {width} out of range 1..=64"),
                        Span::new(start, i),
                        "width must be 1..=64",
                    ));
                }
                if width < 64 && value >= 1u64 << width {
                    return Err(Diagnostic::new(
                        format!("value {value:#x} does not fit in {width} bits"),
                        Span::new(start, i),
                        "literal overflows its width",
                    ));
                }
                toks.push(Token {
                    tok: Tok::Sized { width, value },
                    span: Span::new(start, i),
                });
            } else {
                toks.push(Token {
                    tok: Tok::Int(value),
                    span: Span::new(start, i),
                });
            }
            continue;
        }
        // Operators and punctuation.
        let (tok, len) = match c {
            b'{' => (Tok::LBrace, 1),
            b'}' => (Tok::RBrace, 1),
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b'[' => (Tok::LBracket, 1),
            b']' => (Tok::RBracket, 1),
            b',' => (Tok::Comma, 1),
            b';' => (Tok::Semi, 1),
            b':' => (Tok::Colon, 1),
            b'.' => (Tok::Dot, 1),
            b'?' => (Tok::Question, 1),
            b'+' => (Tok::Plus, 1),
            b'-' => (Tok::Minus, 1),
            b'*' => (Tok::Star, 1),
            b'&' => (Tok::Amp, 1),
            b'|' => (Tok::Pipe, 1),
            b'^' => (Tok::Caret, 1),
            b'~' => (Tok::Tilde, 1),
            b'=' if bytes.get(i + 1) == Some(&b'=') => (Tok::EqEq, 2),
            b'=' => (Tok::Assign, 1),
            b'!' if bytes.get(i + 1) == Some(&b'=') => (Tok::NotEq, 2),
            b'<' if bytes.get(i + 1) == Some(&b'<') => (Tok::Shl, 2),
            b'>' if bytes.get(i + 1) == Some(&b'>') && bytes.get(i + 2) == Some(&b'>') => {
                (Tok::Ashr, 3)
            }
            b'>' if bytes.get(i + 1) == Some(&b'>') => (Tok::Lshr, 2),
            _ => {
                return Err(Diagnostic::new(
                    format!(
                        "unexpected character `{}`",
                        src[i..].chars().next().unwrap()
                    ),
                    Span::new(i, i + 1),
                    "not part of the language",
                ))
            }
        };
        i += len;
        toks.push(Token {
            tok,
            span: Span::new(start, i),
        });
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(toks)
}

/// Lexes a bare integer (decimal, 0x, 0b, 0o) starting at `start`.
fn lex_int(src: &str, start: usize) -> Result<(u64, usize), Diagnostic> {
    let bytes = src.as_bytes();
    let (base, mut i) = if bytes[start] == b'0' {
        match bytes.get(start + 1) {
            Some(b'x') | Some(b'X') => (16, start + 2),
            Some(b'b') | Some(b'B') => (2, start + 2),
            Some(b'o') | Some(b'O') => (8, start + 2),
            _ => (10, start),
        }
    } else {
        (10, start)
    };
    let digit_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_hexdigit() || bytes[i] == b'_') {
        // Stop decimal/binary/octal scans at the first digit of a wider
        // base so `10'h3f` lexes as 10, quote, h, 3f.
        let d = bytes[i];
        let val = (d as char).to_digit(16).unwrap_or(99);
        if d != b'_' && val >= base {
            break;
        }
        i += 1;
    }
    let digits = src[digit_start..i].replace('_', "");
    if digits.is_empty() {
        return Err(Diagnostic::new(
            "integer literal has no digits",
            Span::new(start, i),
            "expected digits",
        ));
    }
    let value = u64::from_str_radix(&digits, base).map_err(|_| {
        Diagnostic::new(
            format!("integer literal `{digits}` overflows 64 bits"),
            Span::new(start, i),
            "too large",
        )
    })?;
    Ok((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declarations() {
        let toks = kinds("reg PC : 32 writes(1) init 1 visible;");
        assert_eq!(toks[0], Tok::Ident("reg".into()));
        assert_eq!(toks[1], Tok::Ident("PC".into()));
        assert_eq!(toks[2], Tok::Colon);
        assert_eq!(toks[3], Tok::Int(32));
        assert!(toks.contains(&Tok::Semi));
    }

    #[test]
    fn lexes_sized_literals() {
        assert_eq!(
            kinds("6'h20")[0],
            Tok::Sized {
                width: 6,
                value: 0x20
            }
        );
        assert_eq!(kinds("1'b0")[0], Tok::Sized { width: 1, value: 0 });
        assert_eq!(
            kinds("32'd10")[0],
            Tok::Sized {
                width: 32,
                value: 10
            }
        );
        assert_eq!(
            kinds("16'hff_ff")[0],
            Tok::Sized {
                width: 16,
                value: 0xffff
            }
        );
    }

    #[test]
    fn sized_literal_overflow_rejected() {
        assert!(lex("4'h1f").is_err());
        assert!(lex("65'h0").is_err());
    }

    #[test]
    fn lexes_operators_longest_first() {
        assert_eq!(
            kinds("a >>> b >> c << d == e != f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ashr,
                Tok::Ident("b".into()),
                Tok::Lshr,
                Tok::Ident("c".into()),
                Tok::Shl,
                Tok::Ident("d".into()),
                Tok::EqEq,
                Tok::Ident("e".into()),
                Tok::NotEq,
                Tok::Ident("f".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_hex_ints() {
        let toks = kinds("0x2a // trailing\n7");
        assert_eq!(toks[0], Tok::Int(0x2a));
        assert_eq!(toks[1], Tok::Int(7));
    }

    #[test]
    fn instance_refs_lex_as_ident_dot_int() {
        assert_eq!(
            kinds("C.3"),
            vec![Tok::Ident("C".into()), Tok::Dot, Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn bad_character_is_located() {
        let err = lex("reg @").unwrap_err();
        assert_eq!(err.span.unwrap().start, 4);
    }
}
