//! Lowering: surface AST → [`MachineSpec`] + [`SynthOptions`].
//!
//! All semantic checking lives here, so every rejection carries a source
//! span: unknown stages, duplicate declarations, width mismatches,
//! builtin arity errors, cyclic `let` chains, dangling forwarding or
//! speculation annotations. The `hdl` builder's own panics are
//! unreachable from well-checked input.

use std::collections::{HashMap, HashSet};

use autopipe_hdl::{mask, NetId, Netlist, Node};
use autopipe_psm::{FileDecl, Fragment, MachineSpec, ReadPort, RegisterDecl};
use autopipe_synth::{
    ActualSource, Fixup, FixupValue, ForwardingSpec, MuxTopology, SpeculationSpec, SynthOptions,
};

use crate::ast::*;
use crate::diag::{Diagnostic, Span};

/// What a top-level name refers to (registers, files and inputs share
/// one namespace).
#[derive(Clone, Copy)]
enum Sym {
    Reg(usize),
    File(usize),
    Input(usize),
}

/// Lowers a parsed design. On success the spec is ready for
/// `MachineSpec::plan`; on failure every collected error is returned.
pub fn lower(design: &Design) -> Result<(MachineSpec, SynthOptions), Vec<Diagnostic>> {
    let mut errors = Vec::new();

    if design.n_stages == 0 {
        return Err(vec![Diagnostic::new(
            "a machine needs at least one stage",
            design.name_span,
            "declared with 0 stages",
        )]);
    }

    // ---- declarations -------------------------------------------------
    let mut syms: HashMap<&str, Sym> = HashMap::new();
    for (i, input) in design.inputs.iter().enumerate() {
        if syms.insert(&input.name, Sym::Input(i)).is_some() {
            errors.push(dup(&input.name, input.span));
        }
        if !(1..=64).contains(&input.width) {
            errors.push(width_range(&input.name, input.width, input.span));
        }
    }
    for (i, r) in design.regs.iter().enumerate() {
        if syms.insert(&r.name, Sym::Reg(i)).is_some() {
            errors.push(dup(&r.name, r.span));
        }
        if !(1..=64).contains(&r.width) {
            errors.push(width_range(&r.name, r.width, r.span));
        } else if r.init > mask(r.width) {
            errors.push(Diagnostic::new(
                format!(
                    "initial value {} does not fit in the {} bits of `{}`",
                    r.init, r.width, r.name
                ),
                r.span,
                "init overflows the register",
            ));
        }
        for &w in &r.writers {
            if w >= design.n_stages {
                errors.push(stage_oob(w, design.n_stages, r.span));
            }
        }
    }
    for (i, f) in design.files.iter().enumerate() {
        if syms.insert(&f.name, Sym::File(i)).is_some() {
            errors.push(dup(&f.name, f.span));
        }
        if !(1..=20).contains(&f.addr_width) {
            errors.push(Diagnostic::new(
                format!(
                    "address width {} of file `{}` out of range 1..=20",
                    f.addr_width, f.name
                ),
                f.span,
                "address width out of range",
            ));
        }
        if !(1..=64).contains(&f.data_width) {
            errors.push(width_range(&f.name, f.data_width, f.span));
        } else {
            if f.addr_width <= 20 && f.init.len() > 1usize << f.addr_width.min(20) {
                errors.push(Diagnostic::new(
                    format!(
                        "file `{}` has {} initial words but only {} entries",
                        f.name,
                        f.init.len(),
                        1usize << f.addr_width.min(20)
                    ),
                    f.span,
                    "too many initial values",
                ));
            }
            if let Some(v) = f.init.iter().find(|v| **v > mask(f.data_width)) {
                errors.push(Diagnostic::new(
                    format!(
                        "initial word {:#x} does not fit in the {} bits of `{}`",
                        v, f.data_width, f.name
                    ),
                    f.span,
                    "init value overflows the entry width",
                ));
            }
        }
        if !f.read_only {
            if f.write_stage >= design.n_stages {
                errors.push(stage_oob(f.write_stage, design.n_stages, f.span));
            }
            if let Some(c) = f.ctrl_stage {
                if c >= design.n_stages {
                    errors.push(stage_oob(c, design.n_stages, f.span));
                } else if c > f.write_stage {
                    errors.push(Diagnostic::new(
                        format!(
                            "control stage {} of file `{}` comes after write stage {}",
                            c, f.name, f.write_stage
                        ),
                        f.span,
                        "we/wa must be computed at or before the write stage",
                    ));
                }
            }
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    let mut spec = MachineSpec::new(&design.name, design.n_stages);
    for i in &design.inputs {
        spec.external_input(&i.name, i.width);
    }
    for r in &design.regs {
        let mut d = RegisterDecl::new(&r.name, r.width).init(r.init);
        for &w in &r.writers {
            d = d.written_by(w);
        }
        if r.visible {
            d = d.visible();
        }
        spec.register(d);
    }
    for f in &design.files {
        let mut d = if f.read_only {
            FileDecl::read_only(&f.name, f.addr_width, f.data_width)
        } else {
            FileDecl::new(&f.name, f.addr_width, f.data_width, f.write_stage)
                .ctrl(f.ctrl_stage.unwrap_or(f.write_stage))
        };
        d = d.init(f.init.clone());
        if f.visible {
            d = d.visible();
        }
        spec.file(d);
    }

    // ---- stages -------------------------------------------------------
    let mut seen_stage = vec![false; design.n_stages];
    for s in &design.stages {
        if s.index >= design.n_stages {
            errors.push(Diagnostic::new(
                format!(
                    "unknown stage index {}: machine `{}` has {} stages",
                    s.index, design.name, design.n_stages
                ),
                s.index_span,
                format!("expected an index in 0..={}", design.n_stages - 1),
            ));
            continue;
        }
        if seen_stage[s.index] {
            errors.push(Diagnostic::new(
                format!("stage {} is defined twice", s.index),
                s.index_span,
                "second definition here",
            ));
            continue;
        }
        seen_stage[s.index] = true;
        match lower_stage(design, &syms, s) {
            Ok((frag, ports)) => {
                spec.stage(s.index, &s.name, frag, ports);
            }
            Err(e) => errors.push(e),
        }
    }
    for (k, seen) in seen_stage.iter().enumerate() {
        if !seen {
            errors.push(Diagnostic::new(
                format!("stage {k} has no definition"),
                design.name_span,
                format!("add `stage {k} <name> {{ ... }}`"),
            ));
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // ---- annotations --------------------------------------------------
    let mut opts = SynthOptions::new();
    let mut forwarded: HashSet<&str> = HashSet::new();
    for a in &design.annotations {
        match a {
            Annotation::Forward {
                target,
                target_span,
                via,
            } => {
                check_forward_target(&syms, target, *target_span, &mut forwarded, &mut errors);
                match via {
                    Some((src, src_span)) => match syms.get(src.as_str()) {
                        Some(Sym::Reg(_)) => {
                            opts = opts.with_forwarding(ForwardingSpec::forward(
                                target.clone(),
                                src.clone(),
                            ));
                        }
                        _ => errors.push(Diagnostic::new(
                            format!("forwarding register `{src}` is not declared in any stage"),
                            *src_span,
                            "no register of this name exists",
                        )),
                    },
                    None => {
                        opts = opts.with_forwarding(ForwardingSpec::forward_from_write_stage(
                            target.clone(),
                        ));
                    }
                }
            }
            Annotation::Interlock {
                target,
                target_span,
            } => {
                check_forward_target(&syms, target, *target_span, &mut forwarded, &mut errors);
                opts = opts.with_forwarding(ForwardingSpec::interlock(target.clone()));
            }
            Annotation::Unprotected {
                target,
                target_span,
            } => {
                check_forward_target(&syms, target, *target_span, &mut forwarded, &mut errors);
                opts = opts.with_forwarding(ForwardingSpec::unprotected(target.clone()));
            }
            Annotation::Topology { tree } => {
                opts = opts.with_topology(if *tree {
                    MuxTopology::Tree
                } else {
                    MuxTopology::Chain
                });
            }
            Annotation::ExtStalls => opts = opts.with_ext_stalls(),
            Annotation::NoMonitors => opts = opts.without_monitors(),
            Annotation::NoTransitiveDhaz => opts = opts.without_transitive_dhaz(),
            Annotation::Speculate(s) => match lower_speculation(design, &syms, &spec, s) {
                Ok(sp) => opts = opts.with_speculation(sp),
                Err(e) => errors.push(e),
            },
        }
    }
    if errors.is_empty() {
        Ok((spec, opts))
    } else {
        Err(errors)
    }
}

fn dup(name: &str, span: Span) -> Diagnostic {
    Diagnostic::new(
        format!("duplicate declaration of `{name}`"),
        span,
        "registers, files and inputs share one namespace",
    )
}

fn width_range(name: &str, width: u32, span: Span) -> Diagnostic {
    Diagnostic::new(
        format!("width {width} of `{name}` out of range 1..=64"),
        span,
        "widths must be 1..=64",
    )
}

fn stage_oob(stage: usize, n: usize, span: Span) -> Diagnostic {
    Diagnostic::new(
        format!("stage index {stage} out of range: the machine has {n} stages"),
        span,
        format!("expected 0..={}", n - 1),
    )
}

fn check_forward_target<'a>(
    syms: &HashMap<&str, Sym>,
    target: &'a str,
    span: Span,
    forwarded: &mut HashSet<&'a str>,
    errors: &mut Vec<Diagnostic>,
) {
    match syms.get(target) {
        Some(Sym::Reg(_)) | Some(Sym::File(_)) => {}
        _ => errors.push(Diagnostic::new(
            format!("cannot protect `{target}`: no such register or file"),
            span,
            "forwarding targets must be declared registers or files",
        )),
    }
    if !forwarded.insert(target) {
        errors.push(Diagnostic::new(
            format!("`{target}` has more than one protection annotation"),
            span,
            "second annotation here",
        ));
    }
}

// ---------------------------------------------------------------------
// Stage lowering
// ---------------------------------------------------------------------

fn lower_stage(
    design: &Design,
    syms: &HashMap<&str, Sym>,
    stage: &StageDecl,
) -> Result<(Fragment, Vec<ReadPort>), Diagnostic> {
    // Pass 1: collect read-port aliases and let-bindings.
    let mut aliases: HashMap<&str, u32> = HashMap::new();
    let mut lets: HashMap<&str, &Expr> = HashMap::new();
    for st in &stage.stmts {
        match st {
            Stmt::Read {
                alias,
                file,
                file_span,
                ..
            } => {
                let Some(Sym::File(fi)) = syms.get(file.as_str()) else {
                    return Err(Diagnostic::new(
                        format!("unknown register file `{file}`"),
                        *file_span,
                        "read ports require a declared file",
                    ));
                };
                if aliases
                    .insert(alias, design.files[*fi].data_width)
                    .is_some()
                    || syms.contains_key(alias.as_str())
                {
                    return Err(Diagnostic::new(
                        format!("read alias `{alias}` collides with another name"),
                        *file_span,
                        "aliases must be fresh names",
                    ));
                }
            }
            Stmt::Let { name, span, .. } => {
                if lets.insert(name, let_expr(st)).is_some() || syms.contains_key(name.as_str()) {
                    return Err(Diagnostic::new(
                        format!("`{name}` is already defined"),
                        *span,
                        "let-bindings must be fresh names",
                    ));
                }
            }
            Stmt::Assign { .. } => {}
        }
    }
    for alias in aliases.keys() {
        if lets.contains_key(*alias) {
            // A let and an alias of the same name: report on the let.
            for st in &stage.stmts {
                if let Stmt::Let { name, span, .. } = st {
                    if name == alias {
                        return Err(Diagnostic::new(
                            format!("`{name}` is already defined as a read alias"),
                            *span,
                            "pick a different binding name",
                        ));
                    }
                }
            }
        }
    }

    // Pass 2: lower read-port address functions (restricted context) and
    // the stage body.
    let mut ports = Vec::new();
    let mut lw = FragLowerer {
        design,
        syms,
        stage_k: stage.index,
        nl: Netlist::new(&stage.name),
        ports: HashMap::new(),
        lets,
        let_values: HashMap::new(),
        aliases,
        stack: Vec::new(),
        restricted: None,
    };
    for st in &stage.stmts {
        if let Stmt::Read {
            alias, file, addr, ..
        } = st
        {
            let Some(Sym::File(fi)) = syms.get(file.as_str()) else {
                unreachable!("checked in pass 1");
            };
            let file_decl = &design.files[*fi];
            let mut addr_lw = FragLowerer {
                design,
                syms,
                stage_k: stage.index,
                nl: Netlist::new(format!("{}.{alias}.addr", stage.name)),
                ports: HashMap::new(),
                lets: HashMap::new(),
                let_values: HashMap::new(),
                aliases: lw.aliases.clone(),
                stack: Vec::new(),
                restricted: Some("a read address"),
            };
            let net = addr_lw.expr(addr)?;
            let w = addr_lw.nl.width(net);
            if w != file_decl.addr_width {
                return Err(Diagnostic::new(
                    format!(
                        "read address is {w} bits but file `{file}` has {} address bits",
                        file_decl.addr_width
                    ),
                    addr.span(),
                    "address width must match the file",
                ));
            }
            let net = addr_lw.copy_if_bare_port("addr", net);
            addr_lw.nl.label("addr", net);
            ports.push(ReadPort::new(
                file.clone(),
                alias.clone(),
                Fragment::new(addr_lw.nl).map_err(|e| {
                    Diagnostic::new(format!("invalid read address: {e:?}"), addr.span(), "")
                })?,
            ));
        }
    }

    // Outputs are labelled only after all statements are lowered, so
    // lazily created input ports never collide with output labels.
    let mut outputs: Vec<(String, NetId)> = Vec::new();
    let mut assigned: HashSet<(String, Option<CtrlSuffix>)> = HashSet::new();
    for st in &stage.stmts {
        let Stmt::Assign {
            target,
            suffix,
            span,
            expr,
        } = st
        else {
            continue;
        };
        if !assigned.insert((target.clone(), *suffix)) {
            return Err(Diagnostic::new(
                format!("duplicate assignment to `{target}`"),
                *span,
                "each target can be assigned once per stage",
            ));
        }
        let net = lw.expr(expr)?;
        let w = lw.nl.width(net);
        let label = match (syms.get(target.as_str()), suffix) {
            (Some(Sym::Reg(ri)), None) => {
                let r = &design.regs[*ri];
                check_writer(r, stage.index, target, *span)?;
                expect_width(w, r.width, "register", target, expr.span())?;
                target.clone()
            }
            (Some(Sym::Reg(ri)), Some(CtrlSuffix::We)) => {
                let r = &design.regs[*ri];
                check_writer(r, stage.index, target, *span)?;
                expect_width(w, 1, "write enable of", target, expr.span())?;
                format!("{target}.we")
            }
            (Some(Sym::Reg(_)), Some(CtrlSuffix::Wa)) => {
                return Err(Diagnostic::new(
                    format!("register `{target}` has no write address"),
                    *span,
                    "`.wa` applies to register files",
                ));
            }
            (Some(Sym::File(fi)), sfx) => {
                let f = &design.files[*fi];
                if f.read_only {
                    return Err(Diagnostic::new(
                        format!("file `{target}` is read-only"),
                        *span,
                        "read-only files cannot be written",
                    ));
                }
                let ctrl = f.ctrl_stage.unwrap_or(f.write_stage);
                match sfx {
                    None => {
                        if stage.index != f.write_stage {
                            return Err(Diagnostic::new(
                                format!(
                                    "write data of `{target}` belongs to stage {}, not stage {}",
                                    f.write_stage, stage.index
                                ),
                                *span,
                                "declared write stage differs",
                            ));
                        }
                        expect_width(w, f.data_width, "file", target, expr.span())?;
                        target.clone()
                    }
                    Some(CtrlSuffix::We) => {
                        check_ctrl(ctrl, stage.index, target, *span)?;
                        expect_width(w, 1, "write enable of", target, expr.span())?;
                        format!("{target}.we")
                    }
                    Some(CtrlSuffix::Wa) => {
                        check_ctrl(ctrl, stage.index, target, *span)?;
                        expect_width(w, f.addr_width, "write address of", target, expr.span())?;
                        format!("{target}.wa")
                    }
                }
            }
            (Some(Sym::Input(_)), _) => {
                return Err(Diagnostic::new(
                    format!("cannot assign to input `{target}`"),
                    *span,
                    "inputs are driven from outside the machine",
                ));
            }
            (None, _) => {
                return Err(Diagnostic::new(
                    format!("unknown assignment target `{target}`"),
                    *span,
                    "targets must be declared registers or files",
                ));
            }
        };
        outputs.push((label, net));
    }

    // Force-lower any unused let so its errors are not silently dropped.
    for st in &stage.stmts {
        if let Stmt::Let { name, .. } = st {
            if !lw.let_values.contains_key(name.as_str()) {
                lw.lower_let(name, st)?;
            }
        }
    }

    for (label, net) in outputs {
        let net = lw.copy_if_bare_port(&label, net);
        lw.nl.label(label, net);
    }
    Fragment::new(lw.nl)
        .map_err(|e| {
            Diagnostic::new(
                format!(
                    "stage {} is not a combinational function: {e:?}",
                    stage.index
                ),
                stage.index_span,
                "",
            )
        })
        .map(|frag| (frag, ports))
}

fn let_expr(st: &Stmt) -> &Expr {
    match st {
        Stmt::Let { expr, .. } => expr,
        _ => unreachable!(),
    }
}

fn check_writer(r: &RegDecl, k: usize, target: &str, span: Span) -> Result<(), Diagnostic> {
    if r.writers.contains(&k) {
        Ok(())
    } else {
        Err(Diagnostic::new(
            format!("stage {k} does not write register `{target}`"),
            span,
            format!("declared writers: {:?}", r.writers),
        ))
    }
}

fn check_ctrl(ctrl: usize, k: usize, target: &str, span: Span) -> Result<(), Diagnostic> {
    if ctrl == k {
        Ok(())
    } else {
        Err(Diagnostic::new(
            format!("write control of `{target}` belongs to stage {ctrl}, not stage {k}"),
            span,
            "declared control stage differs",
        ))
    }
}

fn expect_width(got: u32, want: u32, what: &str, name: &str, span: Span) -> Result<(), Diagnostic> {
    if got == want {
        Ok(())
    } else {
        Err(Diagnostic::new(
            format!("{what} `{name}` is {want} bits but the expression is {got} bits"),
            span,
            format!("expected {want} bits"),
        ))
    }
}

// ---------------------------------------------------------------------
// Expression lowering
// ---------------------------------------------------------------------

struct FragLowerer<'a> {
    design: &'a Design,
    syms: &'a HashMap<&'a str, Sym>,
    stage_k: usize,
    nl: Netlist,
    /// Input ports created so far (get-or-create; `Netlist::input`
    /// rejects duplicates).
    ports: HashMap<String, NetId>,
    lets: HashMap<&'a str, &'a Expr>,
    let_values: HashMap<&'a str, NetId>,
    aliases: HashMap<&'a str, u32>,
    /// In-progress let-bindings, for cycle detection.
    stack: Vec<&'a str>,
    /// `Some(context)` for address/guess functions, which may only read
    /// registers, instances and external inputs.
    restricted: Option<&'static str>,
}

impl<'a> FragLowerer<'a> {
    fn port(&mut self, name: &str, width: u32) -> NetId {
        if let Some(&n) = self.ports.get(name) {
            return n;
        }
        let n = self.nl.input(name, width);
        self.ports.insert(name.to_string(), n);
        n
    }

    /// An output label pointing straight at the identically named input
    /// port would be classified as a port, not an output
    /// (`Fragment::output_names`); route it through a no-op OR.
    fn copy_if_bare_port(&mut self, label: &str, net: NetId) -> NetId {
        if let Node::Input { name } = self.nl.node(net) {
            if name == label {
                return self.nl.or(net, net);
            }
        }
        net
    }

    fn lower_let(&mut self, name: &'a str, st: &'a Stmt) -> Result<NetId, Diagnostic> {
        let expr = let_expr(st);
        self.stack.push(name);
        let v = self.expr(expr)?;
        self.stack.pop();
        self.let_values.insert(name, v);
        Ok(v)
    }

    fn ident(&mut self, name: &'a str, span: Span) -> Result<NetId, Diagnostic> {
        if let Some(&v) = self.let_values.get(name) {
            return Ok(v);
        }
        if let Some(&expr) = self.lets.get(name) {
            if self.stack.contains(&name) {
                return Err(Diagnostic::new(
                    format!("cyclic combinational definition of `{name}`"),
                    span,
                    format!("`{name}` depends on itself via {}", self.stack.join(" -> ")),
                ));
            }
            self.stack.push(name);
            let v = self.expr(expr)?;
            self.stack.pop();
            self.let_values.insert(name, v);
            return Ok(v);
        }
        if let Some(&w) = self.aliases.get(name) {
            if let Some(ctx) = self.restricted {
                return Err(Diagnostic::new(
                    format!("read-port data `{name}` cannot be used in {ctx}"),
                    span,
                    "addresses and guesses resolve before file reads",
                ));
            }
            return Ok(self.port(name, w));
        }
        match self.syms.get(name) {
            Some(Sym::Reg(ri)) => {
                let w = self.design.regs[*ri].width;
                Ok(self.port(name, w))
            }
            Some(Sym::Input(ii)) => {
                let w = self.design.inputs[*ii].width;
                Ok(self.port(name, w))
            }
            Some(Sym::File(_)) => Err(Diagnostic::new(
                format!("register file `{name}` must be read through a `read` port"),
                span,
                "use `read alias = FILE[addr];`",
            )),
            None => Err(Diagnostic::new(
                format!("unknown name `{name}` in stage {}", self.stage_k),
                span,
                "not a register, input, read alias or let-binding",
            )),
        }
    }

    fn expr(&mut self, e: &'a Expr) -> Result<NetId, Diagnostic> {
        match e {
            Expr::Ident { name, span } => self.ident(name, *span),
            Expr::Instance { name, k, span } => match self.syms.get(name.as_str()) {
                Some(Sym::Reg(ri)) => {
                    let w = self.design.regs[*ri].width;
                    Ok(self.port(&format!("{name}.{k}"), w))
                }
                _ => Err(Diagnostic::new(
                    format!("`{name}` is not a register, so `{name}.{k}` names no instance"),
                    *span,
                    "instance references need a declared register",
                )),
            },
            Expr::Const { value, width, .. } => Ok(self.nl.constant(*value, *width)),
            Expr::Unary { op, a, .. } => {
                let a = self.expr(a)?;
                Ok(match op {
                    UnOp::Not => self.nl.not(a),
                    UnOp::Neg => self.nl.neg(a),
                })
            }
            Expr::Binary { op, a, b, span } => {
                let an = self.expr(a)?;
                let bn = self.expr(b)?;
                let (wa, wb) = (self.nl.width(an), self.nl.width(bn));
                let needs_eq = !matches!(op, BinOp::Shl | BinOp::Lshr | BinOp::Ashr);
                if needs_eq && wa != wb {
                    return Err(Diagnostic::new(
                        format!(
                            "width mismatch for `{}`: left is {wa} bits, right is {wb} bits",
                            op.symbol()
                        ),
                        *span,
                        "operands must have equal widths",
                    ));
                }
                Ok(match op {
                    BinOp::Or => self.nl.or(an, bn),
                    BinOp::Xor => self.nl.xor(an, bn),
                    BinOp::And => self.nl.and(an, bn),
                    BinOp::Eq => self.nl.eq(an, bn),
                    BinOp::Ne => self.nl.ne(an, bn),
                    BinOp::Shl => self.nl.shl(an, bn),
                    BinOp::Lshr => self.nl.lshr(an, bn),
                    BinOp::Ashr => self.nl.ashr(an, bn),
                    BinOp::Add => self.nl.add(an, bn),
                    BinOp::Sub => self.nl.sub(an, bn),
                    BinOp::Mul => self.nl.mul(an, bn),
                })
            }
            Expr::Mux { sel, a, b, span } => {
                let s = self.expr(sel)?;
                if self.nl.width(s) != 1 {
                    return Err(Diagnostic::new(
                        format!("mux select is {} bits, expected 1", self.nl.width(s)),
                        sel.span(),
                        "use a comparison or a bit index",
                    ));
                }
                let an = self.expr(a)?;
                let bn = self.expr(b)?;
                let (wa, wb) = (self.nl.width(an), self.nl.width(bn));
                if wa != wb {
                    return Err(Diagnostic::new(
                        format!("mux arms differ in width: {wa} bits vs {wb} bits"),
                        *span,
                        "both arms must have equal widths",
                    ));
                }
                Ok(self.nl.mux(s, an, bn))
            }
            Expr::Slice { a, hi, lo, span } => {
                let an = self.expr(a)?;
                let w = self.nl.width(an);
                if hi < lo || *hi >= w {
                    return Err(Diagnostic::new(
                        format!("slice [{hi}:{lo}] out of range for a {w}-bit value"),
                        *span,
                        format!("valid bits are [{}:0]", w - 1),
                    ));
                }
                Ok(self.nl.slice(an, *hi, *lo))
            }
            Expr::Bit { a, idx, span } => {
                let an = self.expr(a)?;
                let w = self.nl.width(an);
                if *idx >= w {
                    return Err(Diagnostic::new(
                        format!("bit index {idx} out of range for a {w}-bit value"),
                        *span,
                        format!("valid bits are [{}:0]", w - 1),
                    ));
                }
                Ok(self.nl.bit(an, *idx))
            }
            Expr::Call {
                func,
                func_span,
                args,
                width,
                span,
            } => self.call(func, *func_span, args, *width, *span),
        }
    }

    fn call(
        &mut self,
        func: &str,
        func_span: Span,
        args: &'a [Expr],
        width: Option<u32>,
        span: Span,
    ) -> Result<NetId, Diagnostic> {
        let arity = |want: usize| -> Result<(), Diagnostic> {
            if args.len() == want && width.is_none() {
                Ok(())
            } else {
                Err(Diagnostic::new(
                    format!(
                        "`{func}` expects {want} argument{}, found {}",
                        if want == 1 { "" } else { "s" },
                        args.len() + usize::from(width.is_some())
                    ),
                    span,
                    "wrong number of arguments",
                ))
            }
        };
        match func {
            "sext" | "zext" => {
                let (Some(w), [a]) = (width, args) else {
                    return Err(Diagnostic::new(
                        format!("`{func}` expects (value, width)"),
                        span,
                        "e.g. `sext(IR[15:0], 32)`",
                    ));
                };
                let an = self.expr(a)?;
                let wa = self.nl.width(an);
                if w < wa || w > 64 {
                    return Err(Diagnostic::new(
                        format!("cannot extend {wa} bits to {w}"),
                        span,
                        "target width must be in operand-width..=64",
                    ));
                }
                Ok(if func == "sext" {
                    self.nl.sext(an, w)
                } else {
                    self.nl.zext(an, w)
                })
            }
            "cat" => {
                if args.len() < 2 || width.is_some() {
                    return Err(Diagnostic::new(
                        format!("`cat` expects at least 2 arguments, found {}", args.len()),
                        span,
                        "wrong number of arguments",
                    ));
                }
                let mut acc = self.expr(&args[0])?;
                for a in &args[1..] {
                    let an = self.expr(a)?;
                    let w = self.nl.width(acc) + self.nl.width(an);
                    if w > 64 {
                        return Err(Diagnostic::new(
                            format!("concatenation width {w} exceeds 64 bits"),
                            span,
                            "nets are at most 64 bits wide",
                        ));
                    }
                    acc = self.nl.concat(acc, an);
                }
                Ok(acc)
            }
            "redor" | "redand" | "redxor" => {
                arity(1)?;
                let an = self.expr(&args[0])?;
                Ok(match func {
                    "redor" => self.nl.red_or(an),
                    "redand" => self.nl.red_and(an),
                    _ => self.nl.red_xor(an),
                })
            }
            "ult" | "ule" | "slt" | "sle" => {
                arity(2)?;
                let an = self.expr(&args[0])?;
                let bn = self.expr(&args[1])?;
                let (wa, wb) = (self.nl.width(an), self.nl.width(bn));
                if wa != wb {
                    return Err(Diagnostic::new(
                        format!("width mismatch for `{func}`: {wa} bits vs {wb} bits"),
                        span,
                        "operands must have equal widths",
                    ));
                }
                Ok(match func {
                    "ult" => self.nl.ult(an, bn),
                    "ule" => self.nl.ule(an, bn),
                    "slt" => self.nl.slt(an, bn),
                    _ => self.nl.sle(an, bn),
                })
            }
            _ => Err(Diagnostic::new(
                format!("unknown function `{func}`"),
                func_span,
                "builtins: sext, zext, cat, redor, redand, redxor, ult, ule, slt, sle",
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Speculation lowering
// ---------------------------------------------------------------------

fn lower_speculation(
    design: &Design,
    syms: &HashMap<&str, Sym>,
    spec: &MachineSpec,
    s: &SpeculateAst,
) -> Result<SpeculationSpec, Diagnostic> {
    if s.stage >= design.n_stages {
        return Err(stage_oob(s.stage, design.n_stages, s.stage_span));
    }
    if s.resolve_stage >= design.n_stages {
        return Err(stage_oob(s.resolve_stage, design.n_stages, s.resolve_span));
    }
    if s.resolve_stage < s.stage {
        return Err(Diagnostic::new(
            format!(
                "speculation `{}` resolves at stage {} before it is consumed at stage {}",
                s.name, s.resolve_stage, s.stage
            ),
            s.resolve_span,
            "the resolve stage must not precede the speculating stage",
        ));
    }
    let stage_logic = spec.stages[s.stage]
        .as_ref()
        .expect("stages lowered before annotations");
    let Ok(port_width) = stage_logic.logic.input_width(&s.port) else {
        return Err(Diagnostic::new(
            format!("stage {} has no input `{}`", s.stage, s.port),
            s.port_span,
            "the speculated port must be read by that stage",
        ));
    };

    let mut lw = FragLowerer {
        design,
        syms,
        stage_k: s.stage,
        nl: Netlist::new(format!("{}.guess", s.name)),
        ports: HashMap::new(),
        lets: HashMap::new(),
        let_values: HashMap::new(),
        aliases: HashMap::new(),
        stack: Vec::new(),
        restricted: Some("a guess function"),
    };
    let g = lw.expr(&s.guess)?;
    let gw = lw.nl.width(g);
    if gw != port_width {
        return Err(Diagnostic::new(
            format!(
                "guess is {gw} bits but port `{}` is {port_width} bits",
                s.port
            ),
            s.guess.span(),
            "guess and port widths must match",
        ));
    }
    let g = lw.copy_if_bare_port("guess", g);
    lw.nl.label("guess", g);
    let guess = Fragment::new(lw.nl).map_err(|e| {
        Diagnostic::new(format!("invalid guess function: {e:?}"), s.guess.span(), "")
    })?;

    let actual = match &s.actual_input {
        Some(input) => {
            match syms.get(input.as_str()) {
                Some(Sym::Input(_)) => {}
                _ => {
                    return Err(Diagnostic::new(
                        format!("`{input}` is not a declared input"),
                        s.port_span,
                        "resolve-from sources must be external inputs",
                    ))
                }
            }
            ActualSource::External(input.clone())
        }
        None => ActualSource::Reread,
    };

    let mut fixups = Vec::new();
    for fx in &s.fixups {
        let Some(Sym::Reg(ri)) = syms.get(fx.register.as_str()) else {
            return Err(Diagnostic::new(
                format!("fixup target `{}` is not a declared register", fx.register),
                fx.register_span,
                "fixups repair registers",
            ));
        };
        let reg = &design.regs[*ri];
        let value = match &fx.value {
            FixupValueAst::Const(v) => {
                if *v > mask(reg.width) {
                    return Err(Diagnostic::new(
                        format!(
                            "fixup constant {v} does not fit in the {} bits of `{}`",
                            reg.width, fx.register
                        ),
                        fx.register_span,
                        "constant overflows the register",
                    ));
                }
                FixupValue::Const(*v)
            }
            FixupValueAst::Input(n) => match syms.get(n.as_str()) {
                Some(Sym::Input(_)) => FixupValue::External(n.clone()),
                _ => {
                    return Err(Diagnostic::new(
                        format!("`{n}` is not a declared input"),
                        fx.register_span,
                        "fixup inputs must be external inputs",
                    ))
                }
            },
            FixupValueAst::Instance(n) => match syms.get(n.as_str()) {
                Some(Sym::Reg(_)) => FixupValue::Instance(n.clone()),
                _ => {
                    return Err(Diagnostic::new(
                        format!("`{n}` is not a declared register"),
                        fx.register_span,
                        "instance fixups name a register",
                    ))
                }
            },
            FixupValueAst::Actual => FixupValue::Actual,
        };
        fixups.push(Fixup {
            register: fx.register.clone(),
            value,
        });
    }

    Ok(SpeculationSpec {
        name: s.name.clone(),
        stage: s.stage,
        port: s.port.clone(),
        guess,
        resolve_stage: s.resolve_stage,
        actual,
        fixups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_design;

    fn lower_src(src: &str) -> Result<(MachineSpec, SynthOptions), Vec<Diagnostic>> {
        lower(&parse_design(src).map_err(|e| vec![e])?)
    }

    #[test]
    fn lowers_counter_machine() {
        let (spec, _) = lower_src(
            "machine count(1) {\n  reg CNT : 8 writes(0) visible;\n  stage 0 S0 { CNT = CNT + 8'd1; }\n}\n",
        )
        .unwrap();
        let plan = spec.plan().unwrap();
        let mut m = autopipe_psm::SequentialMachine::new(plan).unwrap();
        m.step_instruction();
        m.step_instruction();
        assert_eq!(
            m.visible_state()["CNT"],
            autopipe_psm::VisibleValue::Word(2)
        );
    }

    #[test]
    fn detects_cyclic_lets() {
        let errs = lower_src(
            "machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A {\n    let a = b ^ X;\n    let b = a;\n    X = a;\n  }\n}\n",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("cyclic combinational definition"));
    }

    #[test]
    fn detects_unknown_stage() {
        let errs = lower_src(
            "machine m(2) {\n  reg X : 8 writes(1);\n  stage 0 A { }\n  stage 1 B { X = X; }\n  stage 7 C { }\n}\n",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("unknown stage index 7"));
    }

    #[test]
    fn detects_missing_forward_register() {
        let errs = lower_src(
            "machine m(2) {\n  reg X : 8 writes(1);\n  stage 0 A { }\n  stage 1 B { X = X; }\n  forward X via Q;\n}\n",
        )
        .unwrap_err();
        assert!(errs[0]
            .message
            .contains("forwarding register `Q` is not declared"));
    }

    #[test]
    fn pass_through_assignment_still_creates_output() {
        let (spec, _) = lower_src(
            "machine m(1) {\n  reg X : 8 writes(0) visible;\n  stage 0 A { X = X; }\n}\n",
        )
        .unwrap();
        let logic = &spec.stages[0].as_ref().unwrap().logic;
        assert!(logic.has_output("X"));
    }

    #[test]
    fn width_mismatch_is_diagnosed_not_panicked() {
        let errs =
            lower_src("machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A { X = X + 4'd1; }\n}\n")
                .unwrap_err();
        assert!(errs[0].message.contains("width mismatch"));
    }

    #[test]
    fn arity_mismatch_is_diagnosed() {
        let errs =
            lower_src("machine m(1) {\n  reg X : 8 writes(0);\n  stage 0 A { X = cat(X); }\n}\n")
                .unwrap_err();
        assert!(errs[0]
            .message
            .contains("`cat` expects at least 2 arguments"));
    }
}
