//! Structural Verilog reader for the emitter's output subset.
//!
//! This is the validation half of the Verilog closed loop: it parses
//! exactly the shape [`crate::verilog::emit_verilog`] produces — one
//! wire per node, `\name `-escaped identifiers, `$q`/`$mem` storage
//! suffixes — back into an [`autopipe_hdl::Netlist`]. The round-trip
//! tests re-read every emitted module and co-simulate it against the
//! in-memory machine; the reader is deliberately *not* a general Verilog
//! front end.

use autopipe_hdl::{MemId, NetId, Netlist, RegId};
use std::collections::HashMap;

/// Error reading emitted Verilog back into a netlist: the source fell
/// outside the subset [`crate::verilog::emit_verilog`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based source line the failure is tied to, when known.
    pub line: Option<usize>,
    /// What fell outside the emitted subset.
    pub msg: String,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for ReadError {}

// The parsing internals format their errors as `line N: msg` strings;
// this lifts them into the structured form at the public boundary.
impl From<String> for ReadError {
    fn from(s: String) -> ReadError {
        if let Some(rest) = s.strip_prefix("line ") {
            if let Some((n, msg)) = rest.split_once(": ") {
                if let Ok(line) = n.parse() {
                    return ReadError {
                        line: Some(line),
                        msg: msg.to_string(),
                    };
                }
            }
        }
        ReadError { line: None, msg: s }
    }
}

impl From<&str> for ReadError {
    fn from(s: &str) -> ReadError {
        ReadError::from(s.to_string())
    }
}

/// One token of a line.
#[derive(Debug, Clone, PartialEq)]
enum T {
    /// Plain, `$`-prefixed or `\ `-escaped identifier.
    Id(String),
    /// Bare decimal integer (indices, ranges).
    Int(u64),
    /// Sized literal `w'hv`.
    Lit { width: u32, value: u64 },
    /// Operator / punctuation.
    Sym(&'static str),
}

const SYMS: &[&str] = &[
    ">>>", "<<", ">>", "<=", "==", "!=", "<", "~", "-", "|", "&", "^", "+", "*", "?", ":", "[",
    "]", "{", "}", "(", ")", ",", ";", "=", "@",
];

fn tokenize(line: &str, lno: usize) -> Result<Vec<T>, String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'\\' {
            // Escaped identifier: up to the next whitespace.
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && !bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            out.push(T::Id(line[start..j].to_string()));
            i = j;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            out.push(T::Id(line[start..i].to_string()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let num: u64 = line[start..i]
                .parse()
                .map_err(|e| format!("line {lno}: bad integer: {e}"))?;
            if bytes.get(i) == Some(&b'\'') {
                if bytes.get(i + 1) != Some(&b'h') {
                    return Err(format!("line {lno}: only 'h literals are emitted"));
                }
                i += 2;
                let hstart = i;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let value = u64::from_str_radix(&line[hstart..i], 16)
                    .map_err(|e| format!("line {lno}: bad hex literal: {e}"))?;
                out.push(T::Lit {
                    width: num as u32,
                    value,
                });
            } else {
                out.push(T::Int(num));
            }
            continue;
        }
        for s in SYMS {
            if line[i..].starts_with(s) {
                out.push(T::Sym(s));
                i += s.len();
                continue 'outer;
            }
        }
        return Err(format!(
            "line {lno}: unexpected character `{}`",
            line[i..].chars().next().unwrap()
        ));
    }
    Ok(out)
}

struct Reader {
    nl: Netlist,
    /// `n<idx>` wires of the source text → reconstructed nets.
    nets: HashMap<String, NetId>,
    /// `NAME$q` → (register, output net).
    regs: HashMap<String, (RegId, NetId)>,
    /// `NAME$mem` → memory.
    mems: HashMap<String, MemId>,
    /// Declarations seen but not yet materialised (their `initial`
    /// values may still follow).
    pending_regs: Vec<(String, u32, u64)>,
    pending_mems: Vec<(String, u32, u32, Vec<u64>)>,
    flushed: bool,
}

/// Parses one emitted module back into a netlist.
///
/// # Errors
///
/// Returns a [`ReadError`] naming the offending line for anything
/// outside the emitted subset.
pub fn read_verilog(src: &str) -> Result<Netlist, ReadError> {
    let mut lines = src.lines().enumerate().peekable();
    let mut rd = None;

    while let Some((lno0, raw)) = lines.next() {
        let lno = lno0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let t = tokenize(line, lno)?;
        match t.as_slice() {
            // module <name> ( ... ); — skip the port name list.
            [T::Id(kw), T::Id(name), T::Sym("(")] if kw == "module" => {
                rd = Some(Reader {
                    nl: Netlist::new(name.clone()),
                    nets: HashMap::new(),
                    regs: HashMap::new(),
                    mems: HashMap::new(),
                    pending_regs: Vec::new(),
                    pending_mems: Vec::new(),
                    flushed: false,
                });
                for (_, pline) in lines.by_ref() {
                    if pline.trim() == ");" {
                        break;
                    }
                }
            }
            [T::Id(kw), ..] if kw == "endmodule" => break,
            _ => {
                let rd = rd.as_mut().ok_or(format!("line {lno}: before `module`"))?;
                rd.line(&t, lno, &mut lines)?;
            }
        }
    }
    let mut rd = rd.ok_or("no module found")?;
    rd.flush();
    rd.nl
        .validate()
        .map_err(|e| format!("reconstructed netlist invalid: {e}"))?;
    Ok(rd.nl)
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

impl Reader {
    fn line(&mut self, t: &[T], lno: usize, lines: &mut Lines<'_>) -> Result<(), String> {
        match t {
            // input wire clk;
            [T::Id(i), T::Id(w), T::Id(clk), T::Sym(";")]
                if i == "input" && w == "wire" && clk == "clk" =>
            {
                Ok(())
            }
            // input wire [h:0] name;
            [T::Id(i), T::Id(w), T::Sym("["), T::Int(h), T::Sym(":"), T::Int(0), T::Sym("]"), T::Id(name), T::Sym(";")]
                if i == "input" && w == "wire" =>
            {
                self.nl.input(name.clone(), *h as u32 + 1);
                Ok(())
            }
            // output wire [h:0] name; — labels are applied by `assign`.
            [T::Id(o), ..] if o == "output" => Ok(()),
            // reg [h:0] NAME$q;   |   reg [h:0] NAME$mem[0:N];
            [T::Id(r), T::Sym("["), T::Int(h), T::Sym(":"), T::Int(0), T::Sym("]"), T::Id(name), T::Sym(";")]
                if r == "reg" =>
            {
                let base = name
                    .strip_suffix("$q")
                    .ok_or(format!("line {lno}: register storage must end in $q"))?;
                self.pending_regs.push((base.to_string(), *h as u32 + 1, 0));
                Ok(())
            }
            [T::Id(r), T::Sym("["), T::Int(h), T::Sym(":"), T::Int(0), T::Sym("]"), T::Id(name), T::Sym("["), T::Int(0), T::Sym(":"), T::Int(n), T::Sym("]"), T::Sym(";")]
                if r == "reg" =>
            {
                let base = name
                    .strip_suffix("$mem")
                    .ok_or(format!("line {lno}: memory storage must end in $mem"))?;
                let entries = n + 1;
                if !entries.is_power_of_two() {
                    return Err(format!(
                        "line {lno}: memory size {entries} not a power of two"
                    ));
                }
                self.pending_mems.push((
                    base.to_string(),
                    entries.trailing_zeros(),
                    *h as u32 + 1,
                    Vec::new(),
                ));
                Ok(())
            }
            // initial NAME$q = w'hV;
            [T::Id(ini), T::Id(name), T::Sym("="), T::Lit { value, .. }, T::Sym(";")]
                if ini == "initial" =>
            {
                let base = name
                    .strip_suffix("$q")
                    .ok_or(format!("line {lno}: initial target must end in $q"))?;
                let p = self
                    .pending_regs
                    .iter_mut()
                    .find(|(n, _, _)| n == base)
                    .ok_or(format!("line {lno}: initial for undeclared register"))?;
                p.2 = *value;
                Ok(())
            }
            // initial begin ... end — memory contents.
            [T::Id(ini), T::Id(beg)] if ini == "initial" && beg == "begin" => {
                for (ilno0, iraw) in lines.by_ref() {
                    let ilno = ilno0 + 1;
                    let iline = iraw.trim();
                    if iline == "end" {
                        return Ok(());
                    }
                    let it = tokenize(iline, ilno)?;
                    let [T::Id(name), T::Sym("["), T::Int(idx), T::Sym("]"), T::Sym("="), T::Lit { value, .. }, T::Sym(";")] =
                        it.as_slice()
                    else {
                        return Err(format!("line {ilno}: expected memory init entry"));
                    };
                    let base = name
                        .strip_suffix("$mem")
                        .ok_or(format!("line {ilno}: init target must end in $mem"))?;
                    let p = self
                        .pending_mems
                        .iter_mut()
                        .find(|(n, ..)| n == base)
                        .ok_or(format!("line {ilno}: init for undeclared memory"))?;
                    if *idx as usize != p.3.len() {
                        return Err(format!("line {ilno}: non-contiguous memory init"));
                    }
                    p.3.push(*value);
                }
                Err(format!("line {lno}: unterminated initial block"))
            }
            // wire [h:0] nK = <rhs>;
            [T::Id(w), T::Sym("["), T::Int(h), T::Sym(":"), T::Int(0), T::Sym("]"), T::Id(name), T::Sym("="), rhs @ .., T::Sym(";")]
                if w == "wire" =>
            {
                self.flush();
                let net = self.rhs(rhs, lno)?;
                if self.nl.width(net) != *h as u32 + 1 {
                    return Err(format!(
                        "line {lno}: wire {name} declared {} bits but expression is {} bits",
                        h + 1,
                        self.nl.width(net)
                    ));
                }
                self.nets.insert(name.clone(), net);
                Ok(())
            }
            // always @(posedge clk) ...
            [T::Id(a), T::Sym("@"), T::Sym("("), T::Id(pe), T::Id(clk), T::Sym(")"), rest @ ..]
                if a == "always" && pe == "posedge" && clk == "clk" =>
            {
                self.flush();
                match rest {
                    // NAME$q <= ref;
                    [T::Id(q), T::Sym("<="), r, T::Sym(";")] => {
                        let (reg, _) = *self
                            .regs
                            .get(q.as_str())
                            .ok_or(format!("line {lno}: unknown register `{q}`"))?;
                        let next = self.resolve(r, lno)?;
                        self.nl.connect(reg, next);
                        Ok(())
                    }
                    // if (en) NAME$q <= ref;
                    [T::Id(i), T::Sym("("), en, T::Sym(")"), T::Id(q), T::Sym("<="), r, T::Sym(";")]
                        if i == "if" =>
                    {
                        let (reg, _) = *self
                            .regs
                            .get(q.as_str())
                            .ok_or(format!("line {lno}: unknown register `{q}`"))?;
                        let en = self.resolve(en, lno)?;
                        let next = self.resolve(r, lno)?;
                        self.nl.connect_en(reg, next, en);
                        Ok(())
                    }
                    // begin ... end — memory write ports.
                    [T::Id(beg)] if beg == "begin" => {
                        for (wlno0, wraw) in lines.by_ref() {
                            let wlno = wlno0 + 1;
                            let wline = wraw.trim();
                            if wline == "end" {
                                return Ok(());
                            }
                            let wt = tokenize(wline, wlno)?;
                            let [T::Id(i), T::Sym("("), en, T::Sym(")"), T::Id(mem), T::Sym("["), addr, T::Sym("]"), T::Sym("<="), data, T::Sym(";")] =
                                wt.as_slice()
                            else {
                                return Err(format!("line {wlno}: expected memory write"));
                            };
                            if i != "if" {
                                return Err(format!("line {wlno}: expected `if`"));
                            }
                            let mem = *self
                                .mems
                                .get(mem.as_str())
                                .ok_or(format!("line {wlno}: unknown memory `{mem}`"))?;
                            let en = self.resolve(en, wlno)?;
                            let addr = self.resolve(addr, wlno)?;
                            let data = self.resolve(data, wlno)?;
                            self.nl.mem_write(mem, en, addr, data);
                        }
                        Err(format!("line {lno}: unterminated always block"))
                    }
                    _ => Err(format!("line {lno}: unrecognised always block")),
                }
            }
            // assign name = ref;
            [T::Id(a), T::Id(name), T::Sym("="), r, T::Sym(";")] if a == "assign" => {
                self.flush();
                let net = self.resolve(r, lno)?;
                // Register/memory base names are already taken by the
                // state elements themselves; only new labels are applied.
                if self.nl.find(name) != Ok(net) {
                    self.nl.label(name.clone(), net);
                }
                Ok(())
            }
            _ => Err(format!("line {lno}: unrecognised statement `{t:?}`")),
        }
    }

    /// Materialises pending state declarations (after their `initial`
    /// lines, before anything can reference them).
    fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        for (name, width, init) in self.pending_regs.drain(..) {
            let (reg, q) = self.nl.register(name.clone(), width, init);
            self.regs.insert(format!("{name}$q"), (reg, q));
        }
        for (name, aw, dw, init) in self.pending_mems.drain(..) {
            let mem = self.nl.memory(name.clone(), aw, dw, init);
            self.mems.insert(format!("{name}$mem"), mem);
        }
    }

    /// Resolves an operand token: an `n<idx>` wire, a register output
    /// (`NAME$q`) or an input port name.
    fn resolve(&mut self, t: &T, lno: usize) -> Result<NetId, String> {
        let T::Id(name) = t else {
            return Err(format!("line {lno}: expected an operand, found {t:?}"));
        };
        if let Some(&n) = self.nets.get(name.as_str()) {
            return Ok(n);
        }
        if let Some(&(_, q)) = self.regs.get(name.as_str()) {
            return Ok(q);
        }
        self.nl
            .find(name)
            .map_err(|_| format!("line {lno}: unknown net `{name}`"))
    }

    fn rhs(&mut self, t: &[T], lno: usize) -> Result<NetId, String> {
        match t {
            [T::Lit { width, value }] => Ok(self.nl.constant(*value, *width)),
            [r @ T::Id(_)] => self.resolve(r, lno),
            // Memory read: NAME$mem[ref] — distinguished from a slice by
            // the non-integer index.
            [T::Id(mem), T::Sym("["), addr @ T::Id(_), T::Sym("]")] => {
                let mem = *self
                    .mems
                    .get(mem.as_str())
                    .ok_or(format!("line {lno}: unknown memory `{mem}`"))?;
                let addr = self.resolve(addr, lno)?;
                Ok(self.nl.mem_read(mem, addr))
            }
            // Slice.
            [a @ T::Id(_), T::Sym("["), T::Int(hi), T::Sym(":"), T::Int(lo), T::Sym("]")] => {
                let a = self.resolve(a, lno)?;
                Ok(self.nl.slice(a, *hi as u32, *lo as u32))
            }
            // Unary.
            [T::Sym(op), a @ T::Id(_)] => {
                let a = self.resolve(a, lno)?;
                Ok(match *op {
                    "~" => self.nl.not(a),
                    "-" => self.nl.neg(a),
                    "|" => self.nl.red_or(a),
                    "&" => self.nl.red_and(a),
                    "^" => self.nl.red_xor(a),
                    _ => return Err(format!("line {lno}: unknown unary `{op}`")),
                })
            }
            // Concat.
            [T::Sym("{"), a @ T::Id(_), T::Sym(","), b @ T::Id(_), T::Sym("}")] => {
                let a = self.resolve(a, lno)?;
                let b = self.resolve(b, lno)?;
                Ok(self.nl.concat(a, b))
            }
            // Mux.
            [s @ T::Id(_), T::Sym("?"), a @ T::Id(_), T::Sym(":"), b @ T::Id(_)] => {
                let s = self.resolve(s, lno)?;
                let a = self.resolve(a, lno)?;
                let b = self.resolve(b, lno)?;
                Ok(self.nl.mux(s, a, b))
            }
            // Signed comparisons and arithmetic shift.
            [T::Id(sg1), T::Sym("("), a @ T::Id(_), T::Sym(")"), T::Sym(op), T::Id(sg2), T::Sym("("), b @ T::Id(_), T::Sym(")")]
                if sg1 == "$signed" && sg2 == "$signed" =>
            {
                let a = self.resolve(a, lno)?;
                let b = self.resolve(b, lno)?;
                Ok(match *op {
                    "<" => self.nl.slt(a, b),
                    "<=" => self.nl.sle(a, b),
                    _ => return Err(format!("line {lno}: unknown signed op `{op}`")),
                })
            }
            [T::Id(sg), T::Sym("("), a @ T::Id(_), T::Sym(")"), T::Sym(">>>"), b @ T::Id(_)]
                if sg == "$signed" =>
            {
                let a = self.resolve(a, lno)?;
                let b = self.resolve(b, lno)?;
                Ok(self.nl.ashr(a, b))
            }
            // Plain binary.
            [a @ T::Id(_), T::Sym(op), b @ T::Id(_)] => {
                let a = self.resolve(a, lno)?;
                let b = self.resolve(b, lno)?;
                Ok(match *op {
                    "&" => self.nl.and(a, b),
                    "|" => self.nl.or(a, b),
                    "^" => self.nl.xor(a, b),
                    "+" => self.nl.add(a, b),
                    "-" => self.nl.sub(a, b),
                    "*" => self.nl.mul(a, b),
                    "==" => self.nl.eq(a, b),
                    "!=" => self.nl.ne(a, b),
                    "<" => self.nl.ult(a, b),
                    "<=" => self.nl.ule(a, b),
                    "<<" => self.nl.shl(a, b),
                    ">>" => self.nl.lshr(a, b),
                    _ => return Err(format!("line {lno}: unknown operator `{op}`")),
                })
            }
            _ => Err(format!("line {lno}: unrecognised expression `{t:?}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::emit_verilog;

    #[test]
    fn reads_back_counter() {
        let mut nl = Netlist::new("count");
        let (reg, q) = nl.register("CNT", 8, 3);
        let one = nl.constant(1, 8);
        let next = nl.add(q, one);
        nl.connect(reg, next);
        nl.label("CNT.next", next);
        let v = emit_verilog(&nl, "count");
        let back = read_verilog(&v).unwrap();
        assert_eq!(back.registers().len(), 1);
        assert_eq!(back.registers()[0].name, "CNT");
        assert_eq!(back.registers()[0].init, 3);
        assert!(back.find("CNT.next").is_ok());
        // Fixpoint: re-emitting the reconstruction is stable.
        let v2 = emit_verilog(&back, "count");
        let v3 = emit_verilog(&read_verilog(&v2).unwrap(), "count");
        assert_eq!(v2, v3);
    }

    #[test]
    fn reads_back_memory_machine() {
        let mut nl = Netlist::new("memo");
        let addr = nl.input("addr", 2);
        let mem = nl.memory("M", 2, 8, vec![7, 9]);
        let data = nl.mem_read(mem, addr);
        let en = nl.input("we", 1);
        let wdata = nl.input("din", 8);
        nl.mem_write(mem, en, addr, wdata);
        nl.label("out", data);
        let v = emit_verilog(&nl, "memo");
        let back = read_verilog(&v).unwrap();
        assert_eq!(back.memories().len(), 1);
        assert_eq!(back.memories()[0].init, vec![7, 9]);
        assert_eq!(back.memories()[0].write_ports.len(), 1);
        assert!(back.find("out").is_ok());
    }
}
