//! Structural Verilog-2001 emitter.
//!
//! Emits the word-level netlist exactly as built: one `wire` declaration
//! per combinational node in creation (topological) order, one `always`
//! block per register, one write block per memory. Nothing is renamed —
//! generated control nets like `fw.2.GPRa.hit.3` keep their dotted names
//! through Verilog *escaped identifiers* (`\fw.2.GPRa.hit.3 `), so the
//! output is directly comparable against reports, proof documents and
//! VCD traces, and [`crate::reader`] can rebuild the identical netlist.
//!
//! Conventions:
//!
//! * register storage is `\NAME$q `, memory storage `\NAME$mem ` — the
//!   unsuffixed names stay free for the architectural output nets;
//! * every input port becomes a module input, every labelled net a
//!   module output;
//! * multiple write ports of one memory share a single `always` block in
//!   port order, so the last write wins, matching the IR semantics.

use autopipe_hdl::{BinaryOp, Netlist, Node, UnaryOp};
use std::fmt::Write;

/// Verilog keywords that must not appear as plain identifiers.
const KEYWORDS: &[&str] = &[
    "always",
    "assign",
    "begin",
    "case",
    "else",
    "end",
    "endcase",
    "endmodule",
    "for",
    "if",
    "initial",
    "inout",
    "input",
    "integer",
    "module",
    "negedge",
    "output",
    "posedge",
    "reg",
    "wire",
];

/// Renders `name` as a Verilog identifier, escaping when needed.
///
/// Escaped identifiers (`\name `) carry their terminating space, so the
/// result can be concatenated with any following token.
pub fn vid(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !KEYWORDS.contains(&name);
    if simple {
        name.to_string()
    } else {
        format!("\\{name} ")
    }
}

/// Emits the netlist as a single structural Verilog-2001 module.
pub fn emit_verilog(nl: &Netlist, module: &str) -> String {
    let mut out = String::new();
    let w = &mut out;

    // Name of the net driving each operand position: input nodes are the
    // port itself, everything else gets a `n<index>` wire.
    let opnd = |net: autopipe_hdl::NetId| -> String {
        match nl.node(net) {
            Node::Input { name } => vid(name),
            _ => format!("n{}", net.index()),
        }
    };

    let inputs = nl.input_ports();
    let input_names: std::collections::HashSet<&str> = inputs.iter().map(|(n, _)| *n).collect();
    // Labelled nets become outputs; skip memory-name reservations
    // (invalid ids), the input ports themselves, and any label shadowed
    // by an input port name.
    let outputs: Vec<(&str, autopipe_hdl::NetId)> = nl
        .named_nets()
        .into_iter()
        .filter(|(name, id)| {
            id.index() < nl.node_count()
                && !input_names.contains(name)
                && !matches!(nl.node(*id), Node::Input { name: n } if n == name)
        })
        .collect();

    let _ = writeln!(w, "// Structural netlist emitted by autopipe.");
    let _ = writeln!(
        w,
        "// {} nodes, {} registers, {} memories.",
        nl.node_count(),
        nl.registers().len(),
        nl.memories().len()
    );
    let _ = writeln!(w, "module {} (", vid(module));
    let _ = write!(w, "  clk");
    for (name, _) in &inputs {
        let _ = write!(w, ",\n  {}", vid(name));
    }
    for (name, _) in &outputs {
        let _ = write!(w, ",\n  {}", vid(name));
    }
    let _ = writeln!(w, "\n);");
    let _ = writeln!(w, "  input wire clk;");
    for (name, net) in &inputs {
        let _ = writeln!(w, "  input wire [{}:0] {};", nl.width(*net) - 1, vid(name));
    }
    for (name, net) in &outputs {
        let _ = writeln!(w, "  output wire [{}:0] {};", nl.width(*net) - 1, vid(name));
    }

    // State declarations first, so every `n<i>` wire can refer to them.
    let _ = writeln!(w);
    for r in nl.registers() {
        let q = vid(&format!("{}$q", r.name));
        let _ = writeln!(w, "  reg [{}:0] {};", r.width - 1, q);
        let _ = writeln!(w, "  initial {} = {}'h{:x};", q, r.width, r.init);
    }
    for m in nl.memories() {
        let s = vid(&format!("{}$mem", m.name));
        let _ = writeln!(
            w,
            "  reg [{}:0] {}[0:{}];",
            m.data_width - 1,
            s,
            m.entries() - 1
        );
        let _ = writeln!(w, "  initial begin");
        for (i, v) in m.init.iter().enumerate() {
            let _ = writeln!(w, "    {}[{}] = {}'h{:x};", s, i, m.data_width, v);
        }
        let _ = writeln!(w, "  end");
    }

    // One wire per combinational node, in creation (topological) order.
    let _ = writeln!(w);
    for net in nl.nets() {
        let width = nl.width(net);
        let rhs = match nl.node(net) {
            Node::Input { .. } => continue, // the port is the net
            Node::Const { value } => format!("{width}'h{value:x}"),
            Node::RegOut(r) => vid(&format!("{}$q", nl.register_info(*r).name)),
            Node::MemRead { mem, addr } => {
                format!(
                    "{}[{}]",
                    vid(&format!("{}$mem", nl.memory_info(*mem).name)),
                    opnd(*addr)
                )
            }
            Node::Unary { op, a } => {
                let sym = match op {
                    UnaryOp::Not => "~",
                    UnaryOp::Neg => "-",
                    UnaryOp::RedOr => "|",
                    UnaryOp::RedAnd => "&",
                    UnaryOp::RedXor => "^",
                };
                format!("{sym}{}", opnd(*a))
            }
            Node::Binary { op, a, b } => {
                let (a, b) = (opnd(*a), opnd(*b));
                match op {
                    BinaryOp::And => format!("{a} & {b}"),
                    BinaryOp::Or => format!("{a} | {b}"),
                    BinaryOp::Xor => format!("{a} ^ {b}"),
                    BinaryOp::Add => format!("{a} + {b}"),
                    BinaryOp::Sub => format!("{a} - {b}"),
                    BinaryOp::Mul => format!("{a} * {b}"),
                    BinaryOp::Eq => format!("{a} == {b}"),
                    BinaryOp::Ne => format!("{a} != {b}"),
                    BinaryOp::Ult => format!("{a} < {b}"),
                    BinaryOp::Ule => format!("{a} <= {b}"),
                    BinaryOp::Slt => format!("$signed({a}) < $signed({b})"),
                    BinaryOp::Sle => format!("$signed({a}) <= $signed({b})"),
                    BinaryOp::Shl => format!("{a} << {b}"),
                    BinaryOp::Lshr => format!("{a} >> {b}"),
                    BinaryOp::Ashr => format!("$signed({a}) >>> {b}"),
                }
            }
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => format!("{} ? {} : {}", opnd(*sel), opnd(*then_net), opnd(*else_net)),
            Node::Slice { a, hi, lo } => format!("{}[{hi}:{lo}]", opnd(*a)),
            Node::Concat { hi, lo } => format!("{{{}, {}}}", opnd(*hi), opnd(*lo)),
        };
        let _ = writeln!(w, "  wire [{}:0] n{} = {};", width - 1, net.index(), rhs);
    }

    // Register updates.
    let _ = writeln!(w);
    for r in nl.registers() {
        let q = vid(&format!("{}$q", r.name));
        let next = r.next.expect("pipelined netlists drive every register");
        match r.enable {
            Some(en) => {
                let _ = writeln!(
                    w,
                    "  always @(posedge clk) if ({}) {} <= {};",
                    opnd(en),
                    q,
                    opnd(next)
                );
            }
            None => {
                let _ = writeln!(w, "  always @(posedge clk) {} <= {};", q, opnd(next));
            }
        }
    }

    // Memory writes: one block per memory, ports in order (last wins).
    for m in nl.memories() {
        if m.write_ports.is_empty() {
            continue;
        }
        let s = vid(&format!("{}$mem", m.name));
        let _ = writeln!(w, "  always @(posedge clk) begin");
        for p in &m.write_ports {
            let _ = writeln!(
                w,
                "    if ({}) {}[{}] <= {};",
                opnd(p.enable),
                s,
                opnd(p.addr),
                opnd(p.data)
            );
        }
        let _ = writeln!(w, "  end");
    }

    // Architectural / control outputs.
    let _ = writeln!(w);
    for (name, net) in &outputs {
        let _ = writeln!(w, "  assign {} = {};", vid(name), opnd(*net));
    }
    let _ = writeln!(w, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_dotted_names() {
        assert_eq!(vid("fw.2.GPRa.hit.3"), "\\fw.2.GPRa.hit.3 ");
        assert_eq!(vid("PC$q"), "PC$q");
        assert_eq!(vid("reg"), "\\reg ");
        assert_eq!(vid("DPC"), "DPC");
    }

    #[test]
    fn emits_counter_module() {
        let mut nl = Netlist::new("count");
        let (reg, q) = nl.register("CNT", 8, 0);
        let one = nl.constant(1, 8);
        let next = nl.add(q, one);
        nl.connect(reg, next);
        nl.label("CNT.next", next);
        let v = emit_verilog(&nl, "count");
        assert!(v.contains("module count ("));
        assert!(v.contains("reg [7:0] CNT$q;"));
        assert!(v.contains("always @(posedge clk) CNT$q <="));
        assert!(v.contains("output wire [7:0] \\CNT.next ;"));
        assert!(v.ends_with("endmodule\n"));
    }
}
