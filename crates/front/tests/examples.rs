//! The shipped `.psm` examples close the loop: text → spec → pipeline →
//! Verilog → reader → lockstep simulation.

use autopipe_dlx::machine::load_program;
use autopipe_dlx::workload::fib;
use autopipe_dlx::{build_dlx_spec, dlx_synth_options, DlxConfig, IsaSim};
use autopipe_front::{compile_file, emit_verilog, reader::read_verilog};
use autopipe_hdl::{Netlist, Simulator};
use autopipe_synth::{PipelineSynthesizer, PipelinedMachine};
use autopipe_verify::Cosim;
use std::path::Path;

fn example(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name)
}

fn synth(path: &str) -> PipelinedMachine {
    let compiled = compile_file(&example(path)).unwrap_or_else(|d| panic!("{d}"));
    let plan = compiled.spec.plan().expect("plans");
    PipelineSynthesizer::new(compiled.options)
        .run(&plan)
        .expect("synthesizes")
}

#[test]
fn toy_psm_compiles_and_cosimulates() {
    let pm = synth("toy.psm");
    let mut cosim = Cosim::new(&pm).unwrap();
    let stats = cosim.run(200).expect("consistent");
    assert!(stats.retired > 50, "forwarding keeps the pipe busy");
}

/// The textual DLX lowers to the same machine as the builder: identical
/// register set, identical generated control nets (`fw.*`, `dhaz.*`,
/// `full.*`, ...), identical plan shape.
#[test]
fn dlx_psm_matches_builder_structure() {
    let compiled = compile_file(&example("dlx.psm")).unwrap_or_else(|d| panic!("{d}"));
    let plan = compiled.spec.plan().expect("plans");
    let builder_plan = build_dlx_spec(DlxConfig::default())
        .unwrap()
        .plan()
        .unwrap();
    assert_eq!(plan.instances.len(), builder_plan.instances.len());
    assert_eq!(plan.files.len(), builder_plan.files.len());

    let pm = PipelineSynthesizer::new(compiled.options)
        .run(&plan)
        .unwrap();
    let pm_ref = PipelineSynthesizer::new(dlx_synth_options())
        .run(&builder_plan)
        .unwrap();

    let regs = |nl: &Netlist| -> Vec<String> {
        let mut v: Vec<String> = nl.registers().iter().map(|r| r.name.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(regs(&pm.netlist), regs(&pm_ref.netlist));

    let nets = |nl: &Netlist| -> Vec<String> {
        let mut v: Vec<String> = nl
            .named_nets()
            .into_iter()
            .map(|(n, _)| n.to_string())
            .collect();
        v.sort();
        v
    };
    assert_eq!(nets(&pm.netlist), nets(&pm_ref.netlist));
}

/// The textual DLX executes real programs correctly: fib(15) under the
/// cosim checker, final data memory against the golden ISA simulator.
#[test]
fn dlx_psm_runs_fib_against_reference() {
    let cfg = DlxConfig::default();
    let words: Vec<u32> = fib(15).iter().map(|i| i.encode()).collect();
    let mut isa = IsaSim::new(cfg, &words);
    isa.run(100_000);
    assert!(isa.halted(), "reference must halt");

    let pm = synth("dlx.psm");
    let mut cosim = Cosim::new(&pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &words);
    load_program(cosim.seq_sim_mut(), cfg, &words);
    cosim.run(isa.retired * 3 + 40).unwrap();

    let dmem = {
        let nl = cosim.sim_mut().netlist();
        nl.mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
            .unwrap()
    };
    for (i, want) in isa.dmem.iter().enumerate() {
        assert_eq!(cosim.sim_mut().peek_mem(dmem, i), u64::from(*want));
    }
}

/// Steps the original and the reread netlist in lockstep and compares
/// every register after every cycle.
fn lockstep(nl: &Netlist, reread: &Netlist, cycles: u64, program: &[u32]) {
    let mut a = Simulator::new(nl).expect("original simulates");
    let mut b = Simulator::new(reread).expect("reread netlist simulates");
    for (sim, n) in [(&mut a, nl), (&mut b, reread)] {
        if !program.is_empty() {
            let mem = n
                .mem_ids()
                .find(|m| n.memory_info(*m).name.ends_with("IMEM"))
                .unwrap();
            for (i, w) in program.iter().enumerate() {
                sim.poke_mem(mem, i, u64::from(*w));
            }
        }
    }
    for cycle in 0..cycles {
        a.step();
        b.step();
        for r in nl.registers() {
            let ra = nl.reg_by_name(&r.name).unwrap();
            let rb = reread.reg_by_name(&r.name).unwrap();
            assert_eq!(
                a.reg_value(ra),
                b.reg_value(rb),
                "register {} diverges at cycle {cycle}",
                r.name
            );
        }
    }
}

#[test]
fn toy_verilog_roundtrip_cosimulates() {
    let pm = synth("toy.psm");
    let v = emit_verilog(&pm.netlist, "acc_pipe");
    let reread = read_verilog(&v).unwrap_or_else(|e| panic!("{e}"));
    // Fixpoint: emitting the reread netlist reproduces itself.
    let v2 = emit_verilog(&reread, "acc_pipe");
    let reread2 = read_verilog(&v2).unwrap();
    assert_eq!(emit_verilog(&reread2, "acc_pipe"), v2);
    lockstep(&pm.netlist, &reread, 10_000, &[]);
}

#[test]
fn dlx_verilog_roundtrip_cosimulates() {
    let words: Vec<u32> = fib(15).iter().map(|i| i.encode()).collect();
    let pm = synth("dlx.psm");
    let v = emit_verilog(&pm.netlist, "dlx5_pipe");
    let reread = read_verilog(&v).unwrap_or_else(|e| panic!("{e}"));
    lockstep(&pm.netlist, &reread, 10_000, &words);
}
