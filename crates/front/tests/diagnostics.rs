//! Golden-file tests for rendered diagnostics: every malformed `.psm`
//! under `tests/golden/` must produce exactly the error text recorded in
//! its `.stderr` sibling.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p autopipe-front`.

use std::path::Path;

fn check(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let input = dir.join(format!("{name}.psm"));
    let golden = dir.join(format!("{name}.stderr"));
    let src = std::fs::read_to_string(&input).unwrap();
    let rendered = match autopipe_front::compile(&src, &format!("tests/golden/{name}.psm")) {
        Ok(_) => panic!("{name}.psm unexpectedly compiled"),
        Err(diags) => diags.render(),
    };
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("missing {}; run with UPDATE_GOLDEN=1", golden.display()));
    assert_eq!(
        rendered, want,
        "diagnostics for {name}.psm changed; rerun with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn unknown_stage() {
    check("unknown_stage");
}

#[test]
fn duplicate_register() {
    check("duplicate_register");
}

#[test]
fn missing_forward_register() {
    check("missing_forward_register");
}

#[test]
fn arity_mismatch() {
    check("arity_mismatch");
}

#[test]
fn cyclic_let() {
    check("cyclic_let");
}
