//! Crash corpus for the `.psm` front end: no input — however malformed,
//! truncated, or adversarial — may panic, overflow the stack, or attempt
//! an absurd allocation. Every failure must surface as a `Diagnostic`.

use autopipe_front::compile;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A minimal well-formed machine used as a template for mutations.
const VALID: &str = "\
machine m(2) {
  reg PC : 4 writes(0) visible;
  reg X  : 8 writes(1);
  file RF : [2 x 8] write(1) ctrl(0) visible;
  stage 0 F {
    PC = PC + 4'd1;
    RF.we = 1'b1;
    RF.wa = PC[1:0];
  }
  stage 1 W {
    X = X ^ 8'd3;
    RF = X;
  }
  forward RF;
}
";

/// Compiling must return `Ok` or `Err` — the assertion is simply that we
/// get back to the caller at all (no panic, no stack overflow, no OOM).
fn must_not_panic(src: &str) {
    let _ = compile(src, "corpus.psm");
}

/// Wraps an expression string in an otherwise valid design.
fn with_expr(expr: &str) -> String {
    format!("machine m(1) {{ reg X : 8 writes(0); stage 0 S {{ X = {expr}; }} }}")
}

#[test]
fn template_is_valid() {
    compile(VALID, "t.psm").expect("the corpus template must compile");
}

#[test]
fn deeply_nested_parens_error_instead_of_overflowing() {
    let e = format!("{}8'd1{}", "(".repeat(100_000), ")".repeat(100_000));
    let err = compile(&with_expr(&e), "t.psm").expect_err("must be rejected");
    assert!(
        err.to_string().contains("nested too deeply"),
        "expected a depth diagnostic, got: {err}"
    );
}

#[test]
fn deep_unary_chain_errors_instead_of_overflowing() {
    must_not_panic(&with_expr(&format!("{}X", "~".repeat(100_000))));
    must_not_panic(&with_expr(&format!("{}X", "-".repeat(100_000))));
}

#[test]
fn deep_ternary_chain_errors_instead_of_overflowing() {
    // Right-associative `? :` recurses in the else arm.
    let e = format!("{}8'd0", "X[0] ? 8'd1 : ".repeat(100_000));
    must_not_panic(&with_expr(&e));
}

#[test]
fn unbalanced_nesting_is_diagnosed() {
    must_not_panic(&with_expr(&"(".repeat(50_000)));
    must_not_panic(&"{".repeat(10_000));
    must_not_panic(&"}".repeat(10_000));
}

#[test]
fn absurd_stage_count_is_rejected_without_allocating() {
    for n in ["65", "4294967295", "18446744073709551615"] {
        let src = format!("machine m({n}) {{ }}");
        let err = compile(&src, "t.psm").expect_err("must be rejected");
        assert!(
            err.to_string().contains("stage count"),
            "expected a stage-count diagnostic for {n}, got: {err}"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_program_is_handled() {
    for end in 0..VALID.len() {
        if VALID.is_char_boundary(end) {
            must_not_panic(&VALID[..end]);
        }
    }
}

#[test]
fn single_byte_corruptions_are_handled() {
    let bytes = VALID.as_bytes();
    for i in 0..bytes.len() {
        for b in [b'\0', b'(', b')', b'{', b'}', b'?', b'~', b'9', 0xFF] {
            let mut v = bytes.to_vec();
            v[i] = b;
            // Corruption may break UTF-8; the lossless round-trip keeps
            // the test focused on the parser, not str validation.
            must_not_panic(&String::from_utf8_lossy(&v));
        }
    }
}

/// Alphabet for random token soup: everything the lexer knows about,
/// plus a few things it does not.
const SOUP: &[&str] = &[
    "machine",
    "reg",
    "file",
    "stage",
    "read",
    "forward",
    "interlock",
    "topology",
    "ext_stalls",
    "writes",
    "write",
    "ctrl",
    "init",
    "visible",
    "readonly",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ":",
    ";",
    ",",
    ".",
    "?",
    "~",
    "-",
    "+",
    "*",
    "&",
    "|",
    "^",
    "==",
    "!=",
    "<<",
    ">>",
    ">>>",
    "=",
    "x",
    "PC",
    "RF",
    "S",
    "8'd5",
    "1'b1",
    "0",
    "1",
    "4294967296",
    "18446744073709551615",
    "'",
    "\"",
    "//",
    "\n",
    " ",
    "$",
    "@",
    "\u{00e9}",
];

fn soup(seed: u64) -> String {
    let rng = &mut StdRng::seed_from_u64(seed);
    let len = rng.gen_range(0usize..200);
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(SOUP[rng.gen_range(0usize..SOUP.len())]);
        if rng.gen_range(0u32..3) == 0 {
            s.push(' ');
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    /// Random token soup never panics the front end.
    #[test]
    fn token_soup_never_panics(seed in any::<u64>()) {
        must_not_panic(&soup(seed));
    }

    /// Token soup spliced into an otherwise valid design never panics.
    #[test]
    fn spliced_soup_never_panics(seed in any::<u64>()) {
        let rng = &mut StdRng::seed_from_u64(seed ^ 0xD1CE);
        let cut = rng.gen_range(0usize..VALID.len());
        if VALID.is_char_boundary(cut) {
            must_not_panic(&format!("{}{}{}", &VALID[..cut], soup(seed), &VALID[cut..]));
        }
    }
}
