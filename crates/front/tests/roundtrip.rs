//! Property test: pretty-printing a random design and parsing it back
//! reproduces the design (compared through the canonical printed form,
//! which is injective up to spans).

use autopipe_front::ast::{
    Annotation, BinOp, CtrlSuffix, Design, Expr, FileDeclAst, RegDecl, StageDecl, Stmt, UnOp,
};
use autopipe_front::parse::parse_design;
use autopipe_front::Span;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sp() -> Span {
    Span::new(0, 0)
}

fn name(rng: &mut StdRng, prefix: &str, n: usize) -> String {
    format!("{prefix}{}", rng.gen_range(0usize..n))
}

fn expr(rng: &mut StdRng, depth: u32, idents: &[String], n_stages: usize) -> Expr {
    let leaf = depth == 0 || rng.gen_range(0u32..4) == 0;
    if leaf {
        match rng.gen_range(0u32..3) {
            0 => {
                let width = rng.gen_range(1u32..9);
                let value = rng.gen_range(0u64..1 << width);
                Expr::Const {
                    value,
                    width,
                    span: sp(),
                }
            }
            1 => Expr::Instance {
                name: idents[rng.gen_range(0usize..idents.len())].clone(),
                k: rng.gen_range(0usize..n_stages + 1),
                span: sp(),
            },
            _ => Expr::Ident {
                name: idents[rng.gen_range(0usize..idents.len())].clone(),
                span: sp(),
            },
        }
    } else {
        let sub = |rng: &mut StdRng| Box::new(expr(rng, depth - 1, idents, n_stages));
        match rng.gen_range(0u32..6) {
            0 => Expr::Unary {
                op: if rng.gen_range(0u32..2) == 0 {
                    UnOp::Not
                } else {
                    UnOp::Neg
                },
                a: sub(rng),
                span: sp(),
            },
            1 => {
                const OPS: [BinOp; 11] = [
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::And,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Shl,
                    BinOp::Lshr,
                    BinOp::Ashr,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                ];
                Expr::Binary {
                    op: OPS[rng.gen_range(0usize..OPS.len())],
                    a: sub(rng),
                    b: sub(rng),
                    span: sp(),
                }
            }
            2 => Expr::Mux {
                sel: sub(rng),
                a: sub(rng),
                b: sub(rng),
                span: sp(),
            },
            3 => {
                let lo = rng.gen_range(0u32..4);
                Expr::Slice {
                    a: sub(rng),
                    hi: lo + rng.gen_range(0u32..4),
                    lo,
                    span: sp(),
                }
            }
            4 => Expr::Bit {
                a: sub(rng),
                idx: rng.gen_range(0u32..8),
                span: sp(),
            },
            _ => {
                let (func, nargs, width) = match rng.gen_range(0u32..4) {
                    0 => ("sext", 1, Some(rng.gen_range(8u32..33))),
                    1 => ("zext", 1, Some(rng.gen_range(8u32..33))),
                    2 => ("cat", 2 + rng.gen_range(0usize..2), None),
                    _ => ("ult", 2, None),
                };
                Expr::Call {
                    func: func.to_string(),
                    func_span: sp(),
                    args: (0..nargs)
                        .map(|_| expr(rng, depth - 1, idents, n_stages))
                        .collect(),
                    width,
                    span: sp(),
                }
            }
        }
    }
}

fn design(seed: u64) -> Design {
    let rng = &mut StdRng::seed_from_u64(seed);
    let n_stages = rng.gen_range(1usize..4);
    let n_regs = rng.gen_range(1usize..4);
    let regs: Vec<RegDecl> = (0..n_regs)
        .map(|i| RegDecl {
            name: format!("r{i}"),
            width: rng.gen_range(1u32..33),
            writers: {
                let mut w: Vec<usize> = (0..n_stages)
                    .filter(|_| rng.gen_range(0u32..2) == 0)
                    .collect();
                if w.is_empty() {
                    w.push(rng.gen_range(0usize..n_stages));
                }
                w
            },
            init: rng.gen_range(0u64..16),
            visible: rng.gen_range(0u32..2) == 0,
            span: sp(),
        })
        .collect();
    let files: Vec<FileDeclAst> = (0..rng.gen_range(0usize..2))
        .map(|i| {
            let read_only = rng.gen_range(0u32..2) == 0;
            FileDeclAst {
                name: format!("f{i}"),
                addr_width: rng.gen_range(1u32..5),
                data_width: rng.gen_range(1u32..17),
                read_only,
                write_stage: if read_only {
                    0
                } else {
                    rng.gen_range(0usize..n_stages)
                },
                ctrl_stage: if !read_only && rng.gen_range(0u32..2) == 0 {
                    Some(rng.gen_range(0usize..n_stages))
                } else {
                    None
                },
                init: (0..rng.gen_range(0usize..4))
                    .map(|_| rng.gen_range(0u64..256))
                    .collect(),
                visible: rng.gen_range(0u32..2) == 0,
                span: sp(),
            }
        })
        .collect();

    let idents: Vec<String> = regs.iter().map(|r| r.name.clone()).collect();
    let stages: Vec<StageDecl> = (0..n_stages)
        .map(|k| {
            let mut stmts = Vec::new();
            for (i, f) in files.iter().enumerate() {
                if rng.gen_range(0u32..2) == 0 {
                    stmts.push(Stmt::Read {
                        alias: format!("a{k}_{i}"),
                        file: f.name.clone(),
                        file_span: sp(),
                        addr: expr(rng, 1, &idents, n_stages),
                    });
                }
            }
            for i in 0..rng.gen_range(0usize..3) {
                stmts.push(Stmt::Let {
                    name: format!("x{k}_{i}"),
                    span: sp(),
                    expr: expr(rng, 3, &idents, n_stages),
                });
            }
            for _ in 0..rng.gen_range(1usize..3) {
                stmts.push(Stmt::Assign {
                    target: name(rng, "r", n_regs),
                    suffix: match rng.gen_range(0u32..4) {
                        0 => Some(CtrlSuffix::We),
                        1 => Some(CtrlSuffix::Wa),
                        _ => None,
                    },
                    span: sp(),
                    expr: expr(rng, 3, &idents, n_stages),
                });
            }
            StageDecl {
                index: k,
                index_span: sp(),
                name: format!("S{k}"),
                stmts,
            }
        })
        .collect();

    let mut annotations = Vec::new();
    if rng.gen_range(0u32..2) == 0 {
        annotations.push(Annotation::Forward {
            target: name(rng, "r", n_regs),
            target_span: sp(),
            via: if rng.gen_range(0u32..2) == 0 {
                Some((name(rng, "r", n_regs), sp()))
            } else {
                None
            },
        });
    }
    if rng.gen_range(0u32..3) == 0 {
        annotations.push(Annotation::Interlock {
            target: name(rng, "r", n_regs),
            target_span: sp(),
        });
    }
    if rng.gen_range(0u32..3) == 0 {
        annotations.push(Annotation::Topology {
            tree: rng.gen_range(0u32..2) == 0,
        });
    }
    if rng.gen_range(0u32..3) == 0 {
        annotations.push(Annotation::ExtStalls);
    }

    Design {
        name: "m".to_string(),
        name_span: sp(),
        n_stages,
        inputs: Vec::new(),
        regs,
        files,
        stages,
        annotations,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    /// print → parse → print is the identity on the canonical form.
    #[test]
    fn printed_design_parses_back(seed in any::<u64>()) {
        let d = design(seed);
        let text = d.to_string();
        let reparsed = parse_design(&text)
            .unwrap_or_else(|e| panic!("generated design must parse:\n{text}\n{e:?}"));
        prop_assert_eq!(text, reparsed.to_string());
    }
}
