//! `autopipe-analyze`: static hazard & structural analysis over PSM
//! specifications and synthesized HDL netlists.
//!
//! The analyzer complements the machine-checked verification flow with
//! *lints*: findings that explain a design problem at the specification
//! level before it turns into a synthesis error or a model-checking
//! counterexample. Three passes feed one [`LintReport`]:
//!
//! * **stage dataflow** ([`dataflow`]) — for every register/file read
//!   at stage `k`, the set of writing stages, classified
//!   safe/forwardable/interlock/uncovered, mirroring (and explaining)
//!   the checks `PipelineSynthesizer` enforces. This is where a missing
//!   forwarding register becomes `AP0105` with a source span instead of
//!   a verification counterexample.
//! * **structural** ([`structural`]) — combinational-cycle detection,
//!   width/index checking, dead-net and never-read/never-written
//!   register detection over the HDL IR, sharing the single
//!   [`autopipe_hdl::NetAnalysis`] graph walk with the cost reports.
//! * **cross-check** ([`crosscheck`]) — register-aware constant
//!   propagation over the synthesized hit/dhaz control nets to flag
//!   forwarding paths that can never fire (`AP0306`) and interlocks
//!   that can never trigger (`AP0307`).
//!
//! Findings carry stable codes (see [`codes`]), have per-code
//! `allow`/`warn`/`deny` overrides ([`LintConfig`]), and render as
//! human diagnostics (via [`autopipe_front::Diagnostics`]), stable JSON,
//! or SARIF 2.1.0 (see [`output`]).
#![warn(missing_docs)]

pub mod codes;
pub mod crosscheck;
pub mod dataflow;
pub mod output;
pub mod spans;
pub mod sta;
pub mod structural;

pub use codes::{CodeInfo, Level, CODES};
pub use spans::attach_spans;

use autopipe_front::{Diagnostic, Diagnostics, Severity, Span};
use autopipe_psm::Plan;
use autopipe_synth::{PipelineSynthesizer, PipelinedMachine, SynthError, SynthOptions};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Catalog entry (code, name, default level).
    pub code: &'static CodeInfo,
    /// Effective level after [`LintConfig`] overrides.
    pub level: Level,
    /// Human-readable message.
    pub message: String,
    /// Optional fix suggestion.
    pub help: Option<String>,
    /// Reading/declaring stage, when the finding is stage-local.
    pub stage: Option<usize>,
    /// The register/file the finding is about.
    pub target: Option<String>,
    /// The input ports involved (e.g. `["GPRa", "GPRb"]`).
    pub ports: Vec<String>,
    /// Source span, attached by [`attach_spans`] when an AST is
    /// available.
    pub span: Option<Span>,
}

impl Finding {
    fn new(code: &'static str, level: Level, message: String) -> Finding {
        Finding {
            code: codes::info(code),
            level,
            message,
            help: None,
            stage: None,
            target: None,
            ports: Vec::new(),
            span: None,
        }
    }
}

/// Classification of one stage-input read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// The value flows forward with the instruction (writer at or
    /// before the reader) or comes from read-only state.
    Safe,
    /// Hazardous, covered by a `Forward` designation.
    Forwardable,
    /// Hazardous, covered by an `InterlockOnly` designation.
    Interlock,
    /// Hazardous, explicitly unprotected.
    Unprotected,
    /// Hazardous with no designation at all.
    Uncovered,
    /// Replaced by a speculation guess; verified at the resolve stage.
    Speculated,
}

impl ReadClass {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            ReadClass::Safe => "safe",
            ReadClass::Forwardable => "forwardable",
            ReadClass::Interlock => "interlock",
            ReadClass::Unprotected => "unprotected",
            ReadClass::Uncovered => "uncovered",
            ReadClass::Speculated => "speculated",
        }
    }
}

/// One analyzed stage-input read: the dataflow fact base the hazard
/// lints are derived from (serialized in the JSON report).
#[derive(Debug, Clone)]
pub struct ReadInfo {
    /// Reading stage.
    pub stage: usize,
    /// Stage-logic input port (register name, instance name or read
    /// alias).
    pub port: String,
    /// The register/file base name being read.
    pub target: String,
    /// Stages writing the value this read observes (later stages mean
    /// a hazard).
    pub writers: Vec<usize>,
    /// Hazard classification.
    pub class: ReadClass,
}

/// Per-code level overrides (`--allow/--warn/--deny`).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(&'static CodeInfo, Level)>,
}

impl LintConfig {
    /// Empty configuration: every code at its default level.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides `key` (an `APxxxx` code or kebab name) to `level`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown code.
    pub fn set(&mut self, key: &str, level: Level) -> Result<(), String> {
        let info = codes::lookup(key).ok_or_else(|| format!("unknown lint `{key}`"))?;
        self.overrides.retain(|(c, _)| c.code != info.code);
        self.overrides.push((info, level));
        Ok(())
    }

    /// The effective level for a code.
    pub fn level_for(&self, info: &'static CodeInfo) -> Level {
        self.overrides
            .iter()
            .find(|(c, _)| c.code == info.code)
            .map(|&(_, l)| l)
            .unwrap_or(info.default)
    }

    /// Builds a finding with its effective level applied.
    pub(crate) fn finding(&self, code: &'static str, message: String) -> Finding {
        let info = codes::info(code);
        Finding::new(code, self.level_for(info), message)
    }
}

/// The result of one analyzer run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, deterministically ordered (see
    /// [`LintReport::sort`]).
    pub findings: Vec<Finding>,
    /// The dataflow fact base (one entry per stage-input read).
    pub reads: Vec<ReadInfo>,
}

impl LintReport {
    /// Number of deny-level findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Warn)
            .count()
    }

    /// Number of findings downgraded to `allow` (still recorded).
    pub fn allowed(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Allow)
            .count()
    }

    /// Whether any finding denies the design.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Whether any finding — regardless of its configured level — means
    /// the synthesizer itself would reject the design, so the driver
    /// must not attempt synthesis.
    pub fn blocks_synthesis(&self) -> bool {
        self.findings
            .iter()
            .any(|f| codes::blocks_synthesis(f.code.code))
    }

    /// Sorts findings deterministically: by source position, then code,
    /// then stage, then message. Byte-identical output across runs and
    /// thread counts follows from this plus the passes being
    /// deterministic.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            let pos = |f: &Finding| f.span.map_or(usize::MAX, |s| s.start);
            pos(a)
                .cmp(&pos(b))
                .then_with(|| a.code.code.cmp(b.code.code))
                .then_with(|| a.stage.cmp(&b.stage))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Renders the findings through the shared diagnostics renderer.
    /// `file`/`source` locate the spans; pass an empty source for
    /// programmatic (span-less) specs.
    pub fn to_diagnostics(&self, file: &str, source: &str) -> Diagnostics {
        let errors = self
            .findings
            .iter()
            .map(|f| {
                let severity = match f.level {
                    Level::Deny => Severity::Error,
                    Level::Warn => Severity::Warning,
                    Level::Allow => Severity::Note,
                };
                let label = f.help.clone().unwrap_or_default();
                let mut d = match f.span {
                    Some(span) => Diagnostic::new(f.message.clone(), span, label),
                    None => Diagnostic::whole_file(f.message.clone()),
                };
                d = d.with_severity(severity).with_code(f.code.code);
                d
            })
            .collect();
        Diagnostics {
            file: file.to_string(),
            source: source.to_string(),
            errors,
        }
    }

    /// The one-line summary appended to human output.
    pub fn summary_line(&self) -> String {
        format!(
            "lint: {} error(s), {} warning(s), {} allowed, {} read(s) analyzed",
            self.errors(),
            self.warnings(),
            self.allowed(),
            self.reads.len()
        )
    }
}

/// Runs the dataflow pass only (no synthesized netlist needed).
pub fn lint_spec(plan: &Plan, options: &SynthOptions, config: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    dataflow::run(plan, options, config, &mut report);
    report.sort();
    report
}

/// Drops `AP0304` findings about architecturally visible instances:
/// visible state is the machine's observable output, so its final
/// instance legitimately drives nothing inside the netlist.
fn exempt_visible_state(report: &mut LintReport, plan: &Plan) {
    let visible: Vec<String> = plan
        .instances
        .iter()
        .filter(|i| i.visible)
        .map(|i| i.name())
        .collect();
    report.findings.retain(|f| {
        f.code.code != codes::UNREAD_REGISTER
            || f.target
                .as_deref()
                .is_none_or(|t| !visible.iter().any(|v| v == t))
    });
}

/// Runs all passes against an already-synthesized machine.
pub fn lint_machine(
    plan: &Plan,
    options: &SynthOptions,
    pm: &PipelinedMachine,
    config: &LintConfig,
) -> LintReport {
    let mut report = LintReport::default();
    dataflow::run(plan, options, config, &mut report);
    // One shared graph walk for the structural and timing passes (and
    // anything the caller reuses it for afterwards).
    let analysis = autopipe_hdl::NetAnalysis::of(&pm.netlist);
    structural::run_with(&pm.netlist, &analysis, config, &mut report);
    crosscheck::run(pm, options, config, &mut report);
    sta::lint_timing(pm, &analysis, config, &mut report);
    exempt_visible_state(&mut report, plan);
    report.sort();
    report
}

/// The full driver: dataflow first; if nothing blocks synthesis, the
/// design is synthesized and the structural and cross-check passes run
/// against the netlist. The machine is returned for reuse (the CLI
/// continues into `synth`/`verify` with it).
///
/// # Errors
///
/// Returns the synthesizer's own error when synthesis fails for a
/// reason no dataflow lint anticipated (a lint-coverage gap worth
/// reporting verbatim).
pub fn lint_design(
    plan: &Plan,
    options: &SynthOptions,
    config: &LintConfig,
) -> Result<(LintReport, Option<PipelinedMachine>), SynthError> {
    lint_design_traced(plan, options, config, &autopipe_trace::Trace::disabled())
}

/// [`lint_design`] that records run telemetry: one phase span per lint
/// pass (with the running finding count), a `synth` phase span carrying
/// the synthesis report's headline numbers, and — after a successful
/// synthesis — one per-stage counter on [`autopipe_trace::Track::stage`]
/// with the [`autopipe_synth::StageCost`] attribution (forward/interlock
/// paths, hit comparators, control-cone gates and levels). Everything
/// recorded here is a pure function of the design, so it lands on the
/// deterministic trace sink.
///
/// # Errors
///
/// Returns the synthesizer's own error when synthesis fails for a
/// reason no dataflow lint anticipated.
pub fn lint_design_traced(
    plan: &Plan,
    options: &SynthOptions,
    config: &LintConfig,
    trace: &autopipe_trace::Trace,
) -> Result<(LintReport, Option<PipelinedMachine>), SynthError> {
    use autopipe_trace::{a, Track};
    let mut report = LintReport::default();
    {
        let mut span = trace.span(Track::RUN, "phase", "lint:dataflow");
        dataflow::run(plan, options, config, &mut report);
        span.args(vec![
            a("findings", report.findings.len()),
            a("reads", report.reads.len()),
        ]);
    }
    if report.blocks_synthesis() {
        report.sort();
        trace.instant(
            Track::RUN,
            "phase",
            "synthesis blocked",
            vec![a("findings", report.findings.len())],
        );
        return Ok((report, None));
    }
    let pm = {
        let mut span = trace.span(Track::RUN, "phase", "synth");
        let pm = PipelineSynthesizer::new(options.clone()).run(plan)?;
        span.args(vec![
            a("stages", pm.report.n_stages),
            a("forwards", pm.report.forwards.len()),
            a("speculations", pm.report.speculations.len()),
            a("obligations", pm.report.obligations),
            a("valid_bits", pm.report.valid_bits),
        ]);
        pm
    };
    // One shared graph walk for the stage-cost counters and the
    // structural and timing passes.
    let analysis = autopipe_hdl::NetAnalysis::of(&pm.netlist);
    if trace.is_enabled() {
        for cost in pm.stage_costs_with(&analysis) {
            trace.counter(
                Track::stage(cost.stage),
                "stage",
                &format!("stage {}", cost.stage),
                vec![
                    a("forward_paths", cost.forward_paths),
                    a("interlock_paths", cost.interlock_paths),
                    a("hit_signals", cost.hit_signals),
                    a("control_gates", cost.control_gates),
                    a("stall_levels", u64::from(cost.stall_levels)),
                    a("dhaz_levels", u64::from(cost.dhaz_levels)),
                    a("ue_levels", u64::from(cost.ue_levels)),
                ],
            );
        }
    }
    {
        let before = report.findings.len();
        let mut span = trace.span(Track::RUN, "phase", "lint:structural");
        structural::run_with(&pm.netlist, &analysis, config, &mut report);
        span.arg("findings", report.findings.len() - before);
    }
    {
        let before = report.findings.len();
        let mut span = trace.span(Track::RUN, "phase", "lint:crosscheck");
        crosscheck::run(&pm, options, config, &mut report);
        span.arg("findings", report.findings.len() - before);
    }
    {
        let before = report.findings.len();
        let mut span = trace.span(Track::RUN, "phase", "lint:timing");
        sta::lint_timing(&pm, &analysis, config, &mut report);
        span.arg("findings", report.findings.len() - before);
    }
    exempt_visible_state(&mut report, plan);
    report.sort();
    Ok((report, Some(pm)))
}
