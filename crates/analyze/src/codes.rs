//! The lint catalog: every diagnostic code the analyzer can emit.
//!
//! Codes are grouped by pass: `AP01xx` stage-dataflow hazard lints,
//! `AP02xx` dead-state lints on the specification, `AP03xx` structural
//! lints on the synthesized HDL netlist. Each code has a stable kebab
//! name usable everywhere the code is (CLI overrides, JSON, SARIF).

use std::fmt;

/// Effective severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Reported for the record only; never affects the exit code.
    Allow,
    /// Suspicious but accepted.
    Warn,
    /// Rejected: `autopipe lint` exits non-zero.
    Deny,
}

impl Level {
    /// Parses a CLI level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

/// Static description of one lint code.
#[derive(Debug)]
pub struct CodeInfo {
    /// Stable code, e.g. `"AP0105"`.
    pub code: &'static str,
    /// Stable kebab-case name, e.g. `"missing-forwarding-register"`.
    pub name: &'static str,
    /// Default severity before CLI overrides.
    pub default: Level,
    /// One-line summary (used as the SARIF rule description).
    pub summary: &'static str,
    /// Which mechanism of the paper's transformation the lint guards.
    pub mechanism: &'static str,
}

/// Dataflow: a read crosses a write with no designation at all.
pub const UNCOVERED_HAZARDOUS_READ: &str = "AP0101";
/// Dataflow: plain-register forwarding beyond the adjacent stage.
pub const UNFORWARDABLE_LOOPBACK: &str = "AP0102";
/// Dataflow: file write controls computed after the reading stage.
pub const LATE_WRITE_CONTROLS: &str = "AP0103";
/// Dataflow: a designation that no hazardous read ever uses.
pub const UNUSED_DESIGNATION: &str = "AP0104";
/// Dataflow: an intermediate hit stage with no forwarding register.
pub const MISSING_FORWARDING_REGISTER: &str = "AP0105";
/// Dataflow: an explicitly unprotected hazard.
pub const UNPROTECTED_HAZARD: &str = "AP0106";
/// Dataflow: a designation naming a register/file that does not exist.
pub const UNKNOWN_DESIGNATION_TARGET: &str = "AP0107";
/// Spec: a register that is written but never read.
pub const NEVER_READ_REGISTER: &str = "AP0201";
/// Spec: a file that is never read.
pub const NEVER_READ_FILE: &str = "AP0202";
/// Spec: a declared read port whose alias the stage logic ignores.
pub const UNUSED_READ_PORT: &str = "AP0203";
/// Netlist: combinational cycle.
pub const COMBINATIONAL_CYCLE: &str = "AP0301";
/// Netlist: operator width/index inconsistency.
pub const WIDTH_MISMATCH: &str = "AP0302";
/// Netlist: combinational nets unreachable from any state or output.
pub const DEAD_NET: &str = "AP0303";
/// Netlist: a register whose output drives nothing.
pub const UNREAD_REGISTER: &str = "AP0304";
/// Netlist: a register with no next-value connection.
pub const UNWRITTEN_REGISTER: &str = "AP0305";
/// Cross-check: a forwarding hit signal that is constant false.
pub const DEAD_FORWARD_PATH: &str = "AP0306";
/// Cross-check: an interlock whose hit signals are all constant false.
pub const UNREACHABLE_INTERLOCK: &str = "AP0307";
/// Timing: the critical path runs through a forwarding select cascade
/// and exceeds the per-stage delay budget.
pub const FORWARDING_CASCADE_CRITICAL_PATH: &str = "AP0401";
/// Timing: a register whose fan-in cone has zero slack through a
/// hazard cone.
pub const ZERO_SLACK_REGISTER: &str = "AP0402";
/// Timing: the structurally longest path is unsensitizable (a SAT
/// proof shows no input ever exercises it).
pub const FALSE_CRITICAL_PATH: &str = "AP0403";

/// The full catalog, ordered by code.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: UNCOVERED_HAZARDOUS_READ,
        name: "uncovered-hazardous-read",
        default: Level::Deny,
        summary: "a stage reads a value written by a later stage with no forwarding or \
                  interlock designation",
        mechanism: "hazard coverage (paper §4): every read crossing a write needs a \
                    designated protection mode",
    },
    CodeInfo {
        code: UNFORWARDABLE_LOOPBACK,
        name: "unforwardable-loopback",
        default: Level::Deny,
        summary: "plain-register forwarding is only supported from the adjacent stage",
        mechanism: "loop-back operand forwarding (paper §4.1): the write data of stage k+1 \
                    is the only plain-register bypass source",
    },
    CodeInfo {
        code: LATE_WRITE_CONTROLS,
        name: "late-write-controls",
        default: Level::Deny,
        summary: "a file's we/wa controls are computed after a reading stage",
        mechanism: "precomputed write controls (paper §4.1): hit comparators need Rwe.j/Rwa.j \
                    available at every hit stage",
    },
    CodeInfo {
        code: UNUSED_DESIGNATION,
        name: "unused-designation",
        default: Level::Warn,
        summary: "a forward/interlock/unprotected designation that no hazardous read uses",
        mechanism: "designer designations (paper §4): designations exist only to cover \
                    hazardous reads",
    },
    CodeInfo {
        code: MISSING_FORWARDING_REGISTER,
        name: "missing-forwarding-register",
        default: Level::Deny,
        summary: "an intermediate hit stage has no forwarding register to bypass from, so \
                  the hit always interlocks",
        mechanism: "designated forwarding registers (paper §4.2): the DLX needs `C` in the \
                    execute and memory stages to bypass ALU results",
    },
    CodeInfo {
        code: UNPROTECTED_HAZARD,
        name: "unprotected-hazard",
        default: Level::Warn,
        summary: "a hazardous read is explicitly unprotected; the pipeline is incorrect \
                  when the hazard occurs",
        mechanism: "ablation mode: `unprotected` exists so the data-consistency checker can \
                    demonstrate the violation",
    },
    CodeInfo {
        code: UNKNOWN_DESIGNATION_TARGET,
        name: "unknown-designation-target",
        default: Level::Deny,
        summary: "a designation names a register or file that does not exist",
        mechanism: "designer designations (paper §4)",
    },
    CodeInfo {
        code: NEVER_READ_REGISTER,
        name: "never-read-register",
        default: Level::Warn,
        summary: "a register is written but never read and not architecturally visible",
        mechanism: "prepared sequential machine well-formedness (paper §2)",
    },
    CodeInfo {
        code: NEVER_READ_FILE,
        name: "never-read-file",
        default: Level::Warn,
        summary: "a register file is never read and not architecturally visible",
        mechanism: "prepared sequential machine well-formedness (paper §2)",
    },
    CodeInfo {
        code: UNUSED_READ_PORT,
        name: "unused-read-port",
        default: Level::Warn,
        summary: "a declared read port whose data the stage logic never uses",
        mechanism: "read-port enumeration (paper §4.1): every port grows hit comparators \
                    and bypass muxes",
    },
    CodeInfo {
        code: COMBINATIONAL_CYCLE,
        name: "combinational-cycle",
        default: Level::Deny,
        summary: "the combinational logic contains a cycle",
        mechanism: "synchronous circuit model (paper §2): stage functions must be acyclic",
    },
    CodeInfo {
        code: WIDTH_MISMATCH,
        name: "width-mismatch",
        default: Level::Deny,
        summary: "an operator's operand widths or slice indices are inconsistent",
        mechanism: "word-level IR well-formedness",
    },
    CodeInfo {
        code: DEAD_NET,
        name: "dead-net",
        default: Level::Warn,
        summary: "combinational nets unreachable from any register, memory or named output",
        mechanism: "hardware cost (paper §7): dead logic inflates the gate counts the \
                    transformation is judged by",
    },
    CodeInfo {
        code: UNREAD_REGISTER,
        name: "unread-register",
        default: Level::Warn,
        summary: "a netlist register whose output drives no logic",
        mechanism: "hardware cost (paper §7)",
    },
    CodeInfo {
        code: UNWRITTEN_REGISTER,
        name: "unwritten-register",
        default: Level::Deny,
        summary: "a netlist register with no next-value connection",
        mechanism: "synchronous circuit model (paper §2)",
    },
    CodeInfo {
        code: DEAD_FORWARD_PATH,
        name: "dead-forward-path",
        default: Level::Warn,
        summary: "a forwarding hit signal constant-folds to false, so the bypass can \
                  never fire",
        mechanism: "forwarding network (paper §4.2): cross-checked against the synthesized \
                    hit logic by constant propagation",
    },
    CodeInfo {
        code: UNREACHABLE_INTERLOCK,
        name: "unreachable-interlock",
        default: Level::Warn,
        summary: "every hit signal of an interlock-only path constant-folds to false, so \
                  the interlock can never trigger",
        mechanism: "interlock generation (paper §4.1): cross-checked against the synthesized \
                    hit logic by constant propagation",
    },
    CodeInfo {
        code: FORWARDING_CASCADE_CRITICAL_PATH,
        name: "forwarding-cascade-critical-path",
        default: Level::Warn,
        summary: "the design's critical path runs through a forwarding select cascade and \
                  exceeds the per-stage delay budget",
        mechanism: "forwarding network cost (paper §7): stacked hit/bypass muxes are the \
                    transformation's dominant delay contribution",
    },
    CodeInfo {
        code: ZERO_SLACK_REGISTER,
        name: "zero-slack-register",
        default: Level::Warn,
        summary: "a register's fan-in cone has zero timing slack through hazard-control \
                  logic",
        mechanism: "interlock generation (paper §4.1): stall/update-enable cones gate every \
                    register and set the clock period",
    },
    CodeInfo {
        code: FALSE_CRITICAL_PATH,
        name: "false-critical-path",
        default: Level::Warn,
        summary: "the structurally longest path is unsensitizable: a SAT proof shows no \
                  input valuation exercises it, so the structural report overstates the \
                  critical delay",
        mechanism: "hardware cost (paper §7): structural depth over-approximates true delay \
                    when mux selects are correlated",
    },
];

/// Looks up a code by its `APxxxx` code or kebab name.
pub fn lookup(key: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == key || c.name == key)
}

/// The catalog entry for `code`.
///
/// # Panics
///
/// Panics if `code` is not in [`CODES`] (an internal error: the
/// analyzer only emits cataloged codes).
pub fn info(code: &str) -> &'static CodeInfo {
    lookup(code).expect("lint code registered in the catalog")
}

/// Whether findings of this code imply that `PipelineSynthesizer::run`
/// would reject the design (so the lint driver must skip synthesis).
pub fn blocks_synthesis(code: &str) -> bool {
    matches!(
        code,
        UNCOVERED_HAZARDOUS_READ
            | UNFORWARDABLE_LOOPBACK
            | LATE_WRITE_CONTROLS
            | UNKNOWN_DESIGNATION_TARGET
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for w in CODES.windows(2) {
            assert!(w[0].code < w[1].code, "{} >= {}", w[0].code, w[1].code);
        }
        let mut names: Vec<_> = CODES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CODES.len());
    }

    #[test]
    fn lookup_accepts_code_and_name() {
        assert_eq!(
            lookup("AP0105").unwrap().name,
            "missing-forwarding-register"
        );
        assert_eq!(
            lookup("missing-forwarding-register").unwrap().code,
            "AP0105"
        );
        assert!(lookup("AP9999").is_none());
    }
}
