//! Cross-check of the dataflow classification against the synthesized
//! hit logic (`AP0306`/`AP0307`).
//!
//! The synthesizer labels every hit signal it generates
//! (`fw.{stage}.{port}.hit.{j}`). A register-aware constant propagation
//! over the netlist — like the optimizer's constant folder, but also
//! propagating through registers that can never leave their reset value
//! — reveals hits that are *structurally* impossible, e.g. a file whose
//! write enable is tied to zero (the enable travels to the write stage
//! through control registers, so a purely combinational fold misses
//! it). A forwarding path whose hits fold away can never bypass
//! ([`codes::DEAD_FORWARD_PATH`]); an interlock-only path whose hits
//! all fold away can never stall ([`codes::UNREACHABLE_INTERLOCK`]) —
//! either way the designation buys hardware that does nothing.

use crate::{codes, LintConfig, LintReport};
use autopipe_hdl::{BinaryOp, Netlist, Node, UnaryOp};
use autopipe_synth::{ForwardMode, PipelinedMachine, SynthOptions};

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Nets whose value is the same constant in every reachable cycle.
///
/// Fixpoint over the netlist: constants seed the set, combinational
/// nodes fold when their inputs are known, and a register whose next
/// value is provably its own reset value can never change, so its
/// output is constant too. Conservative: anything not provably constant
/// is `None`.
fn const_nets(nl: &Netlist) -> Vec<Option<u64>> {
    let nets: Vec<_> = nl.nets().collect();
    let mut val: Vec<Option<u64>> = vec![None; nets.len()];
    loop {
        let mut changed = false;
        for (i, &net) in nets.iter().enumerate() {
            if val[i].is_some() {
                continue;
            }
            let w = nl.width(net);
            let get = |n: autopipe_hdl::NetId| val[n.index()];
            let v = match nl.node(net) {
                Node::Const { value } => Some(*value & mask(w)),
                Node::Input { .. } | Node::MemRead { .. } => None,
                Node::RegOut(r) => {
                    // A register whose next value is its reset value
                    // holds that value forever (a gating enable only
                    // ever *keeps* the old value).
                    let reg = nl.register_info(*r);
                    let init = reg.init & mask(reg.width);
                    match reg.next {
                        Some(next) if get(next) == Some(init) => Some(init),
                        _ => None,
                    }
                }
                Node::Unary { op, a } => {
                    let aw = nl.width(*a);
                    get(*a).map(|a| match op {
                        UnaryOp::Not => !a & mask(w),
                        UnaryOp::Neg => a.wrapping_neg() & mask(w),
                        UnaryOp::RedOr => u64::from(a != 0),
                        UnaryOp::RedAnd => u64::from(a == mask(aw)),
                        UnaryOp::RedXor => u64::from(a.count_ones() % 2 == 1),
                    })
                }
                Node::Binary { op, a, b } => fold_binary(*op, get(*a), get(*b), nl.width(*a), w),
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => match get(*sel) {
                    Some(0) => get(*else_net),
                    Some(_) => get(*then_net),
                    None => match (get(*then_net), get(*else_net)) {
                        (Some(t), Some(e)) if t == e => Some(t),
                        _ => None,
                    },
                },
                Node::Slice { a, hi, lo } => get(*a).map(|a| (a >> lo) & mask(hi - lo + 1)),
                Node::Concat { hi, lo } => match (get(*hi), get(*lo)) {
                    (Some(h), Some(l)) => Some(((h << nl.width(*lo)) | l) & mask(w)),
                    _ => None,
                },
            };
            if v.is_some() {
                val[i] = v;
                changed = true;
            }
        }
        if !changed {
            return val;
        }
    }
}

fn fold_binary(
    op: BinaryOp,
    a: Option<u64>,
    b: Option<u64>,
    in_width: u32,
    out_width: u32,
) -> Option<u64> {
    let m = mask(out_width);
    // Dominating zeros: `x & 0` and `x * 0` are 0 without knowing `x`.
    if matches!(op, BinaryOp::And | BinaryOp::Mul) && (a == Some(0) || b == Some(0)) {
        return Some(0);
    }
    let (a, b) = (a?, b?);
    let im = mask(in_width);
    let sign = |v: u64| {
        // Sign-extend an `in_width`-bit value to i64.
        if in_width < 64 && v & (1 << (in_width - 1)) != 0 {
            (v | !im) as i64
        } else {
            v as i64
        }
    };
    Some(match op {
        BinaryOp::And => (a & b) & m,
        BinaryOp::Or => (a | b) & m,
        BinaryOp::Xor => (a ^ b) & m,
        BinaryOp::Add => a.wrapping_add(b) & m,
        BinaryOp::Sub => a.wrapping_sub(b) & m,
        BinaryOp::Mul => a.wrapping_mul(b) & m,
        BinaryOp::Eq => u64::from(a == b),
        BinaryOp::Ne => u64::from(a != b),
        BinaryOp::Ult => u64::from(a < b),
        BinaryOp::Ule => u64::from(a <= b),
        BinaryOp::Slt => u64::from(sign(a) < sign(b)),
        BinaryOp::Sle => u64::from(sign(a) <= sign(b)),
        BinaryOp::Shl => {
            if b >= 64 {
                0
            } else {
                (a << b) & m
            }
        }
        BinaryOp::Lshr => {
            if b >= 64 {
                0
            } else {
                (a >> b) & m
            }
        }
        BinaryOp::Ashr => {
            let sh = b.min(63);
            ((sign(a) >> sh) as u64) & m
        }
    })
}

/// Runs the pass, appending findings to `report`.
pub fn run(
    pm: &PipelinedMachine,
    options: &SynthOptions,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let consts = const_nets(&pm.netlist);
    for path in &pm.report.forwards {
        // Unprotected paths generate no protection hardware to check.
        if matches!(
            options.mode_for(&path.target),
            Some(ForwardMode::Unprotected) | None
        ) {
            continue;
        }
        // Which of the path's hit signals are provably constant false?
        let mut dead_hits = Vec::new();
        let mut live_hits = Vec::new();
        for &j in &path.hit_stages {
            let name = format!("fw.{}.{}.hit.{}", path.stage, path.port, j);
            let Ok(net) = pm.netlist.find(&name) else {
                continue; // defensive: labels exist for all protected paths
            };
            if consts[net.index()] == Some(0) {
                dead_hits.push(j);
            } else {
                live_hits.push(j);
            }
        }
        if dead_hits.is_empty() {
            continue;
        }
        if path.interlock_only {
            if live_hits.is_empty() {
                let mut f = config.finding(
                    codes::UNREACHABLE_INTERLOCK,
                    format!(
                        "interlock for `{}` read at stage {} (`{}`) can never trigger: \
                         every hit signal is constant false",
                        path.target, path.stage, path.port
                    ),
                );
                f.stage = Some(path.stage);
                f.target = Some(path.target.clone());
                f.ports = vec![path.port.clone()];
                f.help = Some(
                    "the write enable is constant zero; drop the designation or fix the \
                     write logic"
                        .to_string(),
                );
                report.findings.push(f);
            }
        } else {
            let msg = if live_hits.is_empty() {
                format!(
                    "forwarding path for `{}` read at stage {} (`{}`) is dead: every hit \
                     signal is constant false",
                    path.target, path.stage, path.port
                )
            } else {
                format!(
                    "forwarding path for `{}` read at stage {} (`{}`): hit(s) at \
                     stage(s) {dead_hits:?} are constant false and can never bypass",
                    path.target, path.stage, path.port
                )
            };
            let mut f = config.finding(codes::DEAD_FORWARD_PATH, msg);
            f.stage = Some(path.stage);
            f.target = Some(path.target.clone());
            f.ports = vec![path.port.clone()];
            f.help = Some(
                "the hit condition const-folds to false; drop the designation or fix \
                 the write logic"
                    .to_string(),
            );
            report.findings.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Netlist;

    #[test]
    fn propagates_through_stuck_registers() {
        let mut nl = Netlist::new("t");
        let zero = nl.constant(0, 1);
        let x = nl.input("x", 1);
        // we_reg: next is constant 0, init 0 -> provably stuck at 0.
        let (we_reg, we_out) = nl.register("we", 1, 0);
        nl.connect(we_reg, zero);
        // hit = we_out & x: must fold to 0 despite the register.
        let hit = nl.and(we_out, x);
        // free: a register fed by an input stays unknown.
        let (fr, fr_out) = nl.register("fr", 1, 0);
        nl.connect(fr, x);
        nl.validate().unwrap();

        let consts = const_nets(&nl);
        assert_eq!(consts[hit.index()], Some(0));
        assert_eq!(consts[we_out.index()], Some(0));
        assert_eq!(consts[fr_out.index()], None);
        assert_eq!(consts[x.index()], None);
    }
}
