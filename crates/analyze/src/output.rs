//! Machine-readable lint output: stable JSON and SARIF 2.1.0.
//!
//! Both writers are hand-rolled (the workspace is dependency-free) and
//! byte-deterministic: findings are emitted in [`crate::LintReport`]
//! sort order, SARIF rules sorted by code, and no timestamps or
//! absolute paths appear anywhere.

use crate::{codes, Finding, Level, LintReport};
use autopipe_front::diag::locate;
use std::fmt::Write;

/// JSON string escaping per RFC 8259.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Deny => "error",
        Level::Warn => "warning",
        Level::Allow => "allowed",
    }
}

/// The stable JSON report (`--format json`).
///
/// `source` resolves spans to 1-based line/column; pass an empty
/// string for span-less programmatic specs.
pub fn to_json(report: &LintReport, file: &str, source: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"autopipe-lint\",");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"file\": \"{}\",", json_escape(file));
    let _ = writeln!(
        out,
        "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"allowed\": {}}},",
        report.errors(),
        report.warnings(),
        report.allowed()
    );
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        let _ = write!(
            out,
            "\"code\": \"{}\", \"name\": \"{}\", \"level\": \"{}\", \"message\": \"{}\"",
            f.code.code,
            f.code.name,
            level_str(f.level),
            json_escape(&f.message)
        );
        if let Some(k) = f.stage {
            let _ = write!(out, ", \"stage\": {k}");
        }
        if let Some(t) = &f.target {
            let _ = write!(out, ", \"target\": \"{}\"", json_escape(t));
        }
        if !f.ports.is_empty() {
            let ports: Vec<String> = f
                .ports
                .iter()
                .map(|p| format!("\"{}\"", json_escape(p)))
                .collect();
            let _ = write!(out, ", \"ports\": [{}]", ports.join(", "));
        }
        if let Some(span) = f.span {
            let (line, col, _) = locate(source, span.start);
            let _ = write!(
                out,
                ", \"line\": {line}, \"column\": {col}, \"start\": {}, \"end\": {}",
                span.start, span.end
            );
        }
        if let Some(h) = &f.help {
            let _ = write!(out, ", \"help\": \"{}\"", json_escape(h));
        }
        out.push('}');
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"reads\": [");
    for (i, r) in report.reads.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let writers: Vec<String> = r.writers.iter().map(|w| w.to_string()).collect();
        let _ = write!(
            out,
            "    {{\"stage\": {}, \"port\": \"{}\", \"target\": \"{}\", \
             \"writers\": [{}], \"class\": \"{}\"}}",
            r.stage,
            json_escape(&r.port),
            json_escape(&r.target),
            writers.join(", "),
            r.class.as_str()
        );
    }
    out.push_str(if report.reads.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// SARIF 2.1.0 (`--format sarif`): one run, one rule per fired code,
/// one result per finding.
pub fn to_sarif(report: &LintReport, file: &str, source: &str) -> String {
    let mut fired: Vec<&'static codes::CodeInfo> = Vec::new();
    for f in &report.findings {
        if !fired.iter().any(|c| c.code == f.code.code) {
            fired.push(f.code);
        }
    }
    fired.sort_by_key(|c| c.code);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
    );
    let _ = writeln!(out, "  \"version\": \"2.1.0\",");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"autopipe-lint\", \"rules\": [");
    for (i, c) in fired.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "      {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}",
            c.code,
            c.name,
            json_escape(c.summary)
        );
    }
    out.push_str(if fired.is_empty() {
        "]}},\n"
    } else {
        "\n    ]}},\n"
    });
    out.push_str("    \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("      {");
        let _ = write!(
            out,
            "\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}",
            f.code.code,
            sarif_level(f),
            json_escape(&f.message)
        );
        let _ = write!(
            out,
            ", \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}",
            json_escape(file)
        );
        if let Some(span) = f.span {
            let (line, col, _) = locate(source, span.start);
            let _ = write!(
                out,
                ", \"region\": {{\"startLine\": {line}, \"startColumn\": {col}}}"
            );
        }
        out.push_str("}}]}");
    }
    out.push_str(if report.findings.is_empty() {
        "]\n"
    } else {
        "\n    ]\n"
    });
    out.push_str("  }]\n");
    out.push_str("}\n");
    out
}

/// SARIF has no "allowed" level; downgraded findings become notes.
fn sarif_level(f: &Finding) -> &'static str {
    match f.level {
        Level::Deny => "error",
        Level::Warn => "warning",
        Level::Allow => "note",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintConfig;

    fn sample() -> LintReport {
        let config = LintConfig::new();
        let mut report = LintReport::default();
        report
            .findings
            .push(config.finding(codes::DEAD_NET, "2 nets \"dead\"".to_string()));
        report
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = to_json(&sample(), "m.psm", "");
        assert!(j.contains("\\\"dead\\\""), "{j}");
        assert!(j.contains("\"warnings\": 1"), "{j}");
        assert!(j.contains("\"code\": \"AP0303\""), "{j}");
    }

    #[test]
    fn sarif_has_schema_and_rule() {
        let s = to_sarif(&sample(), "m.psm", "");
        assert!(s.contains("sarif-2.1.0.json"), "{s}");
        assert!(s.contains("\"ruleId\": \"AP0303\""), "{s}");
        assert!(s.contains("\"level\": \"warning\""), "{s}");
    }

    #[test]
    fn empty_report_is_valid() {
        let r = LintReport::default();
        let j = to_json(&r, "m.psm", "");
        assert!(j.contains("\"findings\": []"), "{j}");
        let s = to_sarif(&r, "m.psm", "");
        assert!(s.contains("\"results\": []"), "{s}");
    }
}
