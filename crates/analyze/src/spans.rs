//! Source-span attachment: maps findings back into `.psm` source.
//!
//! The analyzer runs on the lowered [`autopipe_psm::Plan`], which has
//! no spans; when the design came from text, this pass walks the
//! surface AST and attaches the best span to each finding:
//!
//! 1. the first occurrence of an involved port in the reading stage
//!    (a `read` statement's file name, or an identifier/instance
//!    reference in an expression);
//! 2. the designation's own span (for designation lints);
//! 3. the stage header;
//! 4. the register/file declaration.

use crate::{codes, Finding, LintReport};
use autopipe_front::ast::{Annotation, Design, Expr, StageDecl, Stmt};
use autopipe_front::Span;

/// Attaches spans to all findings that lack one.
pub fn attach_spans(report: &mut LintReport, design: &Design) {
    for f in &mut report.findings {
        if f.span.is_some() {
            continue;
        }
        f.span = find_span(f, design);
    }
    report.sort();
}

fn find_span(f: &Finding, design: &Design) -> Option<Span> {
    // Designation lints point at the annotation.
    if matches!(
        f.code.code,
        codes::UNUSED_DESIGNATION | codes::UNKNOWN_DESIGNATION_TARGET
    ) {
        if let Some(target) = &f.target {
            if let Some(span) = annotation_span(design, target) {
                return Some(span);
            }
        }
    }
    let stage = f
        .stage
        .and_then(|k| design.stages.iter().find(|s| s.index == k));
    if let Some(s) = stage {
        // First involved port read in the stage, in source order.
        for port in &f.ports {
            if let Some(span) = port_span(s, port) {
                return Some(span);
            }
        }
        // Fall back to the target name appearing anywhere in the stage.
        if let Some(t) = &f.target {
            if let Some(span) = port_span(s, t) {
                return Some(span);
            }
        }
        return Some(s.index_span);
    }
    // Declaration-level findings (AP0201/AP0202, netlist lints naming a
    // spec register).
    if let Some(t) = &f.target {
        if let Some(r) = design.regs.iter().find(|r| &r.name == t) {
            return Some(r.span);
        }
        if let Some(d) = design.files.iter().find(|d| &d.name == t) {
            return Some(d.span);
        }
        if let Some(span) = annotation_span(design, t) {
            return Some(span);
        }
    }
    None
}

/// The span of the designation annotation targeting (or sourcing)
/// `name`.
fn annotation_span(design: &Design, name: &str) -> Option<Span> {
    for a in &design.annotations {
        match a {
            Annotation::Forward {
                target,
                target_span,
                via,
            } => {
                if let Some((src, src_span)) = via {
                    if src == name {
                        return Some(*src_span);
                    }
                }
                if target == name {
                    return Some(*target_span);
                }
            }
            Annotation::Interlock {
                target,
                target_span,
            }
            | Annotation::Unprotected {
                target,
                target_span,
            } if target == name => return Some(*target_span),
            _ => {}
        }
    }
    None
}

/// The first source location in stage `s` where `port` is read: a
/// `read` statement binding that alias, or an identifier/instance
/// reference inside any statement's expression.
fn port_span(s: &StageDecl, port: &str) -> Option<Span> {
    for stmt in &s.stmts {
        match stmt {
            Stmt::Read {
                alias,
                file_span,
                addr,
                ..
            } => {
                if alias == port {
                    return Some(*file_span);
                }
                if let Some(span) = expr_span(addr, port) {
                    return Some(span);
                }
            }
            Stmt::Let { expr, .. } | Stmt::Assign { expr, .. } => {
                if let Some(span) = expr_span(expr, port) {
                    return Some(span);
                }
            }
        }
    }
    None
}

/// Pre-order search for an identifier or explicit instance named
/// `port`.
fn expr_span(e: &Expr, port: &str) -> Option<Span> {
    match e {
        Expr::Ident { name, span } if name == port => Some(*span),
        Expr::Instance { name, k, span } if format!("{name}.{k}") == port => Some(*span),
        Expr::Ident { .. } | Expr::Instance { .. } | Expr::Const { .. } => None,
        Expr::Unary { a, .. } | Expr::Slice { a, .. } | Expr::Bit { a, .. } => expr_span(a, port),
        Expr::Binary { a, b, .. } => expr_span(a, port).or_else(|| expr_span(b, port)),
        Expr::Mux { sel, a, b, .. } => expr_span(sel, port)
            .or_else(|| expr_span(a, port))
            .or_else(|| expr_span(b, port)),
        Expr::Call { args, .. } => args.iter().find_map(|a| expr_span(a, port)),
    }
}
