//! Stage-dataflow hazard analysis (`AP01xx`/`AP02xx`).
//!
//! For every stage-logic input port the pass resolves what is read and
//! which stage writes it, mirroring the classification the synthesizer
//! enforces — but as *explanations* instead of hard errors:
//!
//! * reads whose writer sits at or before the reader are safe
//!   (same-instruction flow);
//! * reads crossing a write need a designation
//!   ([`UNCOVERED_HAZARDOUS_READ`](codes::UNCOVERED_HAZARDOUS_READ));
//! * forwarded file reads additionally need every intermediate hit
//!   stage covered by the designated forwarding register
//!   ([`MISSING_FORWARDING_REGISTER`](codes::MISSING_FORWARDING_REGISTER)
//!   — the lint that fires when the DLX loses its `C` register);
//! * designations nothing uses are flagged
//!   ([`UNUSED_DESIGNATION`](codes::UNUSED_DESIGNATION)).
//!
//! Findings are aggregated per (stage, target): a stage reading `GPR`
//! through two ports produces one finding naming both ports.

use crate::{codes, LintConfig, LintReport, ReadClass, ReadInfo};
use autopipe_psm::{FilePlan, Plan, ResolvedInput};
use autopipe_synth::{ForwardMode, SynthOptions};
use std::collections::BTreeMap;
use std::collections::HashSet;

/// Key for per-(stage, target, code) aggregation.
type Key = (usize, String, &'static str);

struct Pending {
    message: String,
    help: Option<String>,
    ports: Vec<String>,
}

/// Runs the pass, appending findings and the read fact base to
/// `report`.
pub fn run(plan: &Plan, options: &SynthOptions, config: &LintConfig, report: &mut LintReport) {
    let mut pending: BTreeMap<Key, Pending> = BTreeMap::new();
    let mut emit = |stage: usize,
                    target: &str,
                    code: &'static str,
                    port: &str,
                    message: String,
                    help: Option<String>| {
        let entry = pending
            .entry((stage, target.to_string(), code))
            .or_insert_with(|| Pending {
                message,
                help,
                ports: Vec::new(),
            });
        if !entry.ports.iter().any(|p| p == port) {
            entry.ports.push(port.to_string());
        }
    };

    // Register bases read by anything (stage logic, read-port address
    // functions, speculation guesses/fixups) — feeds AP0201.
    let mut read_bases: HashSet<String> = HashSet::new();
    // Files read through some port — feeds AP0202.
    let mut read_files: HashSet<String> = HashSet::new();
    // Designation targets that cover at least one hazardous read.
    let mut used_designations: HashSet<String> = HashSet::new();

    for k in 0..plan.n_stages() {
        let logic = plan.stage_logic(k);
        // The ports the synthesizer resolves for stage k, in source
        // order: the stage function's own inputs, then each read port's
        // address-function inputs.
        let mut ports: Vec<String> = logic
            .logic
            .input_ports()
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        for rp in &logic.read_ports {
            ports.extend(rp.addr.input_ports().iter().map(|s| (*s).to_string()));
        }
        for port in &ports {
            let Ok(resolved) = plan.resolve_input(k, port) else {
                continue; // unresolvable ports are plan errors, not lints
            };
            match resolved {
                ResolvedInput::Instance(i) => {
                    let inst = &plan.instances[i];
                    read_bases.insert(inst.base.clone());
                    let w = inst.writer;
                    let mut rec = |class| {
                        report.reads.push(ReadInfo {
                            stage: k,
                            port: port.clone(),
                            target: inst.base.clone(),
                            writers: vec![w],
                            class,
                        });
                    };
                    if w <= k {
                        rec(ReadClass::Safe);
                        continue;
                    }
                    if is_speculated(options, k, port) {
                        rec(ReadClass::Speculated);
                        continue;
                    }
                    match options.mode_for(&inst.base) {
                        None => {
                            rec(ReadClass::Uncovered);
                            emit(
                                k,
                                &inst.base,
                                codes::UNCOVERED_HAZARDOUS_READ,
                                port,
                                format!(
                                    "stage {k} reads register `{}` written by stage {w} \
                                     with no designation",
                                    inst.base
                                ),
                                Some(format!("add `forward {0};` or `interlock {0};`", inst.base)),
                            );
                        }
                        Some(ForwardMode::Unprotected) => {
                            rec(ReadClass::Unprotected);
                            used_designations.insert(inst.base.clone());
                            emit(
                                k,
                                &inst.base,
                                codes::UNPROTECTED_HAZARD,
                                port,
                                format!(
                                    "stage {k} reads register `{}` written by stage {w} \
                                     unprotected: the pipeline is incorrect when the \
                                     hazard occurs",
                                    inst.base
                                ),
                                None,
                            );
                        }
                        Some(mode) => {
                            rec(match mode {
                                ForwardMode::Forward { .. } => ReadClass::Forwardable,
                                _ => ReadClass::Interlock,
                            });
                            used_designations.insert(inst.base.clone());
                            if w != k + 1 {
                                emit(
                                    k,
                                    &inst.base,
                                    codes::UNFORWARDABLE_LOOPBACK,
                                    port,
                                    format!(
                                        "stage {k} reads register `{}` written by stage \
                                         {w}: loop-back protection only supports the \
                                         adjacent stage (distance 1, got {})",
                                        inst.base,
                                        w - k
                                    ),
                                    Some(format!(
                                        "pipe `{}` through intermediate instances so the \
                                         read distance becomes 1",
                                        inst.base
                                    )),
                                );
                            }
                        }
                    }
                }
                ResolvedInput::ReadPort { file, .. } => {
                    let fp = &plan.files[file];
                    read_files.insert(fp.name.clone());
                    let mut rec = |class, writers: Vec<usize>| {
                        report.reads.push(ReadInfo {
                            stage: k,
                            port: port.clone(),
                            target: fp.name.clone(),
                            writers,
                            class,
                        });
                    };
                    if fp.read_only {
                        rec(ReadClass::Safe, vec![]);
                        continue;
                    }
                    let w = fp.write_stage;
                    if k >= w {
                        rec(ReadClass::Safe, vec![w]);
                        continue;
                    }
                    match options.mode_for(&fp.name) {
                        None => {
                            rec(ReadClass::Uncovered, vec![w]);
                            emit(
                                k,
                                &fp.name,
                                codes::UNCOVERED_HAZARDOUS_READ,
                                port,
                                format!(
                                    "stage {k} reads file `{}` written by stage {w} \
                                     with no designation",
                                    fp.name
                                ),
                                Some(format!(
                                    "add `forward {0} via <reg>;` or `interlock {0};`",
                                    fp.name
                                )),
                            );
                        }
                        Some(ForwardMode::Unprotected) => {
                            rec(ReadClass::Unprotected, vec![w]);
                            used_designations.insert(fp.name.clone());
                            emit(
                                k,
                                &fp.name,
                                codes::UNPROTECTED_HAZARD,
                                port,
                                format!(
                                    "stage {k} reads file `{}` written by stage {w} \
                                     unprotected: the pipeline is incorrect when the \
                                     hazard occurs",
                                    fp.name
                                ),
                                None,
                            );
                        }
                        Some(mode) => {
                            rec(
                                match mode {
                                    ForwardMode::Forward { .. } => ReadClass::Forwardable,
                                    _ => ReadClass::Interlock,
                                },
                                vec![w],
                            );
                            used_designations.insert(fp.name.clone());
                            if fp.ctrl_stage > k {
                                emit(
                                    k,
                                    &fp.name,
                                    codes::LATE_WRITE_CONTROLS,
                                    port,
                                    format!(
                                        "file `{}` write controls are computed at stage \
                                         {}, after reading stage {k}: the hit \
                                         comparators cannot see `we`/`wa`",
                                        fp.name, fp.ctrl_stage
                                    ),
                                    Some(format!(
                                        "move the `{0}.we`/`{0}.wa` computation to stage \
                                         {k} or earlier (`ctrl({k})`)",
                                        fp.name
                                    )),
                                );
                            }
                            if let ForwardMode::Forward { source } = mode {
                                check_hit_coverage(plan, fp, k, port, source.as_deref(), &mut emit);
                            }
                        }
                    }
                }
                ResolvedInput::External(_) => {}
            }
        }
        // AP0203: declared read ports the stage function ignores.
        for rp in &logic.read_ports {
            if !logic.logic.input_ports().iter().any(|p| *p == rp.alias) {
                let mut f = config.finding(
                    codes::UNUSED_READ_PORT,
                    format!(
                        "read port `{}` of file `{}` at stage {k} is never used by the \
                         stage logic",
                        rp.alias, rp.file
                    ),
                );
                f.stage = Some(k);
                f.target = Some(rp.file.clone());
                f.ports = vec![rp.alias.clone()];
                f.help = Some("delete the `read` or use its alias".to_string());
                report.findings.push(f);
            }
        }
    }

    // Speculation guess/fixup inputs also read registers.
    for sp in &options.speculation {
        for p in sp.guess.input_ports() {
            if let Ok(ResolvedInput::Instance(i)) = plan.resolve_input(sp.stage, p) {
                read_bases.insert(plan.instances[i].base.clone());
            }
        }
        if let Ok(ResolvedInput::Instance(i)) = plan.resolve_input(sp.stage, &sp.port) {
            read_bases.insert(plan.instances[i].base.clone());
        }
        for fix in &sp.fixups {
            if let autopipe_synth::FixupValue::Instance(base) = &fix.value {
                read_bases.insert(base.clone());
            }
        }
    }

    // Flush the aggregated per-(stage, target) findings.
    for ((stage, target, code), p) in pending {
        let mut f = config.finding(code, p.message);
        if p.ports.len() > 1 {
            f.message = format!("{} (ports {})", f.message, join_ticked(&p.ports));
        }
        f.stage = Some(stage);
        f.target = Some(target);
        f.ports = p.ports;
        f.help = p.help;
        report.findings.push(f);
    }

    designation_lints(plan, options, &used_designations, config, report);
    dead_state_lints(plan, options, &read_bases, &read_files, config, report);
}

/// `AP0105`: every intermediate hit stage `j` (reader `k` < `j` < write
/// stage `w`) must have a bypass source. Hits at `w` forward the write
/// data itself and are always covered. With no designated register,
/// *every* intermediate hit interlocks; with register `q`, stage `j` is
/// covered when `q` is freshly written there (instance `q.(j+1)` with
/// data) or travels through it (instance `q.j`).
fn check_hit_coverage(
    plan: &Plan,
    fp: &FilePlan,
    k: usize,
    port: &str,
    source: Option<&str>,
    emit: &mut impl FnMut(usize, &str, &'static str, &str, String, Option<String>),
) {
    let w = fp.write_stage;
    let intermediates: Vec<usize> = (k + 1..w).collect();
    if intermediates.is_empty() {
        return;
    }
    match source {
        None => emit(
            k,
            &fp.name,
            codes::MISSING_FORWARDING_REGISTER,
            port,
            format!(
                "stage {k} reads file `{}` (written by stage {w}) forwarded from the \
                 write stage only: hits at stage(s) {intermediates:?} have no forwarding \
                 register and always interlock",
                fp.name
            ),
            Some(format!(
                "designate a forwarding register: `forward {} via <reg>;`",
                fp.name
            )),
        ),
        Some(q) => {
            for j in intermediates {
                let fresh = plan
                    .instance_named(q, j + 1)
                    .is_some_and(|i| plan.instances[i].has_data);
                let travelled = plan.instance_named(q, j).is_some();
                if !fresh && !travelled {
                    emit(
                        k,
                        &fp.name,
                        codes::MISSING_FORWARDING_REGISTER,
                        port,
                        format!(
                            "forwarding register `{q}` does not cover hit stage {j} for \
                             the read of `{}` at stage {k}: the hit always interlocks",
                            fp.name
                        ),
                        Some(format!(
                            "write `{q}` in stage {j} (instance `{q}.{}`) or pipe it \
                             through (instance `{q}.{j}`)",
                            j + 1
                        )),
                    );
                }
            }
        }
    }
}

/// `AP0104`/`AP0107`: designations nothing uses, or naming nothing.
fn designation_lints(
    plan: &Plan,
    options: &SynthOptions,
    used: &HashSet<String>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    for fspec in &options.forwarding {
        let target_exists = plan.files.iter().any(|f| f.name == fspec.target)
            || plan.instances.iter().any(|i| i.base == fspec.target);
        if !target_exists {
            let mut f = config.finding(
                codes::UNKNOWN_DESIGNATION_TARGET,
                format!(
                    "designation targets `{}`, which is not a register or file of this \
                     machine",
                    fspec.target
                ),
            );
            f.target = Some(fspec.target.clone());
            report.findings.push(f);
            continue;
        }
        if let ForwardMode::Forward { source: Some(q) } = &fspec.mode {
            if !plan.instances.iter().any(|i| &i.base == q) {
                let mut f = config.finding(
                    codes::UNKNOWN_DESIGNATION_TARGET,
                    format!(
                        "designated forwarding register `{q}` (for `{}`) is not a \
                         register of this machine",
                        fspec.target
                    ),
                );
                f.target = Some(q.clone());
                report.findings.push(f);
                continue;
            }
        }
        if !used.contains(&fspec.target) {
            let what = match fspec.mode {
                ForwardMode::Forward { .. } => "forward",
                ForwardMode::InterlockOnly => "interlock",
                ForwardMode::Unprotected => "unprotected",
            };
            let mut f = config.finding(
                codes::UNUSED_DESIGNATION,
                format!(
                    "`{what} {};` is never used: no read of `{0}` crosses its write \
                     stage",
                    fspec.target
                ),
            );
            f.target = Some(fspec.target.clone());
            f.help = Some("delete the designation".to_string());
            report.findings.push(f);
        }
    }
}

/// `AP0201`/`AP0202`: written-but-never-read state.
fn dead_state_lints(
    plan: &Plan,
    options: &SynthOptions,
    read_bases: &HashSet<String>,
    read_files: &HashSet<String>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    // Forwarding sources are read by the generated bypass network.
    let is_forward_source = |name: &str| {
        options
            .forwarding
            .iter()
            .any(|f| matches!(&f.mode, ForwardMode::Forward { source: Some(q) } if q == name))
    };
    for r in &plan.spec.registers {
        if r.visible || read_bases.contains(&r.name) || is_forward_source(&r.name) {
            continue;
        }
        let mut f = config.finding(
            codes::NEVER_READ_REGISTER,
            format!(
                "register `{}` is written but never read and not visible",
                r.name
            ),
        );
        f.target = Some(r.name.clone());
        f.help = Some("delete it, read it, or mark it `visible`".to_string());
        report.findings.push(f);
    }
    for fp in &plan.files {
        if fp.visible || read_files.contains(&fp.name) {
            continue;
        }
        let mut f = config.finding(
            codes::NEVER_READ_FILE,
            format!("file `{}` is never read and not visible", fp.name),
        );
        f.target = Some(fp.name.clone());
        f.help = Some("delete it, read it, or mark it `visible`".to_string());
        report.findings.push(f);
    }
}

fn is_speculated(options: &SynthOptions, stage: usize, port: &str) -> bool {
    options
        .speculation
        .iter()
        .any(|s| s.stage == stage && s.port == port)
}

fn join_ticked(ports: &[String]) -> String {
    ports
        .iter()
        .map(|p| format!("`{p}`"))
        .collect::<Vec<_>>()
        .join(", ")
}
