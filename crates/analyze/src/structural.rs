//! Structural lints over the HDL netlist (`AP03xx`).
//!
//! The pass consumes the single [`NetAnalysis`] graph walk shared with
//! the cost reports (depth/fanout/liveness computed once) and adds:
//!
//! * combinational-cycle detection via an SCC pass over the fan-in
//!   graph ([`codes::COMBINATIONAL_CYCLE`]) — the builder API cannot
//!   construct cycles (nodes only reference earlier nets), so this
//!   guards externally-read and hand-mutated IR;
//! * operator width/index checking ([`codes::WIDTH_MISMATCH`]);
//! * dead-net counting ([`codes::DEAD_NET`]);
//! * never-read / never-written register detection
//!   ([`codes::UNREAD_REGISTER`], [`codes::UNWRITTEN_REGISTER`]).

use crate::{codes, Finding, LintConfig, LintReport};
use autopipe_hdl::{BinaryOp, NetAnalysis, Netlist, Node};

/// Runs the pass, appending findings to `report`.
pub fn run(nl: &Netlist, config: &LintConfig, report: &mut LintReport) {
    report.findings.extend(lint_netlist(nl, config));
}

/// Like [`run`], but reuses a prebuilt [`NetAnalysis`] so a driver that
/// already walked the graph (the lint driver shares one walk with the
/// cost report and `sta`) never walks it twice.
pub fn run_with(
    nl: &Netlist,
    analysis: &NetAnalysis,
    config: &LintConfig,
    report: &mut LintReport,
) {
    report
        .findings
        .extend(lint_netlist_inner(nl, Some(analysis), config));
}

/// Structural lints as a standalone pass (also usable on netlists that
/// did not come out of the synthesizer, e.g. read from Verilog).
pub fn lint_netlist(nl: &Netlist, config: &LintConfig) -> Vec<Finding> {
    lint_netlist_inner(nl, None, config)
}

fn lint_netlist_inner(
    nl: &Netlist,
    prebuilt: Option<&NetAnalysis>,
    config: &LintConfig,
) -> Vec<Finding> {
    let mut out = Vec::new();

    // AP0305 first: NetAnalysis insists on validated netlists, so a
    // netlist with unwritten registers gets only the lints that do not
    // need the walk.
    let mut unwritten = false;
    for r in nl.registers() {
        if r.next.is_none() {
            unwritten = true;
            let mut f = config.finding(
                codes::UNWRITTEN_REGISTER,
                format!("register `{}` has no next-value connection", r.name),
            );
            f.target = Some(r.name.clone());
            f.help = Some("connect its next value or delete it".to_string());
            out.push(f);
        }
    }

    // AP0301: SCC over the combinational fan-in graph.
    let n = nl.node_count();
    if let Some(cycle) = find_cycle(n, |i| {
        net_ids(nl, i).into_iter().map(|net| net.index()).collect()
    }) {
        let mut f = config.finding(
            codes::COMBINATIONAL_CYCLE,
            format!(
                "combinational cycle through {} net(s) (e.g. net {})",
                cycle.len(),
                cycle[0]
            ),
        );
        f.help = Some("break the loop with a register".to_string());
        out.push(f);
        return out; // liveness/arrival are meaningless on cyclic graphs
    }

    // AP0302: per-node width and index consistency.
    for net in nl.nets() {
        if let Some(msg) = width_error(nl, net) {
            out.push(config.finding(codes::WIDTH_MISMATCH, msg));
        }
    }
    if out.iter().any(|f| f.code.code == codes::WIDTH_MISMATCH) || unwritten {
        return out;
    }

    // One graph walk for everything below. A prebuilt analysis implies
    // the netlist already passed validation, so reuse is safe here.
    let analysis_owned;
    let analysis = match prebuilt {
        Some(a) => a,
        None => {
            analysis_owned = NetAnalysis::of(nl);
            &analysis_owned
        }
    };

    // AP0303: dead combinational logic. Inputs, constants and register
    // outputs are interface/state, not "logic"; everything else that
    // cannot reach a register, memory or named output is dead.
    let dead: Vec<u32> = nl
        .nets()
        .filter(|&net| {
            !analysis.is_live(net)
                && !matches!(
                    nl.node(net),
                    Node::Input { .. } | Node::Const { .. } | Node::RegOut(_)
                )
        })
        .map(|net| net.index() as u32)
        .collect();
    if !dead.is_empty() {
        let mut f = config.finding(
            codes::DEAD_NET,
            format!(
                "{} combinational net(s) unreachable from any register, memory or named \
                 output (first: net {})",
                dead.len(),
                dead[0]
            ),
        );
        f.help = Some("run the optimizer or remove the logic".to_string());
        out.push(f);
    }

    // AP0304: registers whose stored value nothing consumes. A register
    // may legitimately lack a RegOut node (write-only sinks have no
    // readers by construction), so only flag outputs that exist and
    // have zero fan-out.
    for (i, r) in nl.registers().iter().enumerate() {
        let reg_out = nl
            .nets()
            .find(|&net| matches!(nl.node(net), Node::RegOut(id) if id.index() == i));
        if let Some(out_net) = reg_out {
            if analysis.fanout(out_net) == 0 {
                let mut f = config.finding(
                    codes::UNREAD_REGISTER,
                    format!("register `{}` is never read", r.name),
                );
                f.target = Some(r.name.clone());
                f.help = Some("delete it or consume its output".to_string());
                out.push(f);
            }
        }
    }
    out
}

fn net_ids(nl: &Netlist, i: usize) -> Vec<autopipe_hdl::NetId> {
    let net = nl.nets().nth(i).expect("index in range");
    nl.fanin(net)
}

/// Width/index consistency of one node; `None` when consistent.
fn width_error(nl: &Netlist, net: autopipe_hdl::NetId) -> Option<String> {
    let w = |n| nl.width(n);
    let out = w(net);
    match *nl.node(net) {
        Node::Binary { op, a, b } => {
            use BinaryOp::*;
            match op {
                And | Or | Xor | Add | Sub | Mul => {
                    if w(a) != w(b) || out != w(a) {
                        return Some(format!(
                            "net {}: {op:?} operands are {}/{} bits, result {out}",
                            net.index(),
                            w(a),
                            w(b)
                        ));
                    }
                }
                Eq | Ne | Ult | Ule | Slt | Sle => {
                    if w(a) != w(b) || out != 1 {
                        return Some(format!(
                            "net {}: {op:?} compares {}/{} bits into {out}",
                            net.index(),
                            w(a),
                            w(b)
                        ));
                    }
                }
                // Shift amounts may have their own width.
                _ => {
                    if out != w(a) {
                        return Some(format!(
                            "net {}: {op:?} result is {out} bits, operand {}",
                            net.index(),
                            w(a)
                        ));
                    }
                }
            }
        }
        Node::Mux {
            sel,
            then_net,
            else_net,
        } if (w(sel) != 1 || w(then_net) != w(else_net) || out != w(then_net)) => {
            return Some(format!(
                "net {}: mux select is {} bit(s), arms {}/{} bits, result {out}",
                net.index(),
                w(sel),
                w(then_net),
                w(else_net)
            ));
        }
        Node::Slice { a, hi, lo } if (lo > hi || hi >= w(a) || out != hi - lo + 1) => {
            return Some(format!(
                "net {}: slice [{hi}:{lo}] of a {}-bit net produces {out} bits",
                net.index(),
                w(a)
            ));
        }
        Node::Concat { hi, lo } if out != w(hi) + w(lo) => {
            return Some(format!(
                "net {}: concat of {}+{} bits produces {out}",
                net.index(),
                w(hi),
                w(lo)
            ));
        }
        _ => {}
    }
    None
}

/// Iterative Tarjan SCC over an adjacency function; returns one cycle
/// (an SCC with more than one node, or a self-loop) if any exists.
///
/// Generic over the adjacency so the algorithm is testable on graphs
/// the netlist builder cannot express.
pub fn find_cycle(n: usize, adj: impl Fn(usize) -> Vec<usize>) -> Option<Vec<usize>> {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        // Explicit DFS stack: (node, neighbors, next neighbor position).
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = vec![(root, adj(root), 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref neighbors, ref mut pos)) = dfs.last_mut() {
            if *pos < neighbors.len() {
                let u = neighbors[*pos];
                *pos += 1;
                if u == v {
                    return Some(vec![v]); // self-loop
                }
                if index[u] == UNSEEN {
                    index[u] = next_index;
                    low[u] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u] = true;
                    dfs.push((u, adj(u), 0));
                } else if on_stack[u] {
                    low[v] = low[v].min(index[u]);
                }
            } else {
                dfs.pop();
                if let Some(&mut (parent, _, _)) = dfs.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let u = stack.pop().expect("tarjan stack invariant");
                        on_stack[u] = false;
                        scc.push(u);
                        if u == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        scc.sort_unstable();
                        return Some(scc);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_finds_cycles_and_accepts_dags() {
        // 0 -> 1 -> 2 -> 0 plus a pendant 3 -> 0.
        let cyclic = |i: usize| -> Vec<usize> {
            match i {
                0 => vec![1],
                1 => vec![2],
                2 => vec![0],
                3 => vec![0],
                _ => vec![],
            }
        };
        assert_eq!(find_cycle(4, cyclic), Some(vec![0, 1, 2]));

        let dag = |i: usize| -> Vec<usize> {
            match i {
                0 => vec![1, 2],
                1 => vec![3],
                2 => vec![3],
                _ => vec![],
            }
        };
        assert_eq!(find_cycle(4, dag), None);

        let self_loop = |i: usize| if i == 2 { vec![2] } else { vec![] };
        assert_eq!(find_cycle(3, self_loop), Some(vec![2]));
    }

    #[test]
    fn unwritten_register_is_denied() {
        let mut nl = Netlist::new("m");
        let _ = nl.register("dangling", 8, 0);
        let findings = lint_netlist(&nl, &LintConfig::new());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code.code, codes::UNWRITTEN_REGISTER);
    }

    #[test]
    fn clean_counter_has_no_findings() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        assert!(lint_netlist(&nl, &LintConfig::new()).is_empty());
    }

    #[test]
    fn dead_logic_and_unread_registers_flagged() {
        let mut nl = Netlist::new("d");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        // A register nothing reads, plus logic reaching nothing.
        let (r2, out2) = nl.register("ghost", 8, 0);
        nl.connect(r2, next);
        let _dead = nl.xor(out, one);
        let findings = lint_netlist(&nl, &LintConfig::new());
        let codes_seen: Vec<_> = findings.iter().map(|f| f.code.code).collect();
        assert!(codes_seen.contains(&codes::DEAD_NET), "{codes_seen:?}");
        assert!(
            codes_seen.contains(&codes::UNREAD_REGISTER),
            "{codes_seen:?}"
        );
        let _ = out2;
    }
}
