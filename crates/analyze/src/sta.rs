//! Static timing analysis (`autopipe sta`) with SAT-backed false-path
//! pruning and the `AP04xx` timing-lint family.
//!
//! The pass consumes the same shared [`NetAnalysis`] walk as the
//! structural lints and the cost reports, so lint, `report` and `sta`
//! agree on one cost model. On top of the load-aware arrival/required
//! times computed there it adds:
//!
//! * **exact top-K critical-path extraction** register-to-register
//!   (register/memory-write-port endpoints), via a best-first backward
//!   search whose bound `fixed + load + sta_arrival(fanin)` is the
//!   exact maximum — paths pop in true delay order;
//! * **per-stage and per-hazard-cone attribution**: each path step is
//!   tagged with the pipeline stages whose `stall/dhaz/ue` control
//!   cones it crosses (a mux counts when its *select* is control, which
//!   is how a forwarding bypass mux shows up on a data path);
//! * **false-path pruning**: the side-input sensitization condition of
//!   each path (mux selects on/off the taken arm, 1-bit and/or side
//!   inputs at their non-controlling values, the endpoint register's
//!   clock enable) is lowered onto the bit-blasted AIG and handed to
//!   the SAT stack over a free-state [`ClauseCache`]. `UNSAT` means no
//!   state whatsoever sensitizes the path — a sound over-approximation
//!   of "no *reachable* state does" — and the path is reported as
//!   pruned with that justification;
//! * **timing lints**: `AP0401` (forwarding select cascade beyond the
//!   budget), `AP0402` (zero-slack register dominated by hazard
//!   control), `AP0403` (pruned false path dominating the structural
//!   report), all flowing through the existing `--allow/--warn/--deny`
//!   gate.
//!
//! Everything here is a pure function of the design plus the options:
//! path order, verdicts (the solver is deterministic and each query
//! runs in a private solver) and report bytes are identical for every
//! `-j`.

use crate::{codes, Finding, LintConfig, LintReport};
use autopipe_hdl::aig::lower;
use autopipe_hdl::{AigLit, Lowered, NetAnalysis, NetId, Netlist, Node};
use autopipe_synth::{PipelinedMachine, StageCost};
use autopipe_trace::{a, Trace, Track};
use autopipe_verify::pool;
use autopipe_verify::{ClauseCache, SatResult, SolveBudget};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt::Write;

/// Ceiling on best-first heap pops per endpoint: a reconvergence bomb
/// degrades to "fewer than K paths for this endpoint", never a hang.
const MAX_POPS: usize = 100_000;

/// `AP0401` budget: the longest run of consecutive control-selected
/// muxes tolerated on the worst path before the forwarding cascade is
/// flagged. A balanced-tree forwarding network stays well under this;
/// a linear mux chain over a deep pipeline does not.
const CASCADE_BUDGET: usize = 8;

/// Conflict budget per sensitization query (deterministic, unlike a
/// wall-clock deadline): an interrupted query yields [`PathVerdict::Unknown`].
const DEFAULT_CONFLICTS: u64 = 200_000;

/// Paths examined per control endpoint in the false-path audit.
/// Priority reconvergence in the stall/enable logic lives a rank or
/// two below each endpoint's structural worst, so a shallow sweep
/// already surfaces the unsensitizable ones.
const AUDIT_DEPTH: usize = 3;

/// Options of one `sta` run.
#[derive(Debug, Clone)]
pub struct StaOptions {
    /// Number of critical paths to report (`--top`).
    pub top: usize,
    /// Worker threads for the SAT pruning phase (0 = auto).
    pub jobs: usize,
    /// Conflict budget per sensitization query.
    pub conflicts: u64,
    /// Paths examined per control endpoint in the false-path audit
    /// (0 disables the audit).
    pub audit: usize,
}

impl Default for StaOptions {
    fn default() -> StaOptions {
        StaOptions {
            top: 10,
            jobs: 1,
            conflicts: DEFAULT_CONFLICTS,
            audit: AUDIT_DEPTH,
        }
    }
}

/// SAT verdict on one path's sensitization condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathVerdict {
    /// Some input/state valuation exercises the path.
    Sensitizable,
    /// UNSAT: no valuation sensitizes the side inputs, so the path can
    /// never propagate a transition — a false path.
    FalsePruned,
    /// The path imposes no side-input constraints (nothing to refute).
    Unconstrained,
    /// The conflict budget expired before a verdict.
    Unknown,
}

impl PathVerdict {
    /// Stable serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            PathVerdict::Sensitizable => "sensitizable",
            PathVerdict::FalsePruned => "false-pruned",
            PathVerdict::Unconstrained => "unconstrained",
            PathVerdict::Unknown => "unknown",
        }
    }
}

/// One step of a critical path, in source-to-endpoint order.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Net index in the netlist.
    pub net: usize,
    /// Human description of the node (kind plus label, if any).
    pub desc: String,
    /// Logic levels through the node itself.
    pub levels: u32,
    /// Buffer-tree load levels this net's driver pays toward the next
    /// step (0 on the endpoint).
    pub load: u32,
    /// Pipeline stages whose hazard-control cones this step crosses.
    pub stages: Vec<usize>,
}

/// One extracted register-to-register critical path.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Endpoint name, e.g. `IR.2.next` (`(+n)` when nets are shared).
    pub endpoint: String,
    /// Endpoint net index.
    pub endpoint_net: usize,
    /// The register this endpoint is the `next` value of, if any.
    pub endpoint_reg: Option<String>,
    /// True when that register is itself hazard bookkeeping (its
    /// output feeds a `stall/dhaz/ue` cone, like the `full_k` bits) —
    /// `AP0402` skips those: their fan-in is control by construction.
    pub endpoint_is_control: bool,
    /// Total load-aware delay in levels (equals the endpoint's
    /// [`NetAnalysis::sta_arrival`] for the rank-1 path).
    pub delay: u32,
    /// Endpoint slack against the design period.
    pub slack: u32,
    /// Steps from source to endpoint.
    pub steps: Vec<PathStep>,
    /// Union of the per-step stage attributions.
    pub stages: Vec<usize>,
    /// Longest run of consecutive control-selected muxes (the
    /// forwarding-cascade length `AP0401` budgets).
    pub cascade: usize,
    /// Levels of [`CriticalPath::delay`] attributed to hazard-control
    /// steps.
    pub control_levels: u32,
    /// Number of side-input constraints in the sensitization condition.
    pub constraints: usize,
    /// SAT verdict on the sensitization condition.
    pub verdict: PathVerdict,
}

/// One pruned path from the control false-path audit: a
/// structurally-plausible path into a control endpoint whose
/// sensitization condition is UNSAT.
#[derive(Debug, Clone)]
pub struct AuditPath {
    /// Endpoint name, e.g. `full.3.next`.
    pub endpoint: String,
    /// Endpoint net index.
    pub endpoint_net: usize,
    /// 1-based rank within the endpoint (1 = structural worst).
    pub rank: usize,
    /// Load-aware delay of the pruned path.
    pub delay: u32,
    /// Number of side-input constraints in the UNSAT condition.
    pub constraints: usize,
    /// The endpoint's worst *sensitizable* delay among audited paths —
    /// its true arrival as far as the audit can see.
    pub true_delay: Option<u32>,
}

/// The result of one `sta` run.
#[derive(Debug, Clone)]
pub struct StaReport {
    /// Machine (netlist) name.
    pub machine: String,
    /// Load-aware clock period in levels.
    pub period: u32,
    /// Number of distinct timing endpoints.
    pub endpoints: usize,
    /// Ranked critical paths (rank 1 first).
    pub paths: Vec<CriticalPath>,
    /// Per-stage hazard-hardware attribution, shared with `report`.
    pub stage_costs: Vec<StageCost>,
    /// Paths examined per control endpoint (the audit depth).
    pub audit_depth: usize,
    /// Number of control endpoints swept by the audit.
    pub audited_endpoints: usize,
    /// Total paths the audit put to the solver.
    pub audited_paths: usize,
    /// Audited paths proven unsensitizable, in (endpoint, rank) order.
    pub audit_pruned: Vec<AuditPath>,
    /// Timing findings (`AP04xx`) under the lint gate.
    pub findings: LintReport,
    /// Total SAT conflicts across all sensitization queries. Not part
    /// of the byte-deterministic report surface: solver sharing makes
    /// it depend on `-j` (it feeds trace counters only).
    pub sat_conflicts: u64,
}

impl StaReport {
    /// Number of paths proven unsensitizable.
    pub fn pruned(&self) -> usize {
        self.paths
            .iter()
            .filter(|p| p.verdict == PathVerdict::FalsePruned)
            .count()
    }

    /// Worst (smallest) endpoint slack over the reported paths.
    pub fn worst_slack(&self) -> u32 {
        self.paths.iter().map(|p| p.slack).min().unwrap_or(0)
    }
}

/// A partial backward path ordered by its exact completion bound;
/// ties break toward the lexicographically smallest net sequence so
/// the enumeration order is a pure function of the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Partial {
    /// `fixed + load + sta_arrival` of the best completion.
    bound: u32,
    /// Delay of the fixed suffix (endpoint..head inclusive).
    fixed: u32,
    /// Nets from endpoint backward (head last).
    nets: Vec<u32>,
}

impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.nets.cmp(&self.nets))
    }
}

impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Up to `k` maximal-delay paths ending at `endpoint`, best first.
/// Exact: the heap bound uses [`NetAnalysis::sta_arrival`], which *is*
/// the true maximum over completions, so pops happen in delay order.
fn k_best_paths(
    nl: &Netlist,
    analysis: &NetAnalysis,
    ids: &[NetId],
    endpoint: NetId,
    k: usize,
) -> Vec<(u32, Vec<NetId>)> {
    let model = analysis.model();
    let mut heap = BinaryHeap::new();
    heap.push(Partial {
        bound: analysis.sta_arrival(endpoint),
        fixed: model.levels(nl, endpoint),
        nets: vec![endpoint.index() as u32],
    });
    let mut out: Vec<(u32, Vec<NetId>)> = Vec::new();
    let mut pops = 0usize;
    while let Some(p) = heap.pop() {
        pops += 1;
        if pops > MAX_POPS {
            break;
        }
        let head = ids[*p.nets.last().expect("partial paths are non-empty") as usize];
        let fanin = nl.fanin(head);
        if fanin.is_empty() {
            let path: Vec<NetId> = p.nets.iter().rev().map(|&i| ids[i as usize]).collect();
            if !out.iter().any(|(_, q)| *q == path) {
                out.push((p.fixed, path));
                if out.len() == k {
                    break;
                }
            }
            continue;
        }
        for f in fanin {
            let load = analysis.load_levels(f);
            let mut nets = p.nets.clone();
            nets.push(f.index() as u32);
            heap.push(Partial {
                bound: p.fixed + load + analysis.sta_arrival(f),
                fixed: p.fixed + load + model.levels(nl, f),
                nets,
            });
        }
    }
    out
}

/// The global top-`k` paths over all endpoints, ranked by delay
/// (descending), then endpoint name, then net sequence.
fn top_paths(
    nl: &Netlist,
    analysis: &NetAnalysis,
    ids: &[NetId],
    names: &HashMap<usize, Vec<String>>,
    k: usize,
) -> Vec<(u32, NetId, Vec<NetId>)> {
    let mut eps: Vec<NetId> = analysis.endpoints().to_vec();
    eps.sort_by_key(|e| e.index());
    eps.dedup();
    eps.sort_by(|x, y| {
        analysis
            .sta_arrival(*y)
            .cmp(&analysis.sta_arrival(*x))
            .then_with(|| x.index().cmp(&y.index()))
    });
    let mut all: Vec<(u32, NetId, Vec<NetId>)> = Vec::new();
    for e in eps {
        // An endpoint whose best path is strictly worse than the
        // current K-th best cannot contribute to the top K.
        if all.len() >= k {
            let mut delays: Vec<u32> = all.iter().map(|(d, _, _)| *d).collect();
            delays.sort_unstable_by(|x, y| y.cmp(x));
            if analysis.sta_arrival(e) < delays[k - 1] {
                break;
            }
        }
        for (delay, path) in k_best_paths(nl, analysis, ids, e, k) {
            all.push((delay, e, path));
        }
    }
    let name = |e: NetId| endpoint_name(names, e);
    all.sort_by(|x, y| {
        y.0.cmp(&x.0)
            .then_with(|| name(x.1).cmp(&name(y.1)))
            .then_with(|| x.2.cmp(&y.2))
    });
    all.truncate(k);
    all
}

/// Endpoint display names: register `next`/`en` nets and memory
/// write-port nets, in declaration order.
fn endpoint_names(nl: &Netlist) -> HashMap<usize, Vec<String>> {
    let mut names: HashMap<usize, Vec<String>> = HashMap::new();
    for r in nl.registers() {
        if let Some(n) = r.next {
            names
                .entry(n.index())
                .or_default()
                .push(format!("{}.next", r.name));
        }
        if let Some(e) = r.enable {
            names
                .entry(e.index())
                .or_default()
                .push(format!("{}.en", r.name));
        }
    }
    for m in nl.memories() {
        for (i, p) in m.write_ports.iter().enumerate() {
            for (net, suffix) in [(p.enable, "we"), (p.addr, "wa"), (p.data, "wd")] {
                names
                    .entry(net.index())
                    .or_default()
                    .push(format!("{}.wp{i}.{suffix}", m.name));
            }
        }
    }
    names
}

fn endpoint_name(names: &HashMap<usize, Vec<String>>, e: NetId) -> String {
    match names.get(&e.index()) {
        Some(v) if v.len() > 1 => format!("{}(+{})", v[0], v.len() - 1),
        Some(v) => v[0].clone(),
        None => format!("net{}", e.index()),
    }
}

/// Lexicographically-smallest label of each labeled net.
fn net_labels(nl: &Netlist) -> HashMap<usize, String> {
    let mut named = nl.named_nets();
    named.sort_by(|a, b| a.0.cmp(b.0));
    let mut labels: HashMap<usize, String> = HashMap::new();
    for (name, net) in named {
        if net.index() < nl.node_count() {
            labels
                .entry(net.index())
                .or_insert_with(|| name.to_string());
        }
    }
    labels
}

fn describe(nl: &Netlist, labels: &HashMap<usize, String>, net: NetId) -> String {
    let base = match nl.node(net) {
        Node::Input { name } => format!("input {name}"),
        Node::Const { value } => format!("const {value}"),
        Node::RegOut(r) => format!("reg {}", nl.register_info(*r).name),
        Node::MemRead { mem, .. } => format!("read {}", nl.memory_info(*mem).name),
        Node::Unary { op, .. } => format!("{op:?}").to_lowercase(),
        Node::Binary { op, .. } => format!("{op:?}").to_lowercase(),
        Node::Mux { .. } => "mux".to_string(),
        Node::Slice { hi, lo, .. } => format!("slice[{hi}:{lo}]"),
        Node::Concat { .. } => "concat".to_string(),
    };
    match labels.get(&net.index()) {
        Some(l) => format!("{base} `{l}`"),
        None => base,
    }
}

/// Per-stage hazard-control cone membership: the transitive fan-in of
/// `stall_k`/`dhaz_k`/`ue_k`, ending at registers and memory reads —
/// the same cone [`autopipe_hdl::cone_gates`] prices for [`StageCost`].
fn hazard_cones(pm: &PipelinedMachine) -> Vec<Vec<bool>> {
    let nl = &pm.netlist;
    let n = nl.node_count();
    (0..pm.n_stages())
        .map(|k| {
            let mut cone = vec![false; n];
            let mut stack: Vec<NetId> = [
                pm.control.stall.get(k),
                pm.control.dhaz.get(k),
                pm.control.ue.get(k),
            ]
            .into_iter()
            .flatten()
            .copied()
            .collect();
            while let Some(net) = stack.pop() {
                if cone[net.index()] {
                    continue;
                }
                cone[net.index()] = true;
                match nl.node(net) {
                    Node::RegOut(_) | Node::MemRead { .. } => {}
                    _ => stack.extend(nl.fanin(net)),
                }
            }
            cone
        })
        .collect()
}

/// Timing endpoints whose logic is hazard control: register clock
/// enables, memory write-port enables, nets inside a
/// `stall`/`dhaz`/`ue` cone, and `next` nets of control-bookkeeping
/// registers (ones whose output feeds a cone, like the `full_k`
/// bits). These are where priority reconvergence creates false paths,
/// so the audit sweeps exactly this set. Returned in net-index order.
fn control_endpoints(nl: &Netlist, cones: &[Vec<bool>], endpoints: &[NetId]) -> Vec<NetId> {
    let in_cone = |n: NetId| cones.iter().any(|c| c[n.index()]);
    let mut reg_out: Vec<Option<NetId>> = vec![None; nl.registers().len()];
    for net in nl.nets() {
        if let Node::RegOut(r) = nl.node(net) {
            reg_out[r.index()] = Some(net);
        }
    }
    let mut out: Vec<NetId> = endpoints
        .iter()
        .copied()
        .filter(|&e| {
            in_cone(e)
                || nl.registers().iter().enumerate().any(|(i, r)| {
                    r.enable == Some(e) || (r.next == Some(e) && reg_out[i].is_some_and(in_cone))
                })
                || nl
                    .memories()
                    .iter()
                    .any(|m| m.write_ports.iter().any(|p| p.enable == e))
        })
        .collect();
    out.sort_unstable_by_key(|n| n.index());
    out.dedup();
    out
}

/// Stages whose control cone a step crosses. A mux qualifies through
/// its select too: a bypass mux sits on the data path but is *steered*
/// by hazard logic, which is exactly the attribution `sta` is after.
fn step_stages(nl: &Netlist, cones: &[Vec<bool>], net: NetId) -> Vec<usize> {
    let sel = match nl.node(net) {
        Node::Mux { sel, .. } => Some(*sel),
        _ => None,
    };
    (0..cones.len())
        .filter(|&k| cones[k][net.index()] || sel.is_some_and(|s| cones[k][s.index()]))
        .collect()
}

/// Assembles one [`CriticalPath`] (verdict filled in later).
#[allow(clippy::too_many_arguments)]
fn build_path(
    nl: &Netlist,
    cones: &[Vec<bool>],
    labels: &HashMap<usize, String>,
    names: &HashMap<usize, Vec<String>>,
    analysis: &NetAnalysis,
    delay: u32,
    endpoint: NetId,
    nets: &[NetId],
) -> CriticalPath {
    let model = analysis.model();
    let last = nets.len() - 1;
    let steps: Vec<PathStep> = nets
        .iter()
        .enumerate()
        .map(|(i, &net)| PathStep {
            net: net.index(),
            desc: describe(nl, labels, net),
            levels: model.levels(nl, net),
            load: if i < last {
                analysis.load_levels(net)
            } else {
                0
            },
            stages: step_stages(nl, cones, net),
        })
        .collect();
    let mut stages: Vec<usize> = steps.iter().flat_map(|s| s.stages.clone()).collect();
    stages.sort_unstable();
    stages.dedup();
    let mut cascade = 0usize;
    let mut run = 0usize;
    for (&net, step) in nets.iter().zip(&steps) {
        let control_mux = matches!(nl.node(net), Node::Mux { .. }) && !step.stages.is_empty();
        run = if control_mux { run + 1 } else { 0 };
        cascade = cascade.max(run);
    }
    let control_levels = steps
        .iter()
        .filter(|s| !s.stages.is_empty())
        .map(|s| s.levels + s.load)
        .sum();
    let reg_index = nl.registers().iter().position(|r| r.next == Some(endpoint));
    let endpoint_reg = reg_index.map(|i| nl.registers()[i].name.clone());
    let endpoint_is_control = reg_index.is_some_and(|i| {
        nl.nets().any(|net| {
            matches!(nl.node(net), Node::RegOut(r) if r.index() == i)
                && cones.iter().any(|c| c[net.index()])
        })
    });
    CriticalPath {
        endpoint: endpoint_name(names, endpoint),
        endpoint_net: endpoint.index(),
        endpoint_reg,
        endpoint_is_control,
        delay,
        slack: analysis.slack(endpoint),
        steps,
        stages,
        cascade,
        control_levels,
        constraints: 0,
        verdict: PathVerdict::Unconstrained,
    }
}

/// Builds the sensitization condition of one path on the lowered AIG:
/// the conjunction of every side-input constraint required for a
/// transition to propagate along the taken arms, plus the endpoint
/// register's clock enable (an unlatched path is unobservable). `None`
/// when the path imposes no constraints; the second element counts
/// them.
fn sensitization(
    low: &mut Lowered,
    nl: &Netlist,
    nets: &[NetId],
    endpoint: NetId,
) -> (Option<AigLit>, usize) {
    let mut lits: Vec<AigLit> = Vec::new();
    for w in nets.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        match *nl.node(cur) {
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => {
                if prev == sel {
                    // Via-select: the arms must differ in some bit for
                    // the select to matter.
                    let t: Vec<AigLit> = low.net_lits(then_net).to_vec();
                    let e: Vec<AigLit> = low.net_lits(else_net).to_vec();
                    let diff: Vec<AigLit> = t
                        .iter()
                        .zip(&e)
                        .map(|(&tb, &eb)| low.aig.mux(tb, eb.not(), eb))
                        .collect();
                    lits.push(low.aig.or_all(&diff));
                } else if prev == then_net && prev != else_net {
                    lits.push(low.net_lits(sel)[0]);
                } else if prev == else_net && prev != then_net {
                    lits.push(low.net_lits(sel)[0].not());
                }
            }
            Node::Binary {
                op: autopipe_hdl::BinaryOp::And,
                a,
                b,
            } if nl.width(cur) == 1 => {
                let side = if prev == a { b } else { a };
                if side != prev {
                    lits.push(low.net_lits(side)[0]);
                }
            }
            Node::Binary {
                op: autopipe_hdl::BinaryOp::Or,
                a,
                b,
            } if nl.width(cur) == 1 => {
                let side = if prev == a { b } else { a };
                if side != prev {
                    lits.push(low.net_lits(side)[0].not());
                }
            }
            _ => {}
        }
    }
    // The endpoint must actually latch: require some enabled register
    // to observe it. A register without an enable always latches.
    let enables: Vec<NetId> = nl
        .registers()
        .iter()
        .filter(|r| r.next == Some(endpoint))
        .map(|r| r.enable)
        .collect::<Option<Vec<NetId>>>()
        .unwrap_or_default();
    if !enables.is_empty() {
        let bits: Vec<AigLit> = enables.iter().map(|&e| low.net_lits(e)[0]).collect();
        lits.push(low.aig.or_all(&bits));
    }
    if lits.is_empty() {
        (None, 0)
    } else {
        let n = lits.len();
        (Some(low.aig.and_all(&lits)), n)
    }
}

/// Timing lints over the structurally-worst path — the SAT-free subset
/// (`AP0401`, `AP0402`) that runs inside every `lint_machine` pass.
pub fn lint_timing(
    pm: &PipelinedMachine,
    analysis: &NetAnalysis,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let nl = &pm.netlist;
    let ids: Vec<NetId> = nl.nets().collect();
    let names = endpoint_names(nl);
    let labels = net_labels(nl);
    let cones = hazard_cones(pm);
    let Some((delay, endpoint, nets)) = top_paths(nl, analysis, &ids, &names, 1).into_iter().next()
    else {
        return;
    };
    let worst = build_path(
        nl, &cones, &labels, &names, analysis, delay, endpoint, &nets,
    );
    report.findings.extend(timing_findings(&worst, config));
}

/// `AP0401`/`AP0402` over an already-extracted worst path.
fn timing_findings(worst: &CriticalPath, config: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if worst.cascade >= CASCADE_BUDGET {
        let mut f = config.finding(
            codes::FORWARDING_CASCADE_CRITICAL_PATH,
            format!(
                "the critical path ({} level(s) into `{}`) runs through {} chained \
                 control-selected muxes (budget {CASCADE_BUDGET})",
                worst.delay, worst.endpoint, worst.cascade
            ),
        );
        f.stage = worst.stages.first().copied();
        f.help = Some("synthesize the forwarding network as a balanced tree".to_string());
        out.push(f);
    }
    if let Some(reg) = &worst.endpoint_reg {
        if !worst.endpoint_is_control
            && worst.slack == 0
            && u64::from(worst.control_levels) * 2 > u64::from(worst.delay)
        {
            let mut f = config.finding(
                codes::ZERO_SLACK_REGISTER,
                format!(
                    "register `{reg}` has zero slack and {} of its {} critical levels \
                     are hazard-control logic",
                    worst.control_levels, worst.delay
                ),
            );
            f.stage = worst.stages.first().copied();
            f.target = Some(reg.clone());
            f.help = Some("retime or simplify the stall/forwarding condition".to_string());
            out.push(f);
        }
    }
    out
}

/// Runs the full analysis: path extraction, SAT-backed false-path
/// pruning of the ranked paths plus the control false-path audit over
/// `opts.jobs` workers, and the `AP04xx` findings. The report is
/// byte-deterministic for every `-j`: the pool returns results in
/// task order and every verdict is a semantic Sat/Unsat answer, so
/// worker sharding cannot change it (only the conflict *counts* vary,
/// and those feed trace counters, not the report).
pub fn analyze(
    pm: &PipelinedMachine,
    analysis: &NetAnalysis,
    opts: &StaOptions,
    config: &LintConfig,
    trace: &Trace,
) -> StaReport {
    let nl = &pm.netlist;
    let ids: Vec<NetId> = nl.nets().collect();
    let names = endpoint_names(nl);
    let labels = net_labels(nl);
    let cones = hazard_cones(pm);
    let ranked = {
        let mut span = trace.span(Track::RUN, "phase", "sta:paths");
        let ranked = top_paths(nl, analysis, &ids, &names, opts.top.max(1));
        span.args(vec![
            a("endpoints", analysis.endpoints().len()),
            a("paths", ranked.len()),
        ]);
        ranked
    };
    let mut paths: Vec<CriticalPath> = ranked
        .iter()
        .map(|(delay, endpoint, nets)| {
            build_path(
                nl, &cones, &labels, &names, analysis, *delay, *endpoint, nets,
            )
        })
        .collect();

    // The control false-path audit: the worst few paths into every
    // control endpoint, where priority reconvergence in the
    // stall/enable logic hides unsensitizable paths a rank or two
    // below the structural worst.
    let audit_targets = if opts.audit > 0 {
        control_endpoints(nl, &cones, analysis.endpoints())
    } else {
        Vec::new()
    };
    let mut audit_items: Vec<(NetId, usize, u32, Vec<NetId>)> = Vec::new();
    for &e in &audit_targets {
        for (rank, (delay, nets)) in k_best_paths(nl, analysis, &ids, e, opts.audit)
            .into_iter()
            .enumerate()
        {
            audit_items.push((e, rank + 1, delay, nets));
        }
    }

    // Sensitization conditions for the ranked paths and the audit,
    // then one shared free-state clause cache. Queries are sharded
    // into one contiguous chunk per worker: each worker ingests the
    // AIG once and solves its chunk on that solver incrementally.
    // Verdicts stay `-j`-independent — Sat/Unsat are semantic — but
    // conflict counts do not, so they feed trace counters only.
    let sat_conflicts: u64;
    let mut audit_constraints: Vec<usize> = Vec::new();
    let verdicts: Vec<PathVerdict>;
    {
        let mut span = trace.span(Track::RUN, "phase", "sta:sat");
        let mut low = lower(nl).expect("synthesized netlists lower to AIG");
        let mut conds: Vec<Option<AigLit>> = ranked
            .iter()
            .zip(&mut paths)
            .map(|((_, endpoint, nets), path)| {
                let (cond, n) = sensitization(&mut low, nl, nets, *endpoint);
                path.constraints = n;
                cond
            })
            .collect();
        for (e, _, _, nets) in &audit_items {
            let (cond, n) = sensitization(&mut low, nl, nets, *e);
            audit_constraints.push(n);
            conds.push(cond);
        }
        let cache = ClauseCache::new(&low.aig, true);
        let budget = SolveBudget::unlimited().with_conflicts(opts.conflicts);
        let workers = pool::resolve_jobs(opts.jobs).max(1);
        let chunk_len = conds.len().div_ceil(workers).max(1);
        let chunks: Vec<Vec<Option<AigLit>>> = conds.chunks(chunk_len).map(<[_]>::to_vec).collect();
        let results: Vec<(Vec<PathVerdict>, u64)> =
            pool::map_tasks(opts.jobs, chunks, |_, chunk| {
                let mut u = cache.unroller();
                let vs: Vec<PathVerdict> = chunk
                    .into_iter()
                    .map(|cond| match cond {
                        None => PathVerdict::Unconstrained,
                        Some(c) => match u.try_lit(0, c, &budget) {
                            None => PathVerdict::Unknown,
                            Some(p) => match u.solver.solve_bounded(&[p], &budget) {
                                SatResult::Sat => PathVerdict::Sensitizable,
                                SatResult::Unsat => PathVerdict::FalsePruned,
                                SatResult::Interrupted => PathVerdict::Unknown,
                            },
                        },
                    })
                    .collect();
                (vs, u.work().conflicts)
            });
        verdicts = results
            .iter()
            .flat_map(|(vs, _)| vs.iter().copied())
            .collect();
        sat_conflicts = results.iter().map(|(_, c)| c).sum();
        for (path, verdict) in paths.iter_mut().zip(&verdicts) {
            path.verdict = *verdict;
        }
        span.args(vec![
            a(
                "pruned",
                paths
                    .iter()
                    .filter(|p| p.verdict == PathVerdict::FalsePruned)
                    .count(),
            ),
            a("audited", audit_items.len()),
            a(
                "audit_pruned",
                verdicts[paths.len()..]
                    .iter()
                    .filter(|v| **v == PathVerdict::FalsePruned)
                    .count(),
            ),
            a("conflicts", sat_conflicts),
        ]);
    }

    // Fold the audit verdicts into pruned entries. `Unknown` counts
    // toward an endpoint's true delay: an undecided path must not
    // *shrink* the reported arrival.
    let audit_verdicts = &verdicts[paths.len()..];
    let mut true_delays: HashMap<usize, u32> = HashMap::new();
    for ((e, _, delay, _), v) in audit_items.iter().zip(audit_verdicts) {
        if *v != PathVerdict::FalsePruned {
            let d = true_delays.entry(e.index()).or_insert(0);
            *d = (*d).max(*delay);
        }
    }
    let audit_pruned: Vec<AuditPath> = audit_items
        .iter()
        .zip(audit_verdicts)
        .zip(&audit_constraints)
        .filter(|((_, v), _)| **v == PathVerdict::FalsePruned)
        .map(|(((e, rank, delay, _), _), &constraints)| AuditPath {
            endpoint: endpoint_name(&names, *e),
            endpoint_net: e.index(),
            rank: *rank,
            delay: *delay,
            constraints,
            true_delay: true_delays.get(&e.index()).copied(),
        })
        .collect();
    if trace.is_enabled() {
        for (rank, path) in paths.iter().enumerate() {
            trace.counter(
                Track::sta(rank),
                "sta",
                &format!("path {}", rank + 1),
                vec![
                    a("delay", path.delay),
                    a("slack", path.slack),
                    a("constraints", path.constraints),
                    a(
                        "pruned",
                        u64::from(path.verdict == PathVerdict::FalsePruned),
                    ),
                ],
            );
        }
    }

    // Findings: the SAT-free pair over the worst path, plus AP0403 when
    // the structural rank-1 path was just proven false.
    let mut findings = LintReport::default();
    if let Some(worst) = paths.first() {
        findings.findings.extend(timing_findings(worst, config));
        if worst.verdict == PathVerdict::FalsePruned {
            let runner_up = paths
                .iter()
                .find(|p| p.verdict != PathVerdict::FalsePruned)
                .map(|p| p.delay);
            let mut f = config.finding(
                codes::FALSE_CRITICAL_PATH,
                match runner_up {
                    Some(d) => format!(
                        "the structural critical path ({} level(s) into `{}`) is \
                         unsensitizable; the worst true path is {d} level(s)",
                        worst.delay, worst.endpoint
                    ),
                    None => format!(
                        "the structural critical path ({} level(s) into `{}`) is \
                         unsensitizable",
                        worst.delay, worst.endpoint
                    ),
                },
            );
            f.stage = worst.stages.first().copied();
            f.help =
                Some("the structural report overstates the delay; rank paths by `sta`".to_string());
            findings.findings.push(f);
        }
    }
    findings.sort();

    StaReport {
        machine: nl.name.clone(),
        period: analysis.sta_period(),
        endpoints: {
            let mut e: Vec<usize> = analysis.endpoints().iter().map(|n| n.index()).collect();
            e.sort_unstable();
            e.dedup();
            e.len()
        },
        paths,
        stage_costs: pm.stage_costs_with(analysis),
        audit_depth: opts.audit,
        audited_endpoints: audit_targets.len(),
        audited_paths: audit_items.len(),
        audit_pruned,
        findings,
        sat_conflicts,
    }
}

/// Renders the human table (`--format human`). Deterministic: no
/// timestamps, no wall-clock, no absolute paths.
pub fn to_human(report: &StaReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "static timing report for `{}`", report.machine);
    let _ = writeln!(
        out,
        "  delay model: unit levels + ceil(log2 fanout) buffer-tree load"
    );
    let _ = writeln!(
        out,
        "  period: {} level(s) over {} endpoint(s); worst slack: {}",
        report.period,
        report.endpoints,
        report.worst_slack()
    );
    if !report.stage_costs.is_empty() {
        let _ = writeln!(out, "  per-stage hazard-control attribution:");
        for c in &report.stage_costs {
            let _ = writeln!(
                out,
                "    stage {}: {} forward, {} interlock, {} hit signal(s), {} control \
                 gate(s), stall@{} dhaz@{} ue@{}",
                c.stage,
                c.forward_paths,
                c.interlock_paths,
                c.hit_signals,
                c.control_gates,
                c.stall_levels,
                c.dhaz_levels,
                c.ue_levels
            );
        }
    }
    let _ = writeln!(out, "  critical paths (top {}):", report.paths.len());
    for (rank, p) in report.paths.iter().enumerate() {
        let stages: Vec<String> = p.stages.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(
            out,
            "  #{:<3} {} level(s)  slack {}  -> {}  stages {{{}}}  [{}]",
            rank + 1,
            p.delay,
            p.slack,
            p.endpoint,
            stages.join(","),
            p.verdict.as_str()
        );
        let chain: Vec<String> = p
            .steps
            .iter()
            .map(|s| {
                let mut piece = format!("{} +{}", s.desc, s.levels + s.load);
                if !s.stages.is_empty() {
                    piece.push('*');
                }
                piece
            })
            .collect();
        let _ = writeln!(out, "       {}", chain.join(" -> "));
    }
    let _ = writeln!(
        out,
        "  false paths: {} of {} pruned (UNSAT: no state sensitizes the side inputs)",
        report.pruned(),
        report.paths.len()
    );
    if report.audited_paths > 0 {
        let _ = writeln!(
            out,
            "  control false-path audit (top {} per endpoint): {} of {} path(s) over {} \
             control endpoint(s) pruned",
            report.audit_depth,
            report.audit_pruned.len(),
            report.audited_paths,
            report.audited_endpoints
        );
        for p in &report.audit_pruned {
            let true_delay = match p.true_delay {
                Some(d) => format!("true arrival {d}"),
                None => "no sensitizable path audited".to_string(),
            };
            let _ = writeln!(
                out,
                "    {} #{}: {} level(s), {} constraint(s) -> unsensitizable ({})",
                p.endpoint, p.rank, p.delay, p.constraints, true_delay
            );
        }
    }
    for f in &report.findings.findings {
        let _ = writeln!(out, "  {} ({}): {}", f.code.code, f.level, f.message);
    }
    let _ = writeln!(
        out,
        "sta: {} path(s), {} pruned ({} in audit), {} finding(s)",
        report.paths.len(),
        report.pruned(),
        report.audit_pruned.len(),
        report.findings.findings.len()
    );
    out
}

/// Renders the stable JSON report (`--format json`), schema
/// `autopipe-sta-1`; see `docs/TIMING.md` for the field reference.
pub fn to_json(report: &StaReport, file: &str) -> String {
    let esc = crate::output::json_escape;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"autopipe-sta\",");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"file\": \"{}\",", esc(file));
    let _ = writeln!(out, "  \"machine\": \"{}\",", esc(&report.machine));
    let _ = writeln!(out, "  \"period\": {},", report.period);
    let _ = writeln!(out, "  \"endpoints\": {},", report.endpoints);
    let _ = writeln!(out, "  \"worst_slack\": {},", report.worst_slack());
    let _ = writeln!(out, "  \"pruned\": {},", report.pruned());
    out.push_str("  \"stages\": [");
    for (i, c) in report.stage_costs.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"stage\": {}, \"forward_paths\": {}, \"interlock_paths\": {}, \
             \"hit_signals\": {}, \"control_gates\": {}, \"stall_levels\": {}, \
             \"dhaz_levels\": {}, \"ue_levels\": {}}}",
            c.stage,
            c.forward_paths,
            c.interlock_paths,
            c.hit_signals,
            c.control_gates,
            c.stall_levels,
            c.dhaz_levels,
            c.ue_levels
        );
    }
    out.push_str(if report.stage_costs.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"paths\": [");
    for (i, p) in report.paths.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let stages: Vec<String> = p.stages.iter().map(|s| s.to_string()).collect();
        let _ = write!(
            out,
            "    {{\"rank\": {}, \"delay\": {}, \"slack\": {}, \"endpoint\": \"{}\", \
             \"stages\": [{}], \"cascade\": {}, \"control_levels\": {}, \
             \"constraints\": {}, \"verdict\": \"{}\", \"steps\": [",
            i + 1,
            p.delay,
            p.slack,
            esc(&p.endpoint),
            stages.join(", "),
            p.cascade,
            p.control_levels,
            p.constraints,
            p.verdict.as_str()
        );
        for (j, s) in p.steps.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"net\": {}, \"desc\": \"{}\", \"levels\": {}, \"load\": {}}}",
                s.net,
                esc(&s.desc),
                s.levels,
                s.load
            );
        }
        out.push_str("]}");
    }
    out.push_str(if report.paths.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    let _ = write!(
        out,
        "  \"audit\": {{\"depth\": {}, \"endpoints\": {}, \"paths\": {}, \"pruned\": [",
        report.audit_depth, report.audited_endpoints, report.audited_paths
    );
    for (i, p) in report.audit_pruned.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"endpoint\": \"{}\", \"net\": {}, \"rank\": {}, \"delay\": {}, \
             \"constraints\": {}",
            esc(&p.endpoint),
            p.endpoint_net,
            p.rank,
            p.delay,
            p.constraints
        );
        if let Some(d) = p.true_delay {
            let _ = write!(out, ", \"true_delay\": {d}");
        }
        out.push('}');
    }
    out.push_str(if report.audit_pruned.is_empty() {
        "]},\n"
    } else {
        "\n  ]},\n"
    });
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"code\": \"{}\", \"name\": \"{}\", \"level\": \"{}\", \
             \"message\": \"{}\"}}",
            f.code.code,
            f.code.name,
            f.level,
            esc(&f.message)
        );
    }
    out.push_str(if report.findings.findings.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Netlist;

    /// `next = (a & s) & (b & !s)`: the path through `a` needs both
    /// side inputs high, which forces `s & !s` — UNSAT, a false path.
    fn conflicted() -> Netlist {
        let mut nl = Netlist::new("f");
        let a_in = nl.input("a", 1);
        let b_in = nl.input("b", 1);
        let s = nl.input("s", 1);
        let ns = nl.not(s);
        let t1 = nl.and(a_in, s);
        let t2 = nl.and(b_in, ns);
        let t3 = nl.and(t1, t2);
        let (r, _out) = nl.register("r", 1, 0);
        nl.connect(r, t3);
        nl
    }

    #[test]
    fn k_best_paths_pop_in_delay_order() {
        let mut nl = Netlist::new("d");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let slow = nl.add(x, y); // multi-level
        let fast = nl.xor(x, y); // one level
        let merged = nl.or(slow, fast);
        let (r, _out) = nl.register("r", 8, 0);
        nl.connect(r, merged);
        let analysis = NetAnalysis::of(&nl);
        let ids: Vec<NetId> = nl.nets().collect();
        let e = nl.registers()[0].next.unwrap();
        let paths = k_best_paths(&nl, &analysis, &ids, e, 4);
        assert!(paths.len() >= 2, "{}", paths.len());
        for w in paths.windows(2) {
            assert!(w[0].0 >= w[1].0, "{} < {}", w[0].0, w[1].0);
        }
        assert_eq!(paths[0].0, analysis.sta_arrival(e));
    }

    #[test]
    fn conflicting_side_inputs_are_pruned() {
        let nl = conflicted();
        let analysis = NetAnalysis::of(&nl);
        let ids: Vec<NetId> = nl.nets().collect();
        let names = endpoint_names(&nl);
        let ranked = top_paths(&nl, &analysis, &ids, &names, 8);
        // The path from `a` needs `s` high (side input at `a & s`) and
        // `b & !s` high (side input at the final and) — contradictory.
        let a_net = nl.find("a").unwrap();
        let mut low = lower(&nl).expect("lowers");
        let (_, endpoint, nets) = ranked
            .iter()
            .find(|(_, _, nets)| nets[0] == a_net)
            .expect("the path from `a` ranks in the top 8");
        let (cond, n) = sensitization(&mut low, &nl, nets, *endpoint);
        assert!(n >= 2, "{n}");
        let cache = ClauseCache::new(&low.aig, true);
        let mut u = cache.unroller();
        let budget = SolveBudget::unlimited();
        let p = u.try_lit(0, cond.unwrap(), &budget).unwrap();
        assert_eq!(u.solver.solve_bounded(&[p], &budget), SatResult::Unsat);
    }

    /// Reconvergent select: `x = mux(s, a, slow)`, `y = mux(s, x, c)`.
    /// The long path `slow -> x -> y` needs `s = 0` at `x` (else arm)
    /// and `s = 1` at `y` (then arm) — the classic mux false path.
    #[test]
    fn reconvergent_mux_selects_are_pruned() {
        let mut nl = Netlist::new("m");
        let s = nl.input("s", 1);
        let a_in = nl.input("a", 8);
        let b_in = nl.input("b", 8);
        let c_in = nl.input("c", 8);
        let slow = nl.add(a_in, b_in);
        let slow = nl.add(slow, b_in);
        let x = nl.mux(s, a_in, slow);
        let y = nl.mux(s, x, c_in);
        let (r, _out) = nl.register("r", 8, 0);
        nl.connect(r, y);
        let analysis = NetAnalysis::of(&nl);
        let ids: Vec<NetId> = nl.nets().collect();
        let names = endpoint_names(&nl);
        let ranked = top_paths(&nl, &analysis, &ids, &names, 1);
        let (_, endpoint, nets) = &ranked[0];
        assert!(nets.contains(&x), "worst path goes through the inner mux");
        let mut low = lower(&nl).expect("lowers");
        let (cond, n) = sensitization(&mut low, &nl, nets, *endpoint);
        assert!(n >= 2, "{n}");
        let cache = ClauseCache::new(&low.aig, true);
        let mut u = cache.unroller();
        let budget = SolveBudget::unlimited();
        let p = u.try_lit(0, cond.unwrap(), &budget).unwrap();
        assert_eq!(u.solver.solve_bounded(&[p], &budget), SatResult::Unsat);
    }

    #[test]
    fn unconstrained_paths_skip_the_solver() {
        let mut nl = Netlist::new("u");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let sum = nl.add(x, y);
        let (r, _out) = nl.register("r", 8, 0);
        nl.connect(r, sum);
        let analysis = NetAnalysis::of(&nl);
        let ids: Vec<NetId> = nl.nets().collect();
        let names = endpoint_names(&nl);
        let ranked = top_paths(&nl, &analysis, &ids, &names, 1);
        let mut low = lower(&nl).expect("lowers");
        let (_, endpoint, nets) = &ranked[0];
        let (cond, n) = sensitization(&mut low, &nl, nets, *endpoint);
        assert!(cond.is_none());
        assert_eq!(n, 0);
    }

    /// Pins the DLX acceptance property at the unit level: the
    /// second-longest structural path into the stage-3 `full` bit is
    /// provably unsensitizable — the interlock's priority
    /// reconvergence makes it a false path, and the solver proves it.
    #[test]
    fn dlx_interlock_has_a_provably_false_path() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/programs/dlx.psm"
        ))
        .expect("dlx example");
        let compiled = autopipe_front::compile(&src, "dlx.psm").expect("compiles");
        let plan = compiled.spec.plan().expect("plans");
        let (_, pm) =
            crate::lint_design(&plan, &compiled.options, &crate::LintConfig::new()).expect("synth");
        let pm = pm.expect("machine");
        let nl = &pm.netlist;
        let analysis = NetAnalysis::of(nl);
        let ids: Vec<NetId> = nl.nets().collect();
        let full3 = nl
            .registers()
            .iter()
            .find(|r| r.name == "full.3")
            .and_then(|r| r.next)
            .expect("full.3 exists");
        let mut low = lower(nl).expect("lowers");
        let paths = k_best_paths(nl, &analysis, &ids, full3, 2);
        assert_eq!(paths.len(), 2);
        assert!(paths[0].0 > paths[1].0, "distinct structural delays");
        let (cond, n) = sensitization(&mut low, nl, &paths[1].1, full3);
        assert!(n >= 2, "{n}");
        let cache = ClauseCache::new(&low.aig, true);
        let mut u = cache.unroller();
        let budget = SolveBudget::unlimited();
        let p = u.try_lit(0, cond.unwrap(), &budget).unwrap();
        assert_eq!(u.solver.solve_bounded(&[p], &budget), SatResult::Unsat);
    }

    #[test]
    fn endpoint_names_cover_registers_and_ports() {
        let nl = conflicted();
        let names = endpoint_names(&nl);
        let next = nl.registers()[0].next.unwrap();
        assert_eq!(names[&next.index()], vec!["r.next".to_string()]);
    }
}
