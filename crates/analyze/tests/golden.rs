//! Golden-file tests: one crafted `.psm` fixture per lint code, with
//! byte-exact expected human diagnostics (`.stderr`) and JSON
//! (`.json`).
//!
//! Regenerate the expected files after an intentional output change
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p autopipe-analyze --test golden
//! ```

use autopipe_analyze::{attach_spans, lint_design, output, LintConfig, LintReport};
use autopipe_front::compile;
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Compiles and lints `source`, returning the report with spans
/// attached. `file` is the name baked into the rendered output.
fn lint_source(source: &str, file: &str) -> LintReport {
    let compiled = compile(source, file).unwrap_or_else(|d| panic!("{file} compiles: {d}"));
    let plan = compiled
        .spec
        .plan()
        .unwrap_or_else(|e| panic!("{file} plans: {e}"));
    let (mut report, _) = lint_design(&plan, &compiled.options, &LintConfig::new())
        .unwrap_or_else(|e| panic!("{file}: unexpected synthesis error: {e}"));
    attach_spans(&mut report, &compiled.design);
    report
}

/// The human rendering the CLI produces: diagnostics, then the summary
/// line.
fn human(report: &LintReport, file: &str, source: &str) -> String {
    format!(
        "{}{}\n",
        report.to_diagnostics(file, source).render(),
        report.summary_line()
    )
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "{} is stale (run with UPDATE_GOLDEN=1 to regenerate)",
        path.display()
    );
}

#[test]
fn fixtures_match_goldens() {
    let dir = fixtures();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "psm").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures found in {}", dir.display());
    for name in names {
        let file = format!("{name}.psm");
        let source = std::fs::read_to_string(dir.join(&file)).expect("read fixture");
        let report = lint_source(&source, &file);
        check_golden(
            &dir.join(format!("{name}.stderr")),
            &human(&report, &file, &source),
        );
        check_golden(
            &dir.join(format!("{name}.json")),
            &output::to_json(&report, &file, &source),
        );
    }
}

/// The paper's acceptance case: deleting the forwarding-register
/// designation (`via C`) from the shipped DLX must produce exactly one
/// error — `AP0105`, pointing at the reading stage — instead of a
/// verification counterexample.
#[test]
fn dlx_without_via_c_is_a_single_ap0105() {
    let dlx = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs/dlx.psm");
    let source = std::fs::read_to_string(dlx).expect("read dlx.psm");
    assert!(
        source.contains("forward GPR via C;"),
        "dlx.psm changed shape"
    );
    let source = source.replace("forward GPR via C;", "forward GPR;");
    let file = "dlx_no_via.psm";
    let report = lint_source(&source, file);

    assert_eq!(
        report.errors(),
        1,
        "exactly one error:\n{}",
        human(&report, file, &source)
    );
    let f = &report.findings[0];
    assert_eq!(f.code.code, "AP0105");
    assert_eq!(f.stage, Some(1), "span points at the reading stage");
    let dir = fixtures();
    check_golden(
        &dir.join("dlx_no_via.stderr"),
        &human(&report, file, &source),
    );
    check_golden(
        &dir.join("dlx_no_via.json"),
        &output::to_json(&report, file, &source),
    );
}

/// The shipped examples are lint-clean: zero findings, every read
/// classified.
#[test]
fn shipped_examples_are_clean() {
    for name in ["toy.psm", "dlx.psm"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/programs")
            .join(name);
        let source = std::fs::read_to_string(path).expect("read example");
        let report = lint_source(&source, name);
        assert!(
            report.findings.is_empty(),
            "{name}: {}",
            human(&report, name, &source)
        );
        assert!(!report.reads.is_empty(), "{name}: reads analyzed");
    }
}

/// `AP0107` cannot be written in `.psm` (the front end rejects unknown
/// designation targets first), but programmatic `SynthOptions` can
/// still name a target that does not exist.
#[test]
fn unknown_designation_target_from_programmatic_options() {
    let source = std::fs::read_to_string(fixtures().join("clean.psm")).expect("read clean.psm");
    let compiled = compile(&source, "clean.psm").unwrap_or_else(|d| panic!("{d}"));
    let plan = compiled.spec.plan().expect("plans");
    let options = compiled
        .options
        .clone()
        .with_forwarding(autopipe_synth::ForwardingSpec::interlock("BOGUS"));
    let report = autopipe_analyze::lint_spec(&plan, &options, &LintConfig::new());
    let codes: Vec<&str> = report.findings.iter().map(|f| f.code.code).collect();
    assert!(codes.contains(&"AP0107"), "{codes:?}");
    assert!(report.blocks_synthesis());
}
