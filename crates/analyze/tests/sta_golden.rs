//! Golden-file tests for the `autopipe sta` report surface: byte-exact
//! human, JSON and SARIF fixtures for the shipped examples.
//!
//! The toy goldens (and the `-j` invariance check) run in every build.
//! The DLX goldens are `#[ignore]`d: the 68-level sensitization
//! queries take minutes under a debug-profile solver, so CI runs them
//! release-only with `--ignored` in the sta-smoke job.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release -p autopipe-analyze \
//!     --test sta_golden -- --include-ignored
//! ```

use autopipe_analyze::sta::{self, StaOptions};
use autopipe_analyze::{lint_design, output, LintConfig};
use autopipe_front::compile;
use autopipe_hdl::NetAnalysis;
use autopipe_synth::PipelinedMachine;
use autopipe_trace::Trace;
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sta")
}

/// Compiles and synthesizes a shipped example; `rel` is both the
/// repo-relative path and the file name baked into the rendered
/// output, so fixtures never contain absolute paths.
fn machine(rel: &str) -> (PipelinedMachine, String) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src =
        std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("{rel} readable: {e}"));
    let compiled = compile(&src, rel).unwrap_or_else(|d| panic!("{rel} compiles: {d}"));
    let plan = compiled
        .spec
        .plan()
        .unwrap_or_else(|e| panic!("{rel} plans: {e}"));
    let (_, pm) = lint_design(&plan, &compiled.options, &LintConfig::new())
        .unwrap_or_else(|e| panic!("{rel} synthesizes: {e}"));
    (pm.expect("no synthesis-blocking findings"), src)
}

fn sta_report(pm: &PipelinedMachine, opts: &StaOptions) -> sta::StaReport {
    let analysis = NetAnalysis::of(&pm.netlist);
    sta::analyze(pm, &analysis, opts, &LintConfig::new(), &Trace::disabled())
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "{} is stale (run with UPDATE_GOLDEN=1 to regenerate)",
        path.display()
    );
}

/// The toy pipeline in all three formats. Its structural worst path is
/// itself a false path, so the fixture pins `AP0403`, pruned top
/// paths, and the control audit section all at once.
#[test]
fn toy_sta_goldens() {
    let (pm, src) = machine("examples/programs/toy.psm");
    let report = sta_report(&pm, &StaOptions::default());
    assert!(report.pruned() >= 1, "toy prunes a top path");
    assert!(!report.audit_pruned.is_empty(), "toy prunes audit paths");
    check_golden(&fixtures().join("toy.txt"), &sta::to_human(&report));
    check_golden(
        &fixtures().join("toy.json"),
        &sta::to_json(&report, "examples/programs/toy.psm"),
    );
    check_golden(
        &fixtures().join("toy.sarif"),
        &output::to_sarif(&report.findings, "examples/programs/toy.psm", &src),
    );
}

/// The report is a pure function of the design: worker sharding must
/// not change a byte.
#[test]
fn toy_sta_is_jobs_invariant() {
    let (pm, _) = machine("examples/programs/toy.psm");
    let serial = sta_report(&pm, &StaOptions::default());
    let sharded = sta_report(
        &pm,
        &StaOptions {
            jobs: 4,
            ..StaOptions::default()
        },
    );
    assert_eq!(sta::to_human(&serial), sta::to_human(&sharded));
    assert_eq!(
        sta::to_json(&serial, "toy.psm"),
        sta::to_json(&sharded, "toy.psm")
    );
}

/// DLX in human and JSON form: the acceptance surface. All top-10
/// datapath monsters are genuinely sensitizable; the control audit
/// proves seven interlock paths false.
#[test]
#[ignore = "release-only: DLX sensitization queries are slow under a debug-profile solver"]
fn dlx_sta_goldens() {
    let (pm, _) = machine("examples/programs/dlx.psm");
    let report = sta_report(&pm, &StaOptions::default());
    assert!(
        !report.audit_pruned.is_empty(),
        "DLX has SAT-proven false paths"
    );
    check_golden(&fixtures().join("dlx.txt"), &sta::to_human(&report));
    check_golden(
        &fixtures().join("dlx.json"),
        &sta::to_json(&report, "examples/programs/dlx.psm"),
    );
}
