//! A minimal SIGINT/SIGTERM latch.
//!
//! The serving daemon (`autopipe serve`) must drain on Ctrl-C or a
//! `kill -TERM`: finish in-flight requests, flush telemetry and close
//! the disk cache instead of dying mid-write. The standard library
//! offers no signal handling, the workspace forbids `unsafe` and bakes
//! in no external crates — so the two lines of FFI live here, in the
//! one crate that opts out of `forbid(unsafe_code)`, behind an API too
//! small to misuse:
//!
//! * [`install`] registers a handler for `SIGINT` and `SIGTERM`;
//! * [`termination_requested`] reports (from any thread) whether one
//!   arrived.
//!
//! The handler itself only stores to an [`AtomicBool`] — the only
//! async-signal-safe action it could take — and everything else
//! happens on ordinary threads that poll the latch. On non-Unix
//! targets [`install`] is a no-op and the latch never trips.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    extern "C" {
        /// `signal(2)`. Via glibc/musl this installs a BSD-semantics
        /// handler (persistent, restarting syscalls), which is exactly
        /// right for a latch that threads poll.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Async-signal-safe by construction: a single atomic store.
    extern "C" fn on_signal(_signum: i32) {
        super::TERMINATION.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Latches `SIGINT`/`SIGTERM` into [`termination_requested`] instead
/// of the default die-now disposition. Idempotent; call once near
/// process start.
pub fn install() {
    imp::install();
}

/// True once a `SIGINT` or `SIGTERM` has arrived since [`install`].
#[must_use]
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Clears the latch (tests; a daemon that drains and restarts).
pub fn reset() {
    TERMINATION.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_resets() {
        reset();
        assert!(!termination_requested());
        TERMINATION.store(true, Ordering::SeqCst);
        assert!(termination_requested());
        reset();
        assert!(!termination_requested());
    }

    #[cfg(unix)]
    #[test]
    #[cfg_attr(miri, ignore = "foreign calls (signal/raise) are outside miri's model")]
    fn installed_handler_latches_a_real_signal() {
        install();
        reset();
        // `raise(3)` via the same minimal FFI surface the crate already
        // carries; SIGTERM would kill the test process if the handler
        // were not installed.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let rc = unsafe { raise(15) };
        assert_eq!(rc, 0);
        // Delivery is synchronous for raise() on the calling thread.
        assert!(termination_requested());
        reset();
    }
}
