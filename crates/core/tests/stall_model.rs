//! Property test: the synthesized stall engine agrees with an
//! independent software reference model of the paper's §3 equations on
//! random hazard/external/rollback stimuli — including the full-bit
//! evolution across cycles.

use autopipe_hdl::{NetId, Netlist, Simulator};
use autopipe_synth::stall::StallEngine;
use proptest::prelude::*;

/// Direct software transcription of the §3 equations.
struct RefEngine {
    n: usize,
    fullb: Vec<bool>, // stages 1..n
}

struct RefOut {
    full: Vec<bool>,
    stall: Vec<bool>,
    ue: Vec<bool>,
    rbq: Vec<bool>,
}

impl RefEngine {
    fn new(n: usize) -> RefEngine {
        RefEngine {
            n,
            fullb: vec![false; n - 1],
        }
    }

    fn step(&mut self, dhaz: &[bool], ext: &[bool], rb: &[bool]) -> RefOut {
        let n = self.n;
        let full: Vec<bool> = (0..n)
            .map(|k| if k == 0 { true } else { self.fullb[k - 1] })
            .collect();
        let mut rbq = vec![false; n];
        let mut acc = false;
        for k in (0..n).rev() {
            acc |= rb[k];
            rbq[k] = acc;
        }
        let mut stall = vec![false; n];
        for k in (0..n).rev() {
            let downstream = if k + 1 < n { stall[k + 1] } else { false };
            stall[k] = (dhaz[k] || ext[k] || downstream) && full[k];
        }
        let ue: Vec<bool> = (0..n).map(|k| full[k] && !stall[k] && !rbq[k]).collect();
        for s in 1..n {
            self.fullb[s - 1] = (ue[s - 1] || stall[s]) && !rbq[s];
        }
        RefOut {
            full,
            stall,
            ue,
            rbq,
        }
    }
}

fn harness(n: usize) -> (Netlist, Vec<NetId>, Vec<NetId>, Vec<NetId>) {
    let mut nl = Netlist::new("stall");
    let engine = StallEngine::declare(&mut nl, n, true);
    let dhaz: Vec<NetId> = (0..n).map(|k| nl.input(format!("dhaz.{k}"), 1)).collect();
    let rb: Vec<NetId> = (0..n).map(|k| nl.input(format!("rb.{k}"), 1)).collect();
    let ext: Vec<NetId> = (0..n)
        .map(|k| nl.find(&format!("ext.{k}")).expect("declared"))
        .collect();
    let stall = engine.build_stalls(&mut nl, &dhaz);
    engine.connect(&mut nl, stall, &rb);
    (nl, dhaz, ext, rb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlist_engine_matches_reference_model(
        n in 2usize..7,
        stimuli in proptest::collection::vec((0u8..8, 0u8..8, 0u8..8), 1..30),
    ) {
        let (nl, dhaz, ext, rb) = harness(n);
        let mut sim = Simulator::new(&nl)?;
        let mut reference = RefEngine::new(n);
        for (dh, ex, rbv) in stimuli {
            let bits = |v: u8, k: usize| (v >> (k % 3)) & 1 == 1;
            let dvec: Vec<bool> = (0..n).map(|k| bits(dh, k)).collect();
            let evec: Vec<bool> = (0..n).map(|k| bits(ex, k)).collect();
            let rvec: Vec<bool> = (0..n).map(|k| bits(rbv, k)).collect();
            for k in 0..n {
                sim.set_input(dhaz[k], u64::from(dvec[k]));
                sim.set_input(ext[k], u64::from(evec[k]));
                sim.set_input(rb[k], u64::from(rvec[k]));
            }
            sim.settle();
            let want = reference.step(&dvec, &evec, &rvec);
            for k in 0..n {
                prop_assert_eq!(
                    sim.get_by_name(&format!("full.{k}")).unwrap() == 1,
                    want.full[k],
                    "full.{} (n={})", k, n
                );
                prop_assert_eq!(
                    sim.get_by_name(&format!("stall.{k}")).unwrap() == 1,
                    want.stall[k],
                    "stall.{}", k
                );
                prop_assert_eq!(
                    sim.get_by_name(&format!("ue.{k}")).unwrap() == 1,
                    want.ue[k],
                    "ue.{}", k
                );
                prop_assert_eq!(
                    sim.get_by_name(&format!("rollbackq.{k}")).unwrap() == 1,
                    want.rbq[k],
                    "rollbackq.{}", k
                );
            }
            sim.clock();
        }
    }
}
