//! Forwarding network synthesis (paper §4).
//!
//! For a stage-`k` read of a register `R` written by stage `w`, the
//! generated hardware consists of:
//!
//! * **hit signals** `R_k hit[j] = full_j ∧ Rwe.j ∧ (f_k_Rra = Rwa.j)`
//!   for `j ∈ {k+1, …, w}` (the address comparison is omitted for plain
//!   registers),
//! * a **top-hit select network** that takes the value from the
//!   smallest hitting stage: at `j = w` the write data `f_w_R`, at
//!   intermediate stages the designated forwarding register `Q` —
//!   `f_j_Q` if `f_j_Qwe` is active, else the travelled instance `Q.j`,
//! * **valid bits**: `valid_j = Qv.j ∨ f_j_Qwe`, with the `Qv` chain
//!   pipelined alongside the instruction,
//! * the **data hazard** `dhaz`: the top hit is not valid, or the top
//!   stage itself has a data hazard (§4.1.1).
//!
//! Two select topologies are provided ([`crate::MuxTopology`]): the
//! linear mux cascade of Figure 2 and the find-first-one + balanced
//! tree the paper recommends for larger pipelines.

use crate::options::MuxTopology;
use autopipe_hdl::{NetId, Netlist};

/// One potential forwarding source: stage `j` of the paper's hit range.
#[derive(Debug, Clone, Copy)]
pub struct HitSource {
    /// Pipeline stage `j`.
    pub stage: usize,
    /// The hit signal (already includes `full_j` and the write-enable
    /// and address comparisons).
    pub hit: NetId,
    /// Value forwarded when this is the top hit.
    pub value: NetId,
    /// Whether the forwarded value is final ("valid"); constant 1 at
    /// the write stage.
    pub valid: NetId,
}

/// Parallel-prefix OR (Kogge–Stone style doubling): `out[i] = ⋁ bits[0..=i]`
/// with logarithmic depth. This is the find-first-one backbone.
pub fn prefix_or(nl: &mut Netlist, bits: &[NetId]) -> Vec<NetId> {
    let mut cur: Vec<NetId> = bits.to_vec();
    let mut d = 1;
    while d < cur.len() {
        let mut next = cur.clone();
        for i in d..cur.len() {
            next[i] = nl.or(cur[i], cur[i - d]);
        }
        cur = next;
        d *= 2;
    }
    cur
}

/// Priority select: the payload of the first (lowest-index) source whose
/// `hit` bit is set, or `default` if none hit. All payloads and the
/// default must share one width.
///
/// `Chain` builds the linear mux cascade of Figure 2 (depth linear in
/// the number of sources); `Tree` builds a find-first-one prefix network
/// plus a balanced masked-OR tree (logarithmic depth).
///
/// ```
/// use autopipe_hdl::{Netlist, Simulator};
/// use autopipe_synth::forward::priority_select;
/// use autopipe_synth::MuxTopology;
///
/// # fn main() -> Result<(), autopipe_hdl::HdlError> {
/// let mut nl = Netlist::new("sel");
/// let h0 = nl.input("h0", 1);
/// let h1 = nl.input("h1", 1);
/// let v0 = nl.constant(10, 8);
/// let v1 = nl.constant(20, 8);
/// let def = nl.constant(99, 8);
/// let out = priority_select(&mut nl, MuxTopology::Chain, &[(h0, v0), (h1, v1)], def);
/// let mut sim = Simulator::new(&nl)?;
/// sim.set_input(h0, 0);
/// sim.set_input(h1, 1);
/// sim.settle();
/// assert_eq!(sim.get(out), 20);
/// sim.set_input(h0, 1); // lower index wins
/// sim.settle();
/// assert_eq!(sim.get(out), 10);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics on payload width mismatches (via the netlist builders).
pub fn priority_select(
    nl: &mut Netlist,
    topology: MuxTopology,
    sources: &[(NetId, NetId)],
    default: NetId,
) -> NetId {
    match topology {
        MuxTopology::Chain => {
            let mut g = default;
            for &(hit, value) in sources.iter().rev() {
                g = nl.mux(hit, value, g);
            }
            g
        }
        MuxTopology::Tree => {
            if sources.is_empty() {
                return default;
            }
            let hits: Vec<NetId> = sources.iter().map(|&(h, _)| h).collect();
            let prefix = prefix_or(nl, &hits);
            let width = nl.width(default);
            let zero = nl.constant(0, width);
            let mut masked = Vec::with_capacity(sources.len() + 1);
            for (i, &(hit, value)) in sources.iter().enumerate() {
                let is_top = if i == 0 {
                    hit
                } else {
                    let earlier = prefix[i - 1];
                    let ne = nl.not(earlier);
                    nl.and(hit, ne)
                };
                masked.push(nl.mux(is_top, value, zero));
            }
            let any = prefix[sources.len() - 1];
            let none = nl.not(any);
            masked.push(nl.mux(none, default, zero));
            nl.or_all(&masked)
        }
    }
}

/// A synthesized forwarded read.
#[derive(Debug, Clone)]
pub struct ForwardNet {
    /// The generated input `g_k_R`.
    pub g: NetId,
    /// The read's data-hazard contribution: top hit invalid or top
    /// stage itself hazardous.
    pub hazard: NetId,
    /// The hit sources, ascending by stage.
    pub sources: Vec<HitSource>,
}

/// Builds the select network and hazard signal for a read given its hit
/// sources (ascending stage order), the fall-back value (register-file
/// read data or the stored instance), and the per-source "bad" bits
/// (`¬valid_j ∨ dhaz_j`).
///
/// # Panics
///
/// Panics if `sources` and `bad` lengths differ.
pub fn build_forward_net(
    nl: &mut Netlist,
    topology: MuxTopology,
    sources: Vec<HitSource>,
    bad: &[NetId],
    default: NetId,
) -> ForwardNet {
    assert_eq!(sources.len(), bad.len(), "one bad bit per source");
    let pairs: Vec<(NetId, NetId)> = sources.iter().map(|s| (s.hit, s.value)).collect();
    let g = priority_select(nl, topology, &pairs, default);
    let zero = nl.zero();
    let bad_pairs: Vec<(NetId, NetId)> =
        sources.iter().zip(bad).map(|(s, &b)| (s.hit, b)).collect();
    let hazard = priority_select(nl, topology, &bad_pairs, zero);
    ForwardNet { g, hazard, sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Simulator;

    fn select_harness(topology: MuxTopology, n: usize) -> (Netlist, Vec<NetId>, Vec<NetId>, NetId) {
        let mut nl = Netlist::new("sel");
        let hits: Vec<NetId> = (0..n).map(|i| nl.input(format!("h{i}"), 1)).collect();
        let vals: Vec<NetId> = (0..n).map(|i| nl.input(format!("v{i}"), 8)).collect();
        let def = nl.input("def", 8);
        let pairs: Vec<(NetId, NetId)> = hits.iter().copied().zip(vals.iter().copied()).collect();
        let out = priority_select(&mut nl, topology, &pairs, def);
        nl.label("out", out);
        (nl, hits, vals, out)
    }

    fn check_priority(topology: MuxTopology) {
        let n = 5;
        let (nl, hits, vals, out) = select_harness(topology, n);
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            sim.set_input(v, 10 + i as u64);
        }
        sim.set_input_by_name("def", 99).unwrap();
        // Exhaustive over all 32 hit patterns: lowest set bit wins.
        for pattern in 0u32..(1 << n) {
            for (i, &h) in hits.iter().enumerate() {
                sim.set_input(h, u64::from(pattern >> i & 1));
            }
            sim.settle();
            let expect = (0..n)
                .find(|i| pattern >> i & 1 == 1)
                .map(|i| 10 + i as u64)
                .unwrap_or(99);
            assert_eq!(sim.get(out), expect, "pattern {pattern:#b} ({topology:?})");
        }
    }

    #[test]
    fn chain_priority_semantics() {
        check_priority(MuxTopology::Chain);
    }

    #[test]
    fn tree_priority_semantics() {
        check_priority(MuxTopology::Tree);
    }

    #[test]
    fn chain_and_tree_agree_on_random_payloads() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for n in 1..=8usize {
            let mut nl = Netlist::new("agree");
            let hits: Vec<NetId> = (0..n).map(|i| nl.input(format!("h{i}"), 1)).collect();
            let vals: Vec<NetId> = (0..n).map(|i| nl.input(format!("v{i}"), 16)).collect();
            let def = nl.input("def", 16);
            let pairs: Vec<(NetId, NetId)> =
                hits.iter().copied().zip(vals.iter().copied()).collect();
            let a = priority_select(&mut nl, MuxTopology::Chain, &pairs, def);
            let b = priority_select(&mut nl, MuxTopology::Tree, &pairs, def);
            let mut sim = Simulator::new(&nl).unwrap();
            for _ in 0..50 {
                for &h in &hits {
                    sim.set_input(h, rng.gen_range(0..=1));
                }
                for &v in &vals {
                    sim.set_input(v, rng.gen_range(0..0x10000));
                }
                sim.set_input(def, rng.gen_range(0..0x10000));
                sim.settle();
                assert_eq!(sim.get(a), sim.get(b));
            }
        }
    }

    #[test]
    fn prefix_or_matches_reference() {
        let mut nl = Netlist::new("p");
        let bits: Vec<NetId> = (0..7).map(|i| nl.input(format!("b{i}"), 1)).collect();
        let pre = prefix_or(&mut nl, &bits);
        let mut sim = Simulator::new(&nl).unwrap();
        for pattern in 0u32..(1 << 7) {
            for (i, &b) in bits.iter().enumerate() {
                sim.set_input(b, u64::from(pattern >> i & 1));
            }
            sim.settle();
            let mut acc = 0u32;
            for (i, &p) in pre.iter().enumerate() {
                acc |= pattern >> i & 1;
                assert_eq!(sim.get(p), u64::from(acc), "bit {i} pattern {pattern:#b}");
            }
        }
    }

    #[test]
    fn tree_is_shallower_than_chain_for_deep_pipelines() {
        use autopipe_hdl::NetlistStats;
        fn depth(topology: MuxTopology, n: usize) -> u32 {
            let mut nl = Netlist::new("d");
            let hits: Vec<NetId> = (0..n).map(|i| nl.input(format!("h{i}"), 1)).collect();
            let vals: Vec<NetId> = (0..n).map(|i| nl.input(format!("v{i}"), 32)).collect();
            let def = nl.input("def", 32);
            let pairs: Vec<(NetId, NetId)> =
                hits.iter().copied().zip(vals.iter().copied()).collect();
            let out = priority_select(&mut nl, topology, &pairs, def);
            let (r, _) = nl.register("out", 32, 0);
            nl.connect(r, out);
            NetlistStats::of(&nl).critical_path
        }
        assert!(depth(MuxTopology::Tree, 12) < depth(MuxTopology::Chain, 12));
    }
}
