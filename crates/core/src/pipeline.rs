//! The pipeline transformation: prepared sequential machine →
//! pipelined machine.
//!
//! Construction order (dictated by combinational data flow):
//!
//! 1. skeleton (registers, files, externals) and the stall-engine full
//!    bits — hit signals reference them;
//! 2. file write-control (`Rwe.j`/`Rwa.j`) pipe registers and the
//!    forwarding valid-bit registers — declared before any stage so hit
//!    comparators can read them;
//! 3. **stage logic in reverse order** (`n-1` down to `0`): stage `k`'s
//!    forwarded inputs tap the data-path outputs of deeper stages, so
//!    those must already exist; each stage's data-hazard net is folded
//!    immediately (it only depends on deeper stages — §4.1.1's
//!    transitive `dhaz_top` term);
//! 4. the stall chain, the speculation comparisons (gated by
//!    `full ∧ ¬stall`), the rollback suffix, update enables and
//!    full-bit updates;
//! 5. register/pipe/file connections (identical rules as the sequential
//!    machine — only the schedule and the input generation `g_k`
//!    differ), speculation fixup overrides, proof obligations.

use crate::forward::{build_forward_net, HitSource};
use crate::options::{ActualSource, FixupValue, ForwardMode, SynthOptions};
use crate::proof::{self, Obligation};
use crate::report::{ForwardKind, ForwardPathInfo, SpeculationInfo, StageCost, SynthReport};
use crate::speculate::{rollback_request, SpecPipes};
use crate::stall::StallEngine;
use autopipe_hdl::{HdlError, NetId, Netlist, Simulator};
use autopipe_psm::elab::{self, InputGen, InstanceOverride, Skeleton, StageInstance};
use autopipe_psm::{Plan, PlanError, ResolvedInput};
use std::collections::HashMap;
use std::fmt;

/// Errors of the pipeline transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// A read requires forwarding/interlock but no [`crate::ForwardingSpec`]
    /// covers the target.
    MissingForwardingSpec {
        /// Reading stage.
        stage: usize,
        /// Port name.
        port: String,
        /// Target register/file.
        target: String,
    },
    /// A forwarding designation references an unknown register/file.
    UnknownTarget {
        /// The name that failed to resolve.
        name: String,
    },
    /// Plain (non-file) targets can only be forwarded when read exactly
    /// one stage before the write (`w == k+1`); deeper distances would
    /// need precomputed write enables that plain registers do not have.
    UnsupportedPlainForward {
        /// Reading stage.
        stage: usize,
        /// Target register.
        target: String,
        /// Its write stage.
        write_stage: usize,
    },
    /// A file's control stage lies after a reading stage, so the hit
    /// comparators would need not-yet-computed write addresses.
    CtrlStageTooLate {
        /// The file.
        file: String,
        /// Its control stage.
        ctrl_stage: usize,
        /// The offending reading stage.
        read_stage: usize,
    },
    /// A speculation designation is inconsistent (message explains).
    BadSpeculation {
        /// Human-readable description.
        message: String,
    },
    /// Underlying plan/port-resolution problem.
    Plan(PlanError),
    /// Underlying netlist problem.
    Hdl(HdlError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::MissingForwardingSpec {
                stage,
                port,
                target,
            } => write!(
                f,
                "stage {stage} reads `{target}` (port `{port}`) before it is written; \
declare a ForwardingSpec for `{target}`"
            ),
            SynthError::UnknownTarget { name } => {
                write!(f, "forwarding target `{name}` does not exist")
            }
            SynthError::UnsupportedPlainForward {
                stage,
                target,
                write_stage,
            } => write!(
                f,
                "plain register `{target}` written by stage {write_stage} cannot be \
forwarded to stage {stage}: only w == k+1 is supported for non-file targets"
            ),
            SynthError::CtrlStageTooLate {
                file,
                ctrl_stage,
                read_stage,
            } => write!(
                f,
                "file `{file}` computes we/wa in stage {ctrl_stage}, after reading \
stage {read_stage}; move the control computation earlier"
            ),
            SynthError::BadSpeculation { message } => write!(f, "bad speculation: {message}"),
            SynthError::Plan(e) => write!(f, "{e}"),
            SynthError::Hdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<PlanError> for SynthError {
    fn from(e: PlanError) -> Self {
        SynthError::Plan(e)
    }
}

impl From<HdlError> for SynthError {
    fn from(e: HdlError) -> Self {
        SynthError::Hdl(e)
    }
}

/// Per-stage control nets of the generated pipeline.
#[derive(Debug, Clone)]
pub struct ControlNets {
    /// `full_k`.
    pub full: Vec<NetId>,
    /// `stall_k`.
    pub stall: Vec<NetId>,
    /// `dhaz_k`.
    pub dhaz: Vec<NetId>,
    /// `ue_k`.
    pub ue: Vec<NetId>,
    /// Aggregated `rollback_k` requests.
    pub rollback: Vec<NetId>,
    /// `rollback'_k` suffix-OR.
    pub rollback_prime: Vec<NetId>,
    /// External stall inputs (constants 0 when disabled).
    pub ext: Vec<NetId>,
}

/// The transformed, pipelined machine.
#[derive(Debug, Clone)]
pub struct PipelinedMachine {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The plan it was generated from.
    pub plan: Plan,
    /// State-element handles (aligned with the plan).
    pub skel: Skeleton,
    /// Control signals.
    pub control: ControlNets,
    /// Machine-checkable proof obligations.
    pub obligations: Vec<Obligation>,
    /// Synthesis report.
    pub report: SynthReport,
}

impl PipelinedMachine {
    /// Builds the scalar reference interpreter for the generated
    /// netlist.
    ///
    /// Migration note: new code should prefer [`PipelinedMachine::sim`]
    /// and the [`Simulate`](autopipe_hdl::Simulate) trait, which let
    /// callers pick (or auto-select) the compiled backend; this
    /// concrete constructor remains for interpreter-specific harnesses.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors (none expected: the
    /// synthesizer validates before returning).
    pub fn simulator(&self) -> Result<Simulator, HdlError> {
        Simulator::new(&self.netlist)
    }

    /// Builds a simulator for the generated netlist behind the unified
    /// [`Simulate`](autopipe_hdl::Simulate) trait — the preferred entry
    /// point since the [`autopipe_hdl::Backend`] redesign.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors (none expected: the
    /// synthesizer validates before returning).
    pub fn sim(
        &self,
        backend: autopipe_hdl::Backend,
    ) -> Result<Box<dyn autopipe_hdl::Simulate>, HdlError> {
        self.netlist.simulator(backend)
    }

    /// The generated human-readable proof document (paper §6).
    pub fn proof_document(&self) -> String {
        proof::proof_document(&self.report, &self.obligations)
    }

    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.plan.n_stages()
    }

    /// Per-stage cost attribution of the generated hazard hardware
    /// (see [`StageCost`]): forwarding/interlock path counts from the
    /// synthesis report joined with arrival times and control-cone
    /// gate counts from one [`autopipe_hdl::NetAnalysis`] walk of the
    /// netlist. Deterministic for a given machine, so the telemetry
    /// layer can emit it on the byte-stable trace sink.
    pub fn stage_costs(&self) -> Vec<StageCost> {
        self.stage_costs_with(&autopipe_hdl::NetAnalysis::of(&self.netlist))
    }

    /// [`PipelinedMachine::stage_costs`] against a caller-supplied
    /// [`autopipe_hdl::NetAnalysis`] of this machine's netlist, so a
    /// driver that already walked the graph (lint, `report`, `sta`)
    /// never walks it twice for the same answer.
    pub fn stage_costs_with(&self, analysis: &autopipe_hdl::NetAnalysis) -> Vec<StageCost> {
        (0..self.n_stages())
            .map(|k| {
                let paths: Vec<&ForwardPathInfo> = self
                    .report
                    .forwards
                    .iter()
                    .filter(|p| p.stage == k)
                    .collect();
                let control: Vec<NetId> = [
                    self.control.stall.get(k),
                    self.control.dhaz.get(k),
                    self.control.ue.get(k),
                ]
                .into_iter()
                .flatten()
                .copied()
                .collect();
                let arrival = |net: Option<&NetId>| net.map_or(0, |&n| analysis.arrival(n));
                StageCost {
                    stage: k,
                    forward_paths: paths.iter().filter(|p| !p.interlock_only).count(),
                    interlock_paths: paths.iter().filter(|p| p.interlock_only).count(),
                    hit_signals: paths.iter().map(|p| p.hit_stages.len()).sum(),
                    control_gates: autopipe_hdl::cone_gates(&self.netlist, &control),
                    stall_levels: arrival(self.control.stall.get(k)),
                    dhaz_levels: arrival(self.control.dhaz.get(k)),
                    ue_levels: arrival(self.control.ue.get(k)),
                }
            })
            .collect()
    }

    /// Returns an optimized copy of this machine: the netlist is run
    /// through [`autopipe_hdl::optimize`] (constant folding,
    /// simplification, sharing, dead-logic removal) and every stored
    /// net handle is remapped. Equivalence of the optimizer is
    /// certified separately by BMC (see `autopipe-verify`); the
    /// pipeline tests additionally re-run the data-consistency checker
    /// on optimized machines.
    pub fn optimized(&self) -> PipelinedMachine {
        let (nl, map, _stats) = autopipe_hdl::optimize(&self.netlist);
        let m = |n: NetId| map.net(n);
        let skel = Skeleton {
            // Registers and memories are recreated in identical order.
            inst_regs: self
                .skel
                .inst_regs
                .iter()
                .map(|&(r, o)| (r, m(o)))
                .collect(),
            file_mems: self.skel.file_mems.clone(),
            ext_inputs: self.skel.ext_inputs.iter().map(|&n| m(n)).collect(),
        };
        let control = ControlNets {
            full: self.control.full.iter().map(|&n| m(n)).collect(),
            stall: self.control.stall.iter().map(|&n| m(n)).collect(),
            dhaz: self.control.dhaz.iter().map(|&n| m(n)).collect(),
            ue: self.control.ue.iter().map(|&n| m(n)).collect(),
            rollback: self.control.rollback.iter().map(|&n| m(n)).collect(),
            rollback_prime: self.control.rollback_prime.iter().map(|&n| m(n)).collect(),
            ext: self.control.ext.iter().map(|&n| m(n)).collect(),
        };
        let obligations = self
            .obligations
            .iter()
            .map(|ob| Obligation {
                name: ob.name.clone(),
                class: ob.class,
                net: m(ob.net),
            })
            .collect();
        PipelinedMachine {
            netlist: nl,
            plan: self.plan.clone(),
            skel,
            control,
            obligations,
            report: self.report.clone(),
        }
    }
}

/// The transformation tool; see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct PipelineSynthesizer {
    options: SynthOptions,
}

impl PipelineSynthesizer {
    /// Creates a synthesizer with the given designer options.
    pub fn new(options: SynthOptions) -> PipelineSynthesizer {
        PipelineSynthesizer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &SynthOptions {
        &self.options
    }

    /// Runs the transformation.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] when a hazard is left uncovered, a
    /// designation is inconsistent, or elaboration fails.
    pub fn run(&self, plan: &Plan) -> Result<PipelinedMachine, SynthError> {
        validate(plan, &self.options)?;
        synthesize(plan, &self.options)
    }
}

// ---------------------------------------------------------------------
// Target resolution helpers
// ---------------------------------------------------------------------

/// What a forwarded target is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Index into `plan.files`, plus its write stage.
    File(usize, usize),
    /// A plain register: index of its *last* instance, plus write stage.
    Plain(usize, usize),
}

fn find_target(plan: &Plan, name: &str) -> Option<Target> {
    if let Some(fi) = plan.files.iter().position(|f| f.name == name) {
        return Some(Target::File(fi, plan.files[fi].write_stage));
    }
    plan.instances
        .iter()
        .position(|i| i.base == name && i.is_last)
        .map(|ii| Target::Plain(ii, plan.instances[ii].writer))
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

fn validate(plan: &Plan, options: &SynthOptions) -> Result<(), SynthError> {
    // Designation targets must exist.
    for fspec in &options.forwarding {
        if find_target(plan, &fspec.target).is_none() {
            return Err(SynthError::UnknownTarget {
                name: fspec.target.clone(),
            });
        }
        if let ForwardMode::Forward { source: Some(q) } = &fspec.mode {
            if !plan.instances.iter().any(|i| &i.base == q) {
                return Err(SynthError::UnknownTarget { name: q.clone() });
            }
        }
    }

    // Speculations.
    let n = plan.n_stages();
    for sp in &options.speculation {
        let bad = |m: String| SynthError::BadSpeculation { message: m };
        if sp.resolve_stage <= sp.stage || sp.resolve_stage >= n {
            return Err(bad(format!(
                "`{}`: resolve stage {} must lie in ({}, {})",
                sp.name, sp.resolve_stage, sp.stage, n
            )));
        }
        if !sp.guess.has_output("guess") {
            return Err(bad(format!(
                "`{}`: guess fragment must label `guess`",
                sp.name
            )));
        }
        let resolved = plan
            .resolve_input(sp.stage, &sp.port)
            .map_err(|e| bad(format!("`{}`: {e}", sp.name)))?;
        let width = match &resolved {
            ResolvedInput::Instance(i) => plan.instances[*i].width,
            ResolvedInput::External(e) => plan.spec.external_inputs[*e].1,
            ResolvedInput::ReadPort { .. } => {
                return Err(bad(format!(
                    "`{}`: speculation on register-file read ports is not supported",
                    sp.name
                )))
            }
        };
        let gw = sp
            .guess
            .output_width("guess")
            .map_err(|e| bad(format!("`{}`: {e}", sp.name)))?;
        if gw != width {
            return Err(bad(format!(
                "`{}`: guess is {gw} bits but port `{}` is {width} bits",
                sp.name, sp.port
            )));
        }
        for p in sp.guess.input_ports() {
            match plan.resolve_input(sp.stage, p) {
                Ok(ResolvedInput::ReadPort { .. }) => {
                    return Err(bad(format!(
                        "`{}`: guess fragment may only read registers and external inputs",
                        sp.name
                    )))
                }
                Ok(_) => {}
                Err(e) => return Err(bad(format!("`{}`: {e}", sp.name))),
            }
        }
        match &sp.actual {
            ActualSource::Reread => {
                let ResolvedInput::Instance(i) = resolved else {
                    return Err(bad(format!(
                        "`{}`: Reread requires a register operand",
                        sp.name
                    )));
                };
                let inst = &plan.instances[i];
                if inst.writer <= sp.stage {
                    return Err(bad(format!(
                        "`{}`: port `{}` needs no speculation (not a loop-back read)",
                        sp.name, sp.port
                    )));
                }
                if !matches!(
                    options.mode_for(&inst.base),
                    Some(ForwardMode::Forward { .. })
                ) {
                    return Err(bad(format!(
                        "`{}`: Reread requires a Forward designation for `{}`",
                        sp.name, inst.base
                    )));
                }
                if inst.writer > sp.resolve_stage + 1 {
                    return Err(bad(format!(
                        "`{}`: at resolve stage {} the operand (written by stage {}) \
is still not resolvable",
                        sp.name, sp.resolve_stage, inst.writer
                    )));
                }
            }
            ActualSource::External(name) => {
                if !plan.spec.external_inputs.iter().any(|(e, _)| e == name) {
                    return Err(bad(format!(
                        "`{}`: unknown external input `{name}`",
                        sp.name
                    )));
                }
            }
        }
        for fix in &sp.fixups {
            let Some(ii) = plan
                .instances
                .iter()
                .position(|i| i.base == fix.register && i.is_last)
            else {
                return Err(bad(format!(
                    "`{}`: fixup register `{}` does not exist",
                    sp.name, fix.register
                )));
            };
            let w = plan.instances[ii].width;
            match &fix.value {
                FixupValue::Const(c) => {
                    if *c > autopipe_hdl::mask(w) {
                        return Err(bad(format!(
                            "`{}`: fixup constant {c:#x} does not fit `{}`",
                            sp.name, fix.register
                        )));
                    }
                }
                FixupValue::External(name) => {
                    let Some((_, ew)) = plan.spec.external_inputs.iter().find(|(e, _)| e == name)
                    else {
                        return Err(bad(format!(
                            "`{}`: unknown external input `{name}`",
                            sp.name
                        )));
                    };
                    if *ew != w {
                        return Err(bad(format!(
                            "`{}`: fixup width mismatch for `{}`",
                            sp.name, fix.register
                        )));
                    }
                }
                FixupValue::Instance(base) => {
                    let Some(pos) = plan.instance_for_read(sp.resolve_stage, base) else {
                        return Err(bad(format!(
                            "`{}`: unknown fixup source register `{base}`",
                            sp.name
                        )));
                    };
                    if plan.instances[pos].width != w {
                        return Err(bad(format!(
                            "`{}`: fixup width mismatch for `{}`",
                            sp.name, fix.register
                        )));
                    }
                }
                FixupValue::Actual => {
                    let speculated_width = match plan.resolve_input(sp.stage, &sp.port) {
                        Ok(ResolvedInput::Instance(i)) => plan.instances[i].width,
                        Ok(ResolvedInput::External(e)) => plan.spec.external_inputs[e].1,
                        _ => {
                            return Err(bad(format!(
                                "`{}`: Actual fixup needs a resolvable port",
                                sp.name
                            )))
                        }
                    };
                    if speculated_width != w {
                        return Err(bad(format!(
                            "`{}`: Actual fixup width mismatch for `{}`",
                            sp.name, fix.register
                        )));
                    }
                }
            }
        }
    }
    // Every read that crosses a write must be covered.
    for k in 0..n {
        let logic = plan.stage_logic(k);
        let mut ports: Vec<String> = logic
            .logic
            .input_ports()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for rp in &logic.read_ports {
            ports.extend(rp.addr.input_ports().iter().map(|s| s.to_string()));
        }
        for port in ports {
            match plan.resolve_input(k, &port)? {
                ResolvedInput::Instance(i) => {
                    let inst = &plan.instances[i];
                    if inst.writer <= k {
                        continue; // same-instruction flow, or own output
                    }
                    let speculated = options
                        .speculation
                        .iter()
                        .any(|s| s.stage == k && s.port == port);
                    if speculated {
                        // The guess replaces the operand; verification
                        // happens at the resolve stage.
                        continue;
                    }
                    match options.mode_for(&inst.base) {
                        None => {
                            return Err(SynthError::MissingForwardingSpec {
                                stage: k,
                                port,
                                target: inst.base.clone(),
                            })
                        }
                        Some(ForwardMode::Unprotected) => {}
                        Some(_) => {
                            if inst.writer != k + 1 {
                                return Err(SynthError::UnsupportedPlainForward {
                                    stage: k,
                                    target: inst.base.clone(),
                                    write_stage: inst.writer,
                                });
                            }
                        }
                    }
                }
                ResolvedInput::ReadPort { file, .. } => {
                    let fp = &plan.files[file];
                    if fp.read_only || k >= fp.write_stage {
                        continue;
                    }
                    match options.mode_for(&fp.name) {
                        None => {
                            return Err(SynthError::MissingForwardingSpec {
                                stage: k,
                                port,
                                target: fp.name.clone(),
                            })
                        }
                        Some(ForwardMode::Unprotected) => {}
                        Some(_) => {
                            if fp.ctrl_stage > k {
                                return Err(SynthError::CtrlStageTooLate {
                                    file: fp.name.clone(),
                                    ctrl_stage: fp.ctrl_stage,
                                    read_stage: k,
                                });
                            }
                        }
                    }
                }
                ResolvedInput::External(_) => {}
            }
        }
    }

    Ok(())
}

// ---------------------------------------------------------------------
// Synthesis
// ---------------------------------------------------------------------

/// One hazard contribution recorded while building stage inputs.
#[derive(Debug, Clone, Copy)]
struct HazardRec {
    stage: usize,
    hazard: NetId,
}

/// The pipelined input-generation function `g_k` (paper §4): forwards
/// register-file reads and loop-back operands, substitutes speculation
/// guesses, and records hazard contributions.
struct SynthGen<'a> {
    plan: &'a Plan,
    options: &'a SynthOptions,
    skel: &'a Skeleton,
    full: &'a [NetId],
    /// `(file, stage j) -> (we, wa)` precomputed pipe nets.
    file_ctrl_at: HashMap<(usize, usize), (NetId, NetId)>,
    /// `(target, stage j) -> Qv.j` valid-bit register outputs.
    valid_reg_at: HashMap<(String, usize), NetId>,
    /// Deeper stages' outputs, filled in reverse order.
    stage_outs: Vec<Option<StageInstance>>,
    /// Deeper stages' dhaz nets.
    dhaz: Vec<Option<NetId>>,
    /// All recorded hazard contributions.
    hazards: Vec<HazardRec>,
    /// Cache of generated inputs per (stage, port).
    built: HashMap<(usize, String), NetId>,
    /// Speculations: used-value nets per spec, filled at the consuming
    /// stage.
    spec_used: Vec<Option<NetId>>,
    /// Reread actual values per spec, filled at the resolve stage.
    spec_actual: Vec<Option<NetId>>,
    /// Report entries.
    paths: Vec<ForwardPathInfo>,
    valid_bit_count: usize,
}

impl<'a> SynthGen<'a> {
    /// Stage-`j` outputs (must already be instantiated).
    fn outs(&self, j: usize) -> &StageInstance {
        self.stage_outs[j]
            .as_ref()
            .expect("reverse construction order guarantees deeper stages exist")
    }

    fn out_net(&self, j: usize, name: &str) -> Option<NetId> {
        self.outs(j).outputs.get(name).copied()
    }

    /// `valid_j` for the chain of `target` forwarded via `source`:
    /// `Qv.j ∨ f_j_Qwe`.
    fn valid_at(&self, nl: &mut Netlist, target: &str, source: &str, j: usize) -> NetId {
        let qv = self.valid_reg_at.get(&(target.to_string(), j)).copied();
        let we = self.source_we(nl, source, j);
        match (qv, we) {
            (Some(v), Some(w)) => nl.or(v, w),
            (Some(v), None) => v,
            (None, Some(w)) => w,
            (None, None) => nl.zero(),
        }
    }

    /// `f_j_Qwe`: does stage `j` write the forwarding register?
    fn source_we(&self, nl: &mut Netlist, source: &str, j: usize) -> Option<NetId> {
        let inst = self.plan.instance_named(source, j + 1)?;
        let info = &self.plan.instances[inst];
        if !info.has_data {
            return None; // pass-through copy: the stage does not write Q
        }
        Some(match info.has_we {
            true => self.out_net(j, &format!("{source}.we")).expect("validated"),
            false => nl.one(),
        })
    }

    /// The forwarded value when the top hit is at stage `j < w`:
    /// `f_j_Qwe ? f_j_Q : Q.j` (dead arms become zeros; they are only
    /// selected under `dhaz`, which stalls the reader).
    fn source_value(&self, nl: &mut Netlist, source: &str, j: usize, width: u32) -> NetId {
        let zero = nl.constant(0, width);
        let data = self
            .plan
            .instance_named(source, j + 1)
            .filter(|&i| self.plan.instances[i].has_data)
            .and_then(|_| self.out_net(j, source));
        let travelled = self
            .plan
            .instance_named(source, j)
            .map(|i| self.skel.inst_regs[i].1);
        match (self.source_we(nl, source, j), data, travelled) {
            (Some(we), Some(d), Some(t)) => nl.mux(we, d, t),
            (Some(_), Some(d), None) => d,
            (_, _, Some(t)) => t,
            _ => zero,
        }
    }

    /// Builds the forwarding network for a read of `target` at stage
    /// `k`. `addr` is the read address for file targets. Returns the
    /// generated value `g` and its hazard contribution.
    #[allow(clippy::too_many_arguments)]
    fn forward_read(
        &mut self,
        nl: &mut Netlist,
        k: usize,
        port: &str,
        target_name: &str,
        target: Target,
        addr: Option<NetId>,
        default: NetId,
    ) -> (NetId, NetId) {
        let mode = self
            .options
            .mode_for(target_name)
            .expect("validated")
            .clone();
        let w = match target {
            Target::File(_, ws) | Target::Plain(_, ws) => ws,
        };
        let width = nl.width(default);

        // Hit signals for j in k+1..=w.
        let mut hits: Vec<(usize, NetId)> = Vec::new();
        for j in k + 1..=w {
            let hit = match target {
                Target::File(fi, _) => {
                    let (we, wa) = self.file_ctrl_at[&(fi, j)];
                    let addr = addr.expect("file reads carry an address");
                    let eq = nl.eq(addr, wa);
                    let h = nl.and(we, eq);
                    nl.and(self.full[j], h)
                }
                Target::Plain(ii, _) => {
                    // Validated: j == w == k+1. The write enable is the
                    // writer stage's own (combinational) we output.
                    let info = &self.plan.instances[ii];
                    let we = match info.has_we {
                        true => self
                            .out_net(j, &format!("{target_name}.we"))
                            .expect("validated"),
                        false => nl.one(),
                    };
                    let _ = info;
                    nl.and(self.full[j], we)
                }
            };
            let hit = nl.label(format!("fw.{k}.{port}.hit.{j}"), hit);
            hits.push((j, hit));
        }

        let interlock_only = matches!(mode, ForwardMode::InterlockOnly);
        match mode {
            ForwardMode::Unprotected => {
                self.paths.push(ForwardPathInfo {
                    stage: k,
                    port: port.to_string(),
                    target: target_name.to_string(),
                    source: None,
                    hit_stages: hits.iter().map(|&(j, _)| j).collect(),
                    write_stage: w,
                    kind: match target {
                        Target::File(..) => ForwardKind::File,
                        Target::Plain(..) => ForwardKind::Plain,
                    },
                    interlock_only: false,
                });
                (default, nl.zero())
            }
            ForwardMode::InterlockOnly => {
                let hit_nets: Vec<NetId> = hits.iter().map(|&(_, h)| h).collect();
                let hazard = nl.or_all(&hit_nets);
                self.paths.push(ForwardPathInfo {
                    stage: k,
                    port: port.to_string(),
                    target: target_name.to_string(),
                    source: None,
                    hit_stages: hits.iter().map(|&(j, _)| j).collect(),
                    write_stage: w,
                    kind: match target {
                        Target::File(..) => ForwardKind::File,
                        Target::Plain(..) => ForwardKind::Plain,
                    },
                    interlock_only,
                });
                (default, hazard)
            }
            ForwardMode::Forward { source } => {
                let mut sources = Vec::new();
                let mut bad = Vec::new();
                for &(j, hit) in &hits {
                    let (value, valid) = if j == w {
                        let value = match target {
                            Target::File(fi, _) => self
                                .out_net(w, &self.plan.files[fi].name.clone())
                                .expect("validated write data"),
                            Target::Plain(_, _) => {
                                self.out_net(w, target_name).expect("validated write data")
                            }
                        };
                        (value, nl.one())
                    } else {
                        match &source {
                            Some(q) => (
                                self.source_value(nl, q, j, width),
                                self.valid_at(nl, target_name, q, j),
                            ),
                            // Write-stage-only forwarding: intermediate
                            // hits always interlock.
                            None => (nl.constant(0, width), nl.zero()),
                        }
                    };
                    let valid = nl.label(format!("fw.{k}.{port}.valid.{j}"), valid);
                    let nv = nl.not(valid);
                    // The transitive-dhaz term is skipped for the source
                    // directly above the reader (j == k+1): no bubble can
                    // separate the two stages, and `hit` includes `full`,
                    // so `dhaz_{k+1} ∧ full_{k+1}` implies `stall_{k+1}`,
                    // which the stall chain already folds into `stall_k`.
                    // OR-ing it here would only duplicate that term.
                    if self.options.transitive_dhaz && j > k + 1 {
                        let dj = self.dhaz[j].expect("reverse order");
                        bad.push(nl.or(nv, dj));
                    } else {
                        bad.push(nv);
                    }
                    sources.push(HitSource {
                        stage: j,
                        hit,
                        value,
                        valid,
                    });
                }
                let net = build_forward_net(nl, self.options.topology, sources, &bad, default);
                let g = nl.label(format!("g.{k}.{port}"), net.g);
                let hazard = nl.label(format!("fw.{k}.{port}.dhaz"), net.hazard);
                self.paths.push(ForwardPathInfo {
                    stage: k,
                    port: port.to_string(),
                    target: target_name.to_string(),
                    source: source.clone(),
                    hit_stages: hits.iter().map(|&(j, _)| j).collect(),
                    write_stage: w,
                    kind: match target {
                        Target::File(..) => ForwardKind::File,
                        Target::Plain(..) => ForwardKind::Plain,
                    },
                    interlock_only: false,
                });
                (g, hazard)
            }
        }
    }

    /// Builds the guess for a speculated (stage, port) read: the guess
    /// fragment's output replaces the operand entirely; the used value
    /// is recorded for the guess pipe and verified at the resolve
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics if (stage, port) is not actually speculated; callers
    /// check first.
    fn apply_speculation(&mut self, nl: &mut Netlist, stage: usize, port: &str) -> NetId {
        let options = self.options;
        let si = options
            .speculation
            .iter()
            .position(|s| s.stage == stage && s.port == port)
            .expect("caller checked speculation applies");
        let sp = &options.speculation[si];
        let mut bind = HashMap::new();
        for p in sp.guess.input_ports() {
            let net = match self.plan.resolve_input(stage, p).expect("validated") {
                ResolvedInput::Instance(i) => self.skel.inst_regs[i].1,
                ResolvedInput::External(e) => self.skel.ext_inputs[e],
                ResolvedInput::ReadPort { .. } => unreachable!("validated"),
            };
            bind.insert(p.to_string(), net);
        }
        let outs = sp
            .guess
            .instantiate(nl, &bind)
            .expect("validated guess fragment");
        let used = nl.label(format!("spec.{}.used", sp.name), outs["guess"]);
        self.spec_used[si] = Some(used);
        used
    }
}

impl InputGen for SynthGen<'_> {
    fn instance(&mut self, nl: &mut Netlist, stage: usize, port: &str, inst: usize) -> NetId {
        if let Some(&net) = self.built.get(&(stage, port.to_string())) {
            return net;
        }
        let info = &self.plan.instances[inst];
        let direct = self.skel.inst_regs[inst].1;
        let speculated = self
            .options
            .speculation
            .iter()
            .any(|s| s.stage == stage && s.port == port);
        let net = if speculated {
            self.apply_speculation(nl, stage, port)
        } else if info.writer <= stage {
            // Output of stage k-1 or k: "nothing needs to be changed".
            direct
        } else {
            let base = info.base.clone();
            let target = find_target(self.plan, &base).expect("instances resolve");
            let (g, hazard) = self.forward_read(nl, stage, port, &base, target, None, direct);
            self.hazards.push(HazardRec { stage, hazard });
            g
        };
        self.built.insert((stage, port.to_string()), net);
        net
    }

    fn external(&mut self, nl: &mut Netlist, stage: usize, port: &str, ext: usize) -> NetId {
        if let Some(&net) = self.built.get(&(stage, port.to_string())) {
            return net;
        }
        let direct = self.skel.ext_inputs[ext];
        let speculated = self
            .options
            .speculation
            .iter()
            .any(|s| s.stage == stage && s.port == port);
        let net = if speculated {
            self.apply_speculation(nl, stage, port)
        } else {
            direct
        };
        self.built.insert((stage, port.to_string()), net);
        net
    }

    fn read_data(
        &mut self,
        nl: &mut Netlist,
        stage: usize,
        file: usize,
        port: usize,
        addr: NetId,
        raw: NetId,
    ) -> NetId {
        let fp = &self.plan.files[file];
        if fp.read_only || stage >= fp.write_stage {
            return raw;
        }
        let alias = self.plan.stage_logic(stage).read_ports[port].alias.clone();
        let name = fp.name.clone();
        let ws = fp.write_stage;
        let (g, hazard) = self.forward_read(
            nl,
            stage,
            &alias,
            &name,
            Target::File(file, ws),
            Some(addr),
            raw,
        );
        self.hazards.push(HazardRec { stage, hazard });
        g
    }
}

fn synthesize(plan: &Plan, options: &SynthOptions) -> Result<PipelinedMachine, SynthError> {
    let n = plan.n_stages();
    let mut nl = Netlist::new(format!("{}_pipe", plan.spec.name));
    let skel = elab::build_skeleton(&mut nl, plan);
    let engine = StallEngine::declare(&mut nl, n, options.ext_stall_inputs);
    let full = engine.full.clone();
    let ext = engine.ext.clone();
    let fc_regs = elab::declare_file_ctrl(&mut nl, plan);

    // Precomputed file write-control nets visible at each stage j:
    // ctrl stage -> combinational (resolved later, during the reverse
    // pass, because it is a stage output); j > ctrl -> pipe register.
    let mut file_ctrl_at = HashMap::new();
    for (fi, f) in plan.files.iter().enumerate() {
        for &(j, _, we_out, _, wa_out) in &fc_regs[fi].pipes {
            file_ctrl_at.insert((fi, j), (we_out, wa_out));
        }
        let _ = f;
    }

    // Valid-bit chains: for every Forward designation with a source Q,
    // registers Qv.j for j in (first writer of Q)+1 ..= w_target - 1.
    let mut valid_reg_handles = Vec::new();
    let mut valid_reg_at = HashMap::new();
    for fspec in &options.forwarding {
        let ForwardMode::Forward { source: Some(q) } = &fspec.mode else {
            continue;
        };
        let Some(target) = find_target(plan, &fspec.target) else {
            continue;
        };
        let w = match target {
            Target::File(_, ws) | Target::Plain(_, ws) => ws,
        };
        let first = plan
            .instances
            .iter()
            .filter(|i| &i.base == q)
            .map(|i| i.writer)
            .min()
            .expect("validated source");
        for j in first + 1..w {
            let (reg, out) = nl.register(format!("fw.{}.v.{j}", fspec.target), 1, 0);
            valid_reg_handles.push((fspec.target.clone(), q.clone(), j, reg));
            valid_reg_at.insert((fspec.target.clone(), j), out);
        }
    }

    // Speculation guess pipes.
    let mut spec_pipes = Vec::new();
    for sp in &options.speculation {
        let width = match plan.resolve_input(sp.stage, &sp.port)? {
            ResolvedInput::Instance(i) => plan.instances[i].width,
            ResolvedInput::External(e) => plan.spec.external_inputs[e].1,
            ResolvedInput::ReadPort { .. } => unreachable!("validated"),
        };
        spec_pipes.push(SpecPipes::declare(&mut nl, sp, width));
    }

    // Reverse-order stage construction.
    let mut gen = SynthGen {
        plan,
        options,
        skel: &skel,
        full: &full,
        file_ctrl_at,
        valid_reg_at,
        stage_outs: vec![None; n],
        dhaz: vec![None; n],
        hazards: Vec::new(),
        built: HashMap::new(),
        spec_used: vec![None; options.speculation.len()],
        spec_actual: vec![None; options.speculation.len()],
        paths: Vec::new(),
        valid_bit_count: valid_reg_handles.len(),
    };
    for k in (0..n).rev() {
        // Reread actual values resolved at this stage: the speculated
        // operand, re-read through the ordinary forwarding network. Its
        // hazard stalls the resolve stage until the operand is final —
        // the paper's "the comparison is done if the stage is full and
        // not stalled".
        for (si, sp) in options.speculation.iter().enumerate() {
            if sp.resolve_stage == k && matches!(sp.actual, ActualSource::Reread) {
                let ResolvedInput::Instance(i) = plan.resolve_input(sp.stage, &sp.port)? else {
                    unreachable!("validated")
                };
                let base = plan.instances[i].base.clone();
                let target = find_target(plan, &base).expect("validated");
                let inst_at_rs = plan.instance_for_read(k, &base).expect("instances resolve");
                let default = skel.inst_regs[inst_at_rs].1;
                let (actual, hazard) = gen.forward_read(
                    &mut nl,
                    k,
                    &format!("spec_{}_actual", sp.name),
                    &base,
                    target,
                    None,
                    default,
                );
                gen.hazards.push(HazardRec { stage: k, hazard });
                gen.spec_actual[si] = Some(actual);
            }
        }
        let inst = elab::instantiate_stage(&mut nl, plan, &skel, k, &mut gen)?;
        gen.stage_outs[k] = Some(inst);
        // Fold this stage's data hazard.
        let nets: Vec<NetId> = gen
            .hazards
            .iter()
            .filter(|h| h.stage == k)
            .map(|h| h.hazard)
            .collect();
        let d = nl.or_all(&nets);
        gen.dhaz[k] = Some(nl.label(format!("dhaz.{k}"), d));
    }
    let stages: Vec<StageInstance> = gen
        .stage_outs
        .iter()
        .cloned()
        .map(|s| s.expect("all stages built"))
        .collect();
    let dhaz: Vec<NetId> = gen.dhaz.iter().map(|d| d.expect("built")).collect();

    // Stall chain, then speculation comparisons, then the engine.
    let stall = engine.build_stalls(&mut nl, &dhaz);
    let mut rollback_parts: Vec<Vec<NetId>> = vec![Vec::new(); n];
    let mut spec_rb: Vec<NetId> = Vec::with_capacity(options.speculation.len());
    let mut spec_actual_nets: Vec<NetId> = Vec::with_capacity(options.speculation.len());
    for (si, sp) in options.speculation.iter().enumerate() {
        let piped = spec_pipes[si].at_resolve();
        let actual = match &sp.actual {
            ActualSource::Reread => gen.spec_actual[si].expect("built at resolve stage"),
            ActualSource::External(name) => {
                let e = plan
                    .spec
                    .external_inputs
                    .iter()
                    .position(|(x, _)| x == name)
                    .expect("validated");
                skel.ext_inputs[e]
            }
        };
        let rs = sp.resolve_stage;
        let rb = rollback_request(&mut nl, piped, actual, full[rs], stall[rs]);
        let rb = nl.label(format!("spec.{}.rollback", sp.name), rb);
        rollback_parts[rs].push(rb);
        spec_rb.push(rb);
        spec_actual_nets.push(actual);
    }
    let mut rollback = Vec::with_capacity(n);
    for (k, parts) in rollback_parts.iter().enumerate() {
        let r = nl.or_all(parts);
        rollback.push(nl.label(format!("rollback.{k}"), r));
    }
    let signals = engine.connect(&mut nl, stall, &rollback);

    // Guess pipes.
    for (si, sp) in options.speculation.iter().enumerate() {
        let used = gen.spec_used[si].ok_or_else(|| SynthError::BadSpeculation {
            message: format!(
                "`{}`: stage {} never reads port `{}`",
                sp.name, sp.stage, sp.port
            ),
        })?;
        spec_pipes[si].connect(&mut nl, sp, used, &signals.ue);
    }

    // Valid-bit chains: Qv.{j+1} := valid_j with ce = ue_j; here
    // valid_j = Qv.j ∨ f_j_Qwe computed through the same helper the hit
    // logic used.
    for (target, q, j, reg) in &valid_reg_handles {
        let prev = gen.valid_at(&mut nl, target, q, j - 1);
        nl.connect_en(reg.to_owned(), prev, signals.ue[j - 1]);
    }

    // Speculation fixups -> instance overrides.
    let mut overrides = Vec::new();
    for (si, sp) in options.speculation.iter().enumerate() {
        let rb = spec_rb[si];
        for fix in &sp.fixups {
            let ii = plan
                .instances
                .iter()
                .position(|i| i.base == fix.register && i.is_last)
                .expect("validated");
            let w = plan.instances[ii].width;
            let value = match &fix.value {
                FixupValue::Const(c) => nl.constant(*c, w),
                FixupValue::External(name) => {
                    let e = plan
                        .spec
                        .external_inputs
                        .iter()
                        .position(|(x, _)| x == name)
                        .expect("validated");
                    skel.ext_inputs[e]
                }
                FixupValue::Instance(base) => {
                    let pos = plan
                        .instance_for_read(sp.resolve_stage, base)
                        .expect("validated");
                    skel.inst_regs[pos].1
                }
                FixupValue::Actual => spec_actual_nets[si],
            };
            overrides.push(InstanceOverride {
                instance: ii,
                cond: rb,
                value,
            });
        }
    }

    elab::connect_instances(&mut nl, plan, &skel, &stages, &signals.ue, &overrides);
    elab::connect_file_ctrl(&mut nl, plan, &skel, &fc_regs, &stages, &signals.ue);

    let obligations = proof::emit_stall_obligations(
        &mut nl,
        &full,
        &signals.stall,
        &signals.ue,
        &signals.rollback_prime,
        options.monitors,
    );
    nl.validate()?;

    let report = SynthReport {
        machine: plan.spec.name.clone(),
        n_stages: n,
        topology: options.topology,
        forwards: gen.paths.clone(),
        speculations: options
            .speculation
            .iter()
            .map(|s| SpeculationInfo {
                name: s.name.clone(),
                stage: s.stage,
                port: s.port.clone(),
                resolve_stage: s.resolve_stage,
                fixups: s.fixups.len(),
            })
            .collect(),
        obligations: obligations.len(),
        valid_bits: gen.valid_bit_count,
        guess_regs: spec_pipes.iter().map(|p| p.regs.len()).sum(),
    };
    let control = ControlNets {
        full,
        stall: signals.stall,
        dhaz,
        ue: signals.ue,
        rollback,
        rollback_prime: signals.rollback_prime,
        ext,
    };
    Ok(PipelinedMachine {
        netlist: nl,
        plan: plan.clone(),
        skel,
        control,
        obligations,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{ForwardingSpec, MuxTopology, SynthOptions};
    use autopipe_psm::{
        FileDecl, Fragment, MachineSpec, ReadPort, RegisterDecl, SequentialMachine, VisibleValue,
    };

    /// A 3-stage toy processor with real RAW hazards.
    ///
    /// Instruction format (8 bits): `imm[7:4] src[3:2] dst[1:0]`,
    /// semantics `RF[dst] := RF[src] + imm`. Stage 0 fetches from a ROM
    /// and precomputes the RF write controls; stage 1 reads the source
    /// operand (the forwarded read); stage 2 writes the file.
    fn toy_spec(program: &[u64]) -> MachineSpec {
        let mut spec = MachineSpec::new("acc", 3);
        spec.register(RegisterDecl::new("PC", 4).written_by(0).visible());
        spec.register(RegisterDecl::new("IR", 8).written_by(0));
        spec.register(RegisterDecl::new("X", 8).written_by(1));
        spec.file(FileDecl::read_only("IMEM", 4, 8).init(program.to_vec()));
        spec.file(FileDecl::new("RF", 2, 8, 2).ctrl(0).visible());

        // Stage 0: fetch + write-control precomputation.
        let mut f0 = autopipe_hdl::Netlist::new("fetch");
        let pc = f0.input("PC", 4);
        let insn = f0.input("insn", 8);
        let one = f0.constant(1, 4);
        let npc = f0.add(pc, one);
        f0.label("PC", npc);
        f0.label("IR", insn);
        let we = f0.one();
        f0.label("RF.we", we);
        let wa = f0.slice(insn, 1, 0);
        f0.label("RF.wa", wa);
        let mut fa = autopipe_hdl::Netlist::new("fetch_addr");
        let pca = fa.input("PC", 4);
        fa.label("addr", pca);
        spec.stage(
            0,
            "F",
            Fragment::new(f0).unwrap(),
            vec![ReadPort::new("IMEM", "insn", Fragment::new(fa).unwrap())],
        );

        // Stage 1: operand read + add immediate.
        let mut f1 = autopipe_hdl::Netlist::new("ex");
        let ir = f1.input("IR", 8);
        let src = f1.input("srcv", 8);
        let imm4 = f1.slice(ir, 7, 4);
        let imm = f1.zext(imm4, 8);
        let x = f1.add(src, imm);
        f1.label("X", x);
        let mut ra = autopipe_hdl::Netlist::new("src_addr");
        let ir2 = ra.input("IR", 8);
        let a = ra.slice(ir2, 3, 2);
        ra.label("addr", a);
        spec.stage(
            1,
            "EX",
            Fragment::new(f1).unwrap(),
            vec![ReadPort::new("RF", "srcv", Fragment::new(ra).unwrap())],
        );

        // Stage 2: write back.
        let mut f2 = autopipe_hdl::Netlist::new("wb");
        let x = f2.input("X", 8);
        f2.label("RF", x);
        spec.stage(2, "WB", Fragment::new(f2).unwrap(), vec![]);
        spec
    }

    /// insn(imm, src, dst)
    fn insn(imm: u64, src: u64, dst: u64) -> u64 {
        imm << 4 | src << 2 | dst
    }

    /// Chained dependencies: every instruction reads the previous
    /// destination.
    fn hazard_program() -> Vec<u64> {
        vec![
            insn(1, 0, 0), // RF[0] := RF[0] + 1 = 1
            insn(2, 0, 1), // RF[1] := RF[0] + 2 = 3
            insn(3, 1, 2), // RF[2] := RF[1] + 3 = 6
            insn(4, 2, 3), // RF[3] := RF[2] + 4 = 10
        ]
    }

    /// Runs the pipelined machine until `retired` instructions left the
    /// last stage; returns the cycle count.
    fn run_retire(pm: &PipelinedMachine, sim: &mut Simulator, retired: usize) -> u64 {
        let ue_last = *pm.control.ue.last().unwrap();
        let mut done = 0;
        let mut cycles = 0;
        while done < retired {
            sim.settle();
            if sim.get(ue_last) == 1 {
                done += 1;
            }
            sim.clock();
            cycles += 1;
            assert!(cycles < 1000, "machine does not make progress");
        }
        cycles
    }

    fn rf_contents(pm: &PipelinedMachine, sim: &Simulator) -> Vec<u64> {
        let fi = pm.plan.files.iter().position(|f| f.name == "RF").unwrap();
        let mem = pm.skel.file_mems[fi];
        (0..4).map(|a| sim.mem_value(mem, a)).collect()
    }

    fn synth(program: &[u64], fwd: ForwardingSpec, topology: MuxTopology) -> PipelinedMachine {
        let plan = toy_spec(program).plan().unwrap();
        let options = SynthOptions::new()
            .with_forwarding(fwd)
            .with_topology(topology);
        PipelineSynthesizer::new(options).run(&plan).unwrap()
    }

    #[test]
    fn forwarding_pipeline_matches_sequential() {
        for topology in [MuxTopology::Chain, MuxTopology::Tree] {
            let pm = synth(
                &hazard_program(),
                ForwardingSpec::forward_from_write_stage("RF"),
                topology,
            );
            let mut sim = pm.simulator().unwrap();
            let cycles = run_retire(&pm, &mut sim, 4);
            assert_eq!(rf_contents(&pm, &sim), vec![1, 3, 6, 10], "{topology:?}");
            // Fully forwarded: no stalls — fill (n-1 = 2 cycles) plus
            // one retirement per cycle.
            assert_eq!(cycles, 2 + 4, "{topology:?}");

            let mut seq = SequentialMachine::new(pm.plan.clone()).unwrap();
            for _ in 0..4 {
                seq.step_instruction();
            }
            match &seq.visible_state()["RF"] {
                VisibleValue::File(v) => assert_eq!(&v[..4], &[1, 3, 6, 10]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn interlock_only_is_correct_but_slower() {
        let fast = synth(
            &hazard_program(),
            ForwardingSpec::forward_from_write_stage("RF"),
            MuxTopology::Chain,
        );
        let slow = synth(
            &hazard_program(),
            ForwardingSpec::interlock("RF"),
            MuxTopology::Chain,
        );
        let mut fsim = fast.simulator().unwrap();
        let mut ssim = slow.simulator().unwrap();
        let fc = run_retire(&fast, &mut fsim, 4);
        let sc = run_retire(&slow, &mut ssim, 4);
        assert_eq!(rf_contents(&slow, &ssim), vec![1, 3, 6, 10]);
        assert!(sc > fc, "interlock-only must be slower ({sc} vs {fc})");
    }

    #[test]
    fn unprotected_pipeline_computes_wrong_values() {
        let pm = synth(
            &hazard_program(),
            ForwardingSpec::unprotected("RF"),
            MuxTopology::Chain,
        );
        let mut sim = pm.simulator().unwrap();
        run_retire(&pm, &mut sim, 4);
        assert_ne!(
            rf_contents(&pm, &sim),
            vec![1, 3, 6, 10],
            "without forwarding/interlock the RAW hazards must corrupt results"
        );
    }

    #[test]
    fn missing_designation_is_rejected() {
        let plan = toy_spec(&hazard_program()).plan().unwrap();
        let err = PipelineSynthesizer::new(SynthOptions::new())
            .run(&plan)
            .unwrap_err();
        assert!(
            matches!(err, SynthError::MissingForwardingSpec { ref target, .. } if target == "RF")
        );
    }

    #[test]
    fn report_and_proof_document() {
        let pm = synth(
            &hazard_program(),
            ForwardingSpec::forward_from_write_stage("RF"),
            MuxTopology::Chain,
        );
        assert_eq!(pm.report.forwards.len(), 1);
        let p = &pm.report.forwards[0];
        assert_eq!(p.stage, 1);
        assert_eq!(p.target, "RF");
        assert_eq!(p.hit_stages, vec![2]);
        assert!(!pm.obligations.is_empty());
        let doc = pm.proof_document();
        assert!(doc.contains("Lemma 1"));
        assert!(doc.contains("Lemma 3"));
        assert!(doc.contains("no_overtake"));
        let shown = format!("{}", pm.report);
        assert!(shown.contains("stage 1 reads file `RF`"));
    }

    #[test]
    fn obligations_hold_during_simulation() {
        let pm = synth(
            &hazard_program(),
            ForwardingSpec::interlock("RF"),
            MuxTopology::Chain,
        );
        let mut sim = pm.simulator().unwrap();
        for _ in 0..50 {
            sim.settle();
            for ob in &pm.obligations {
                assert_eq!(sim.get(ob.net), 1, "obligation {} violated", ob.name);
            }
            sim.clock();
        }
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::options::{
        ActualSource, Fixup, FixupValue, ForwardingSpec, SpeculationSpec, SynthOptions,
    };
    use autopipe_psm::{FileDecl, Fragment, MachineSpec, ReadPort, RegisterDecl};

    /// Minimal 3-stage machine with a loop-back register L written by
    /// stage 2 and read by stage 0 (too far for plain forwarding), and
    /// a file whose control stage is configurable (stage 0 = fine,
    /// stage 2 = after the reading stage).
    fn tricky_spec(lf_ctrl: usize) -> MachineSpec {
        let mut spec = MachineSpec::new("tricky", 3);
        spec.register(RegisterDecl::new("L", 4).written_by(2).visible());
        spec.external_input("eee", 4);
        spec.file(FileDecl::new("LF", 2, 4, 2).ctrl(lf_ctrl));

        let mut s0 = autopipe_hdl::Netlist::new("s0");
        let l = s0.input("L", 4);
        let lf = s0.input("lfd", 4);
        let x = s0.add(l, lf);
        s0.label("X", x);
        if lf_ctrl == 0 {
            let we = s0.one();
            s0.label("LF.we", we);
            let wa = s0.slice(l, 1, 0);
            s0.label("LF.wa", wa);
        }
        let mut a0 = autopipe_hdl::Netlist::new("a0");
        let l2 = a0.input("L", 4);
        let addr = a0.slice(l2, 1, 0);
        a0.label("addr", addr);
        spec.register(RegisterDecl::new("X", 4).written_by(0).written_by(1));
        spec.stage(
            0,
            "S0",
            Fragment::new(s0).unwrap(),
            vec![ReadPort::new("LF", "lfd", Fragment::new(a0).unwrap())],
        );

        let mut s1 = autopipe_hdl::Netlist::new("s1");
        s1.constant(0, 1);
        spec.stage(1, "S1", Fragment::new(s1).unwrap(), vec![]);

        let mut s2 = autopipe_hdl::Netlist::new("s2");
        let x = s2.input("X", 4);
        let one = s2.constant(1, 4);
        let nl_ = s2.add(x, one);
        s2.label("L", nl_);
        s2.label("LF", x);
        if lf_ctrl == 2 {
            let we = s2.one();
            s2.label("LF.we", we);
            let wa = s2.slice(x, 1, 0);
            s2.label("LF.wa", wa);
        }
        spec.stage(2, "S2", Fragment::new(s2).unwrap(), vec![]);
        spec
    }

    fn run_with(options: SynthOptions) -> Result<PipelinedMachine, SynthError> {
        let plan = tricky_spec(0).plan().unwrap();
        PipelineSynthesizer::new(options).run(&plan)
    }

    #[test]
    fn unknown_target_rejected() {
        let err = run_with(SynthOptions::new().with_forwarding(ForwardingSpec::interlock("NOPE")))
            .unwrap_err();
        assert!(matches!(err, SynthError::UnknownTarget { ref name } if name == "NOPE"));
    }

    #[test]
    fn unknown_source_rejected() {
        let err =
            run_with(SynthOptions::new().with_forwarding(ForwardingSpec::forward("L", "GHOST")))
                .unwrap_err();
        assert!(matches!(err, SynthError::UnknownTarget { ref name } if name == "GHOST"));
    }

    #[test]
    fn too_distant_plain_forward_rejected() {
        // L is written by stage 2 but read at stage 0: w != k+1.
        let err = run_with(
            SynthOptions::new()
                .with_forwarding(ForwardingSpec::forward_from_write_stage("L"))
                .with_forwarding(ForwardingSpec::interlock("LF")),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SynthError::UnsupportedPlainForward {
                stage: 0,
                write_stage: 2,
                ..
            }
        ));
    }

    #[test]
    fn late_ctrl_stage_rejected() {
        // LF computes we/wa in stage 2 but is read at stage 0.
        let plan = tricky_spec(2).plan().unwrap();
        let err = PipelineSynthesizer::new(
            SynthOptions::new()
                .with_forwarding(ForwardingSpec::interlock("LF"))
                .with_forwarding(ForwardingSpec::forward_from_write_stage("L")),
        )
        .run(&plan)
        .unwrap_err();
        // The L read is rejected first (plain forward too distant) or
        // the LF ctrl issue — accept either order by probing both.
        match err {
            SynthError::CtrlStageTooLate {
                ctrl_stage: 2,
                read_stage: 0,
                ..
            }
            | SynthError::UnsupportedPlainForward { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        // Pin the ctrl error specifically with the L read speculated
        // away.
        let guess = guess4();
        let err = PipelineSynthesizer::new(
            SynthOptions::new()
                .with_forwarding(ForwardingSpec::interlock("LF"))
                .with_speculation(SpeculationSpec {
                    name: "s".into(),
                    stage: 0,
                    port: "L".into(),
                    guess,
                    resolve_stage: 1,
                    actual: ActualSource::External("eee".into()),
                    fixups: vec![],
                }),
        )
        .run(&plan)
        .unwrap_err();
        assert!(matches!(
            err,
            SynthError::CtrlStageTooLate {
                ctrl_stage: 2,
                read_stage: 0,
                ..
            }
        ));
    }

    fn guess4() -> Fragment {
        let mut g = autopipe_hdl::Netlist::new("g");
        let z = g.constant(0, 4);
        g.label("guess", z);
        Fragment::new(g).unwrap()
    }

    fn base_speculation() -> SpeculationSpec {
        SpeculationSpec {
            name: "s".into(),
            stage: 0,
            port: "L".into(),
            guess: guess4(),
            resolve_stage: 1,
            actual: ActualSource::Reread,
            fixups: vec![],
        }
    }

    /// Helper applying one mutation to an otherwise-plausible
    /// speculation and asserting rejection.
    fn reject(mutate: impl FnOnce(&mut SpeculationSpec), needle: &str) {
        let mut sp = base_speculation();
        mutate(&mut sp);
        let err = run_with(
            SynthOptions::new()
                .with_forwarding(ForwardingSpec::forward_from_write_stage("L"))
                .with_forwarding(ForwardingSpec::interlock("LF"))
                .with_speculation(sp),
        )
        .unwrap_err();
        match err {
            SynthError::BadSpeculation { message } => {
                assert!(message.contains(needle), "`{message}` lacks `{needle}`");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn speculation_error_messages() {
        reject(|s| s.resolve_stage = 0, "resolve stage");
        reject(|s| s.resolve_stage = 9, "resolve stage");
        reject(|s| s.guess = Fragment::identity(4), "must label `guess`");
        reject(|s| s.port = "lfd".into(), "read ports");
        reject(
            |s| {
                let mut g = autopipe_hdl::Netlist::new("g");
                let z = g.constant(0, 7); // wrong width
                g.label("guess", z);
                s.guess = Fragment::new(g).unwrap();
            },
            "bits",
        );
        reject(
            |s| s.actual = ActualSource::External("missing".into()),
            "unknown external",
        );
        reject(
            |s| {
                s.fixups = vec![Fixup {
                    register: "NOPE".into(),
                    value: FixupValue::Const(0),
                }];
            },
            "fixup register",
        );
        reject(
            |s| {
                s.fixups = vec![Fixup {
                    register: "L".into(),
                    value: FixupValue::Const(0x99), // does not fit in 4 bits
                }];
            },
            "does not fit",
        );
        reject(
            |s| {
                s.fixups = vec![Fixup {
                    register: "L".into(),
                    value: FixupValue::External("missing".into()),
                }];
            },
            "unknown external",
        );
        reject(
            |s| {
                s.fixups = vec![Fixup {
                    register: "L".into(),
                    value: FixupValue::Instance("GHOST".into()),
                }];
            },
            "unknown fixup source",
        );
    }

    #[test]
    fn valid_speculative_machine_synthesizes_and_runs() {
        // The Reread configuration on L (w = 2 = rs+1) is legal.
        let pm = run_with(
            SynthOptions::new()
                .with_forwarding(ForwardingSpec::forward_from_write_stage("L"))
                .with_forwarding(ForwardingSpec::interlock("LF"))
                .with_speculation(base_speculation()),
        )
        .unwrap();
        let mut sim = pm.simulator().unwrap();
        sim.run(50); // must not panic / deadlock
        assert_eq!(pm.report.speculations.len(), 1);
        assert_eq!(pm.report.guess_regs, 1);
    }
}
