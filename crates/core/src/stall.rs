//! The stall engine (paper §3: the stall engine of its reference \[12\] with the
//! rollback/squashing mechanism).
//!
//! Per stage `k`:
//!
//! ```text
//! full_0        = 1
//! full_k        = fullb.k                                (k ≥ 1)
//! rollback'_k   = ⋁_{i ≥ k} rollback_i
//! stall_{n-1}   = (dhaz_{n-1} ∨ ext_{n-1}) ∧ full_{n-1}
//! stall_k       = (dhaz_k ∨ ext_k ∨ stall_{k+1}) ∧ full_k
//! ue_k          = full_k ∧ ¬stall_k ∧ ¬rollback'_k
//! fullb.s      := (ue_{s-1} ∨ stall_s) ∧ ¬rollback'_s    (s ≥ 1)
//! ```
//!
//! The `∧ ¬rollback'_s` term in the full-bit update is our (documented)
//! strengthening of the paper's `fullb.s := ue_{s-1} ∨ stall_s`: without
//! it a *stalled* stage would survive a squash, which the co-simulation
//! checker flags as a data-consistency violation. The paper elides
//! rollback in its equations ("For sake of simplicity, we omit rollback
//! in the following arguments"), so this is a completion, not a
//! deviation.
//!
//! Because `dhaz`/`rollback` are only known after the forwarding and
//! speculation networks exist, construction is two-phase:
//! [`StallEngine::declare`] creates the full bits (so hit signals can
//! use them) and [`StallEngine::connect`] builds the stall/ue chain and
//! the full-bit next-state functions.

use autopipe_hdl::{NetId, Netlist, RegId};

/// The declared (phase-1) stall engine.
#[derive(Debug, Clone)]
pub struct StallEngine {
    n: usize,
    /// `full_k` nets; `full_0` is the constant 1.
    pub full: Vec<NetId>,
    /// Full-bit registers for stages `1..n` (index 0 ↦ stage 1).
    full_regs: Vec<RegId>,
    /// External stall condition nets (constant 0 when disabled).
    pub ext: Vec<NetId>,
}

/// The connected (phase-2) control signals.
#[derive(Debug, Clone)]
pub struct StallSignals {
    /// `stall_k` per stage.
    pub stall: Vec<NetId>,
    /// `ue_k` per stage.
    pub ue: Vec<NetId>,
    /// `rollback'_k` (suffix-OR of rollback requests) per stage.
    pub rollback_prime: Vec<NetId>,
}

impl StallEngine {
    /// Phase 1: declares full bits and external stall inputs for an
    /// `n`-stage pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn declare(nl: &mut Netlist, n: usize, ext_inputs: bool) -> StallEngine {
        assert!(n >= 1);
        let mut full = Vec::with_capacity(n);
        let mut full_regs = Vec::new();
        let one = nl.one();
        nl.label("full.0", one);
        full.push(one);
        for k in 1..n {
            let (reg, out) = nl.register(format!("full.{k}"), 1, 0);
            full_regs.push(reg);
            full.push(out);
        }
        let mut ext = Vec::with_capacity(n);
        for k in 0..n {
            let e = if ext_inputs {
                nl.input(format!("ext.{k}"), 1)
            } else {
                nl.zero()
            };
            ext.push(e);
        }
        StallEngine {
            n,
            full,
            full_regs,
            ext,
        }
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.n
    }

    /// Phase 2a: builds the stall chain from the per-stage hazard and
    /// external-stall conditions. Exposed separately because the
    /// speculation comparisons need `stall_k` ("the comparison is done
    /// if the stage is full and not stalled") *before* the rollback
    /// nets exist.
    ///
    /// # Panics
    ///
    /// Panics unless `dhaz` has one entry per stage.
    pub fn build_stalls(&self, nl: &mut Netlist, dhaz: &[NetId]) -> Vec<NetId> {
        let n = self.n;
        assert_eq!(dhaz.len(), n, "one dhaz net per stage");
        let mut stall = Vec::with_capacity(n);
        let mut downstream: Option<NetId> = None;
        for k in (0..n).rev() {
            let mut cond = nl.or(dhaz[k], self.ext[k]);
            if let Some(d) = downstream {
                cond = nl.or(cond, d);
            }
            let s = nl.and(cond, self.full[k]);
            stall.push(nl.label(format!("stall.{k}"), s));
            downstream = Some(s);
        }
        stall.reverse();
        stall
    }

    /// Phase 2b: builds update enables and full-bit next-state
    /// functions from the stall chain and rollback requests.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have one entry per stage.
    pub fn connect(self, nl: &mut Netlist, stall: Vec<NetId>, rollback: &[NetId]) -> StallSignals {
        let n = self.n;
        assert_eq!(stall.len(), n, "one stall net per stage");
        assert_eq!(rollback.len(), n, "one rollback net per stage");

        // rollback'_k = OR of rollback_i for i >= k (suffix fold).
        let mut rollback_prime = Vec::with_capacity(n);
        let mut acc = nl.zero();
        for k in (0..n).rev() {
            acc = nl.or(rollback[k], acc);
            rollback_prime.push(nl.label(format!("rollbackq.{k}"), acc));
        }
        rollback_prime.reverse();

        // ue_k = full_k ∧ ¬stall_k ∧ ¬rollback'_k.
        let mut ue = Vec::with_capacity(n);
        for k in 0..n {
            let ns = nl.not(stall[k]);
            let nr = nl.not(rollback_prime[k]);
            let a = nl.and(self.full[k], ns);
            let u = nl.and(a, nr);
            ue.push(nl.label(format!("ue.{k}"), u));
        }

        // fullb.s := (ue_{s-1} ∨ stall_s) ∧ ¬rollback'_s.
        for s in 1..n {
            let fill = nl.or(ue[s - 1], stall[s]);
            let nr = nl.not(rollback_prime[s]);
            let next = nl.and(fill, nr);
            nl.connect(self.full_regs[s - 1], next);
        }

        StallSignals {
            stall,
            ue,
            rollback_prime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Simulator;

    /// Builds a 4-stage engine with dhaz/ext/rollback inputs for direct
    /// stimulation.
    fn harness(n: usize) -> (Netlist, Vec<NetId>, Vec<NetId>) {
        let mut nl = Netlist::new("stall");
        let engine = StallEngine::declare(&mut nl, n, true);
        let dhaz: Vec<NetId> = (0..n).map(|k| nl.input(format!("dhaz.{k}"), 1)).collect();
        let rb: Vec<NetId> = (0..n).map(|k| nl.input(format!("rb.{k}"), 1)).collect();
        let stall = engine.build_stalls(&mut nl, &dhaz);
        engine.connect(&mut nl, stall, &rb);
        (nl, dhaz, rb)
    }

    fn get(sim: &Simulator, name: &str) -> u64 {
        sim.get_by_name(name).unwrap()
    }

    #[test]
    fn pipeline_fills_one_stage_per_cycle() {
        let (nl, _, _) = harness(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.settle();
        assert_eq!(get(&sim, "full.0"), 1);
        assert_eq!(get(&sim, "full.1"), 0);
        sim.step();
        sim.settle();
        assert_eq!(get(&sim, "full.1"), 1);
        assert_eq!(get(&sim, "full.2"), 0);
        sim.step();
        sim.step();
        sim.settle();
        for k in 0..4 {
            assert_eq!(get(&sim, &format!("full.{k}")), 1, "full.{k}");
            assert_eq!(get(&sim, &format!("ue.{k}")), 1, "ue.{k}");
        }
    }

    #[test]
    fn stall_propagates_upstream_only() {
        let (nl, dhaz, _) = harness(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(4); // fill
        sim.set_input(dhaz[2], 1);
        sim.settle();
        // Stages 0..2 stall; stage 3 keeps running.
        assert_eq!(get(&sim, "stall.0"), 1);
        assert_eq!(get(&sim, "stall.1"), 1);
        assert_eq!(get(&sim, "stall.2"), 1);
        assert_eq!(get(&sim, "stall.3"), 0);
        assert_eq!(get(&sim, "ue.3"), 1);
        assert_eq!(get(&sim, "ue.2"), 0);
        // After the edge, stage 3 drains (bubble) while 1..2 stay full.
        sim.step();
        sim.settle();
        assert_eq!(get(&sim, "full.3"), 0, "bubble enters stage 3");
        assert_eq!(get(&sim, "full.2"), 1);
        assert_eq!(get(&sim, "full.1"), 1);
    }

    #[test]
    fn bubble_removal() {
        // A bubble between two full stages is absorbed: the paper's
        // "includes removal of pipeline bubbles if possible".
        let (nl, dhaz, _) = harness(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(4);
        // Create a bubble in stage 2 by stalling stage 1 one cycle.
        sim.set_input(dhaz[1], 1);
        sim.step();
        sim.set_input(dhaz[1], 0);
        sim.settle();
        assert_eq!(get(&sim, "full.2"), 0);
        assert_eq!(get(&sim, "full.1"), 1);
        // Now stall stage 3 (ext); stage 2 is empty so stages 0..1 can
        // still advance into it.
        sim.set_input_by_name("ext.3", 1).unwrap();
        sim.settle();
        assert_eq!(get(&sim, "stall.3"), 1);
        assert_eq!(get(&sim, "stall.2"), 0, "empty stage does not stall");
        assert_eq!(get(&sim, "ue.1"), 1, "bubble gets filled");
        sim.step();
        sim.settle();
        assert_eq!(get(&sim, "full.2"), 1, "bubble absorbed");
        assert_eq!(
            get(&sim, "full.3"),
            1,
            "stalled stage keeps its instruction"
        );
    }

    #[test]
    fn empty_stage_never_stalls() {
        let (nl, dhaz, _) = harness(3);
        let mut sim = Simulator::new(&nl).unwrap();
        // Only stage 0 full; assert dhaz on empty stage 1.
        sim.set_input(dhaz[1], 1);
        sim.settle();
        assert_eq!(get(&sim, "stall.1"), 0);
        assert_eq!(get(&sim, "ue.0"), 1);
    }

    #[test]
    fn rollback_squashes_younger_stages() {
        let (nl, _, rb) = harness(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(4); // fill
        sim.set_input(rb[2], 1);
        sim.settle();
        // rollback' covers stages 0..2; stage 3 unaffected.
        assert_eq!(get(&sim, "rollbackq.0"), 1);
        assert_eq!(get(&sim, "rollbackq.2"), 1);
        assert_eq!(get(&sim, "rollbackq.3"), 0);
        assert_eq!(get(&sim, "ue.0"), 0);
        assert_eq!(get(&sim, "ue.2"), 0);
        assert_eq!(get(&sim, "ue.3"), 1);
        sim.step();
        sim.set_input(rb[2], 0);
        sim.settle();
        assert_eq!(get(&sim, "full.1"), 0, "squashed");
        assert_eq!(get(&sim, "full.2"), 0, "squashed");
        assert_eq!(
            get(&sim, "full.3"),
            0,
            "stage 3 advanced normally; 2 was squashed"
        );
    }

    #[test]
    fn rollback_clears_stalled_stage() {
        // The strengthening over the paper's literal equations: a
        // stalled stage must still be squashed.
        let (nl, dhaz, rb) = harness(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(4);
        sim.set_input(dhaz[1], 1); // stage 1 stalls
        sim.set_input(rb[3], 1); // squash everything
        sim.settle();
        assert_eq!(get(&sim, "stall.1"), 1);
        sim.step();
        sim.settle();
        assert_eq!(get(&sim, "full.1"), 0, "stalled stage squashed");
    }
}
