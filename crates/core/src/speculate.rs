//! Speculation hardware (paper §5).
//!
//! For each [`crate::SpeculationSpec`] the transformation adds:
//!
//! * a **guess substitution** at the consuming stage — for operands
//!   that would otherwise interlock, the guess is used whenever the
//!   forwarded value is not yet available; for speculated external
//!   inputs (the precise-interrupt construction) the guess replaces the
//!   input entirely;
//! * a **guess pipeline**: the used value travels with the instruction
//!   in registers `spec.<name>.<j>`;
//! * a **comparison at the resolve stage**, gated by `full ∧ ¬stall`
//!   ("in order to ensure that the input operands are valid"), raising
//!   `rollback` on mismatch;
//! * optional **fixups** repairing architectural registers on rollback
//!   (Smith–Pleszkun-style precise state).
//!
//! The guessed value itself never enters the correctness argument: a
//! wrong guess only costs cycles.

use crate::options::SpeculationSpec;
use autopipe_hdl::{NetId, Netlist, RegId};

/// Declared guess-pipeline registers for one speculation.
#[derive(Debug, Clone)]
pub struct SpecPipes {
    /// `(RegId, output)` for stages `stage+1 ..= resolve_stage`.
    pub regs: Vec<(RegId, NetId)>,
    /// Width of the speculated value.
    pub width: u32,
}

impl SpecPipes {
    /// Declares the pipe registers (not yet connected).
    pub fn declare(nl: &mut Netlist, spec: &SpeculationSpec, width: u32) -> SpecPipes {
        let regs = (spec.stage + 1..=spec.resolve_stage)
            .map(|j| nl.register(format!("spec.{}.{j}", spec.name), width, 0))
            .collect();
        SpecPipes { regs, width }
    }

    /// The piped value visible at the resolve stage.
    pub fn at_resolve(&self) -> NetId {
        self.regs.last().expect("resolve_stage > stage").1
    }

    /// Connects the pipe: the first register loads the used guess with
    /// `ue[stage]`, each later one shifts with `ue[j-1]`.
    pub fn connect(&self, nl: &mut Netlist, spec: &SpeculationSpec, used: NetId, ue: &[NetId]) {
        let mut prev = used;
        for (offset, &(reg, out)) in self.regs.iter().enumerate() {
            let j = spec.stage + 1 + offset;
            nl.connect_en(reg, prev, ue[j - 1]);
            prev = out;
        }
    }
}

/// Builds the rollback request of one speculation: active when the
/// resolve stage holds a valid (full, unstalled) instruction whose
/// piped guess disagrees with the actual value.
pub fn rollback_request(
    nl: &mut Netlist,
    piped: NetId,
    actual: NetId,
    full_rs: NetId,
    stall_rs: NetId,
) -> NetId {
    let mismatch = nl.ne(piped, actual);
    let not_stalled = nl.not(stall_rs);
    let valid = nl.and(full_rs, not_stalled);
    nl.and(valid, mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_psm::Fragment;

    fn dummy_spec(stage: usize, resolve: usize) -> SpeculationSpec {
        let mut g = autopipe_hdl::Netlist::new("g");
        let z = g.constant(0, 8);
        g.label("guess", z);
        SpeculationSpec {
            name: "t".into(),
            stage,
            port: "X".into(),
            guess: Fragment::new(g).unwrap(),
            resolve_stage: resolve,
            actual: crate::ActualSource::Reread,
            fixups: vec![],
        }
    }

    #[test]
    fn pipes_span_guess_to_resolve() {
        let mut nl = autopipe_hdl::Netlist::new("t");
        let spec = dummy_spec(0, 3);
        let pipes = SpecPipes::declare(&mut nl, &spec, 8);
        assert_eq!(pipes.regs.len(), 3);
        assert_eq!(pipes.at_resolve(), pipes.regs[2].1);
    }

    #[test]
    fn rollback_gated_by_full_and_not_stalled() {
        use autopipe_hdl::Simulator;
        let mut nl = autopipe_hdl::Netlist::new("t");
        let piped = nl.input("piped", 8);
        let actual = nl.input("actual", 8);
        let full = nl.input("full", 1);
        let stall = nl.input("stall", 1);
        let rb = rollback_request(&mut nl, piped, actual, full, stall);
        nl.label("rb", rb);
        let mut sim = Simulator::new(&nl).unwrap();
        let cases = [
            // (piped, actual, full, stall) -> rollback
            (1u64, 2u64, 1u64, 0u64, 1u64),
            (1, 1, 1, 0, 0),
            (1, 2, 0, 0, 0),
            (1, 2, 1, 1, 0),
        ];
        for (p, a, f, s, want) in cases {
            sim.set_input(piped, p);
            sim.set_input(actual, a);
            sim.set_input(full, f);
            sim.set_input(stall, s);
            sim.settle();
            assert_eq!(sim.get(rb), want, "case {p} {a} {f} {s}");
        }
    }
}
