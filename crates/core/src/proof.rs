//! Proof generation (paper §6).
//!
//! The paper's tool emits, alongside the hardware, the artifacts needed
//! to verify the *transformation*: the correctness of the prepared
//! sequential machine is assumed. We reproduce the "four-tuple" —
//! design, specification, human-readable proof, machine-checked proof —
//! as follows:
//!
//! 1. **Machine-checkable obligations** ([`Obligation`]): boolean nets
//!    in the generated netlist that must be invariantly 1. Obligations
//!    of class [`ObligationClass::Combinational`] are tautologies over
//!    one cycle's signals (one SAT call each); class
//!    [`ObligationClass::Inductive`] obligations involve monitor
//!    registers relating consecutive cycles and are discharged by
//!    k-induction / BMC in `autopipe-verify`.
//! 2. A **human-readable proof document** ([`proof_document`]) that
//!    instantiates the paper's Lemma 1–3 structure with the concrete
//!    stages, registers and forwarding paths of the machine at hand.
//!
//! The global data-consistency theorem (`R_I^T = R_S^i`) and liveness
//! are discharged against the sequential reference by the
//! scheduling-function co-simulation checker and the product-machine
//! BMC in `autopipe-verify`; this module records those obligations in
//! the document so the proof index is complete.

use crate::report::SynthReport;
use autopipe_hdl::{NetId, Netlist};

/// How an obligation is discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationClass {
    /// Single-cycle tautology over the control signals.
    Combinational,
    /// Relates consecutive cycles via a monitor register; needs
    /// induction or BMC.
    Inductive,
}

/// A boolean net that the generated design must keep at 1 forever.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Stable identifier, e.g. `"no_overtake.3"`.
    pub name: String,
    /// Discharge class.
    pub class: ObligationClass,
    /// The net (width 1).
    pub net: NetId,
}

/// Emits the stall-engine obligations into `nl`.
///
/// `full`, `stall`, `ue`, `rollback_prime` are the per-stage control
/// nets. When `monitors` is set, the temporal obligations add one
/// monitor register per property ("stall keeps the instruction",
/// "update fills the successor stage").
pub fn emit_stall_obligations(
    nl: &mut Netlist,
    full: &[NetId],
    stall: &[NetId],
    ue: &[NetId],
    rollback_prime: &[NetId],
    monitors: bool,
) -> Vec<Obligation> {
    let n = full.len();
    let mut obs = Vec::new();
    let implies = |nl: &mut Netlist, a: NetId, b: NetId| {
        let na = nl.not(a);
        nl.or(na, b)
    };
    for k in 0..n {
        // ue_k ⇒ full_k (an empty stage never updates — Lemma 1.3's
        // structural backbone).
        let net = implies(nl, ue[k], full[k]);
        obs.push(Obligation {
            name: format!("ue_implies_full.{k}"),
            class: ObligationClass::Combinational,
            net: nl.label(format!("ob.ue_implies_full.{k}"), net),
        });
        // ue_k ⇒ ¬stall_k.
        let ns = nl.not(stall[k]);
        let net = implies(nl, ue[k], ns);
        obs.push(Obligation {
            name: format!("ue_implies_not_stall.{k}"),
            class: ObligationClass::Combinational,
            net: nl.label(format!("ob.ue_implies_not_stall.{k}"), net),
        });
        // stall_k ⇒ full_k (empty stages never stall — enables bubble
        // removal).
        let net = implies(nl, stall[k], full[k]);
        obs.push(Obligation {
            name: format!("stall_implies_full.{k}"),
            class: ObligationClass::Combinational,
            net: nl.label(format!("ob.stall_implies_full.{k}"), net),
        });
    }
    for k in 1..n {
        // No overtaking: if stage k-1 pushes into a full stage k, then
        // stage k moves too (or the pipe is being squashed). Violation
        // would overwrite a live instruction — the key hand-shake of
        // Lemma 1.2.
        let push = nl.and(ue[k - 1], full[k]);
        let ok = nl.or(ue[k], rollback_prime[k]);
        let net = implies(nl, push, ok);
        obs.push(Obligation {
            name: format!("no_overtake.{k}"),
            class: ObligationClass::Combinational,
            net: nl.label(format!("ob.no_overtake.{k}"), net),
        });
    }
    if monitors {
        for k in 1..n {
            // prev(full_k ∧ stall_k ∧ ¬rb'_k) ⇒ full_k : a stalled
            // stage keeps its instruction.
            let nrb = nl.not(rollback_prime[k]);
            let held = nl.and(full[k], stall[k]);
            let held = nl.and(held, nrb);
            let (m, mo) = nl.register(format!("mon.stall_hold.{k}"), 1, 0);
            nl.connect(m, held);
            let net = implies(nl, mo, full[k]);
            obs.push(Obligation {
                name: format!("stall_keeps_full.{k}"),
                class: ObligationClass::Inductive,
                net: nl.label(format!("ob.stall_keeps_full.{k}"), net),
            });
            // prev(ue_{k-1}) ⇒ full_k : an update fills the successor.
            let (m2, m2o) = nl.register(format!("mon.ue_fill.{k}"), 1, 0);
            nl.connect(m2, ue[k - 1]);
            let net = implies(nl, m2o, full[k]);
            obs.push(Obligation {
                name: format!("ue_fills.{k}"),
                class: ObligationClass::Inductive,
                net: nl.label(format!("ob.ue_fills.{k}"), net),
            });
        }
    }
    obs
}

/// Generates the human-readable proof document for a transformed
/// machine — the instantiation of the paper's §6 for this design.
pub fn proof_document(report: &SynthReport, obligations: &[Obligation]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let n = report.n_stages;
    let _ = writeln!(s, "CORRECTNESS ARGUMENT for pipelined `{}`", report.machine);
    let _ = writeln!(s, "={}", "=".repeat(40));
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Setting. The prepared sequential machine with {n} stages is assumed \
correct; this document covers exactly the logic added by the transformation \
(stall engine, forwarding, interlock, speculation), following Kroening & \
Paul, DAC 2001, Section 6."
    );
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Definition (scheduling function). I(k,T) is defined inductively:"
    );
    let _ = writeln!(s, "  I(k,0) = 0;");
    let _ = writeln!(s, "  I(k,T) = I(k,T-1)        if not ue_k^(T-1)");
    let _ = writeln!(s, "  I(0,T) = I(0,T-1)+1      if ue_0^(T-1)");
    let _ = writeln!(s, "  I(k,T) = I(k-1,T-1)      if ue_k^(T-1), k > 0");
    let _ = writeln!(s);
    let _ = writeln!(s, "Lemma 1 (scheduling function properties).");
    let _ = writeln!(
        s,
        "  (1) I(k,T) increases by one exactly when ue_k is active;"
    );
    let _ = writeln!(
        s,
        "  (2) adjoining stages satisfy I(k-1,T) ∈ {{I(k,T), I(k,T)+1}};"
    );
    let _ = writeln!(s, "  (3) full_k = 0  ⇔  I(k-1,T) = I(k,T).");
    let _ = writeln!(
        s,
        "  Discharged: runtime scheduling-function tracker (autopipe-verify::cosim) \
asserts (1)-(3) every cycle; the structural backbone is covered by the \
machine-checked obligations below (ue_implies_full, no_overtake, \
stall_keeps_full, ue_fills)."
    );
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Lemma 2 (no intervening writes). For every forwarded read with an"
    );
    let _ = writeln!(
        s,
        "active hit, R[x] is unmodified between instruction I(top,T)+1 and"
    );
    let _ = writeln!(
        s,
        "the reader: stages above `top` show no hit, and by Lemma 1 the"
    );
    let _ = writeln!(
        s,
        "difference of scheduling functions counts exactly the full stages"
    );
    let _ = writeln!(s, "between reader and top, none of which writes R[x].");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Lemma 3 (forwarded inputs are correct). By induction from stage"
    );
    let _ = writeln!(
        s,
        "n-1 upward: if the hit is at the write stage, g = f_w_R (the value"
    );
    let _ = writeln!(
        s,
        "being written); otherwise g is the designated forwarding register"
    );
    let _ = writeln!(
        s,
        "(f_top_Q when written this cycle, Q.top otherwise), whose validity"
    );
    let _ = writeln!(
        s,
        "is certified by the pipelined valid bit; invalid cases raise dhaz"
    );
    let _ = writeln!(s, "and stall the reader. Instantiated paths:");
    for p in &report.forwards {
        let _ = writeln!(
            s,
            "    - stage {} reads `{}` (w = {}): hits {:?}{}",
            p.stage,
            p.target,
            p.write_stage,
            p.hit_stages,
            match (&p.source, p.interlock_only) {
                (_, true) => ", interlock-only (dhaz on any hit)".to_string(),
                (Some(q), _) => format!(", Q = `{q}` with valid-bit chain"),
                (None, _) => ", write-stage forwarding only".to_string(),
            }
        );
    }
    let _ = writeln!(
        s,
        "  Discharged: per-cycle by the co-simulation checker (g-value vs \
sequential reference at the scheduled instruction), and by bounded product-\
machine equivalence in autopipe-verify::equiv."
    );
    let _ = writeln!(s);
    if !report.speculations.is_empty() {
        let _ = writeln!(s, "Speculation. Guessed values never enter the correctness");
        let _ = writeln!(
            s,
            "argument: each speculated input is compared against the actual"
        );
        let _ = writeln!(
            s,
            "value at the resolve stage (gated by full ∧ ¬stall), and a"
        );
        let _ = writeln!(
            s,
            "mismatch squashes all younger stages via rollback'. A wrong"
        );
        let _ = writeln!(s, "guess therefore only costs cycles (paper §5).");
        for sp in &report.speculations {
            let _ = writeln!(
                s,
                "    - `{}`: guess at stage {}, verified at stage {}",
                sp.name, sp.stage, sp.resolve_stage
            );
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(
        s,
        "Data consistency (Theorem). For every visible register R written"
    );
    let _ = writeln!(
        s,
        "by stage k and every cycle T with instruction I(k,T)=i in stage k:"
    );
    let _ = writeln!(s, "    R_I^T = R_S^i.");
    let _ = writeln!(
        s,
        "Liveness. Every fetched instruction retires within a bounded"
    );
    let _ = writeln!(s, "number of cycles in the absence of external stalls.");
    let _ = writeln!(s);
    let _ = writeln!(s, "Machine-checked obligations ({}):", obligations.len());
    for ob in obligations {
        let _ = writeln!(
            s,
            "    [{}] {}",
            match ob.class {
                ObligationClass::Combinational => "SAT ",
                ObligationClass::Inductive => "IND ",
            },
            ob.name
        );
    }
    s
}
