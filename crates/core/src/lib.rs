//! # autopipe-synth — the automated pipeline transformation
//!
//! This crate is the reproduction of the core contribution of
//! *Automated Pipeline Design* (Kroening & Paul, DAC 2001): a tool that
//! takes a **prepared sequential machine** (an `autopipe-psm`
//! [`Plan`](autopipe_psm::Plan)) and produces a **pipelined machine** by
//! synthesizing, exactly as the paper prescribes:
//!
//! * the **stall engine** with full bits, stall/update-enable signals
//!   and the rollback (squashing) mechanism ([`stall`], paper §3),
//! * the **forwarding logic** — pipelined valid bits, per-stage hit
//!   signals using the precomputed `Rwe.j`/`Rwa.j`, and a top-hit
//!   multiplexer network in either the linear-cascade form of Figure 2
//!   or the find-first-one + balanced-tree form the paper recommends for
//!   deep pipelines ([`forward`], §4),
//! * the **interlock** (`dhaz`) signals covering not-yet-valid forwards
//!   and transitive hazards (§4.1.1),
//! * optional **speculation** hardware: guess substitution, guess
//!   pipelining, compare-at-resolve and rollback, supporting branch
//!   prediction and precise interrupts ([`speculate`], §5),
//! * machine-checkable **proof obligations** plus a generated
//!   human-readable proof document mirroring the paper's Lemma 1–3
//!   structure ([`proof`], §6) — the paper's "four-tuple" of design,
//!   spec, human proof and machine proof.
//!
//! The entry point is [`PipelineSynthesizer::run`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forward;
pub mod options;
pub mod pipeline;
pub mod proof;
pub mod report;
pub mod speculate;
pub mod stall;

pub use options::{
    ActualSource, Fixup, FixupValue, ForwardMode, ForwardingSpec, MuxTopology, SpeculationSpec,
    SynthOptions,
};
pub use pipeline::{ControlNets, PipelineSynthesizer, PipelinedMachine, SynthError};
pub use proof::{Obligation, ObligationClass};
pub use report::{ForwardPathInfo, StageCost, SynthReport};
