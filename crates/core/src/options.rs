//! Transformation options: what the paper's designer specifies.
//!
//! The paper keeps the manual effort deliberately small: the designer
//! names the forwarding registers ("one in the execute stage and one in
//! the memory stage" for the DLX), states which inputs are speculative,
//! and everything else is derived. [`SynthOptions`] captures exactly
//! that input, plus engineering knobs (mux topology, external stall
//! ports, verification monitors).

use autopipe_psm::Fragment;

/// Topology of the top-hit select network (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MuxTopology {
    /// The linear multiplexer cascade of Figure 2. Depth grows linearly
    /// with the number of hit stages.
    #[default]
    Chain,
    /// The paper's suggested optimization for larger pipelines: a
    /// find-first-one circuit plus a balanced AND-OR select tree.
    /// Logarithmic depth.
    Tree,
}

/// How reads of a forwarded target are protected in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardMode {
    /// Full forwarding (§4): values are bypassed from the designated
    /// forwarding register `source` (e.g. `"C"`) in intermediate stages
    /// and from the write data at the write stage; unresolvable cases
    /// interlock.
    ///
    /// `source: None` forwards only from the write stage (hits in
    /// intermediate stages always interlock) — useful as a design point
    /// and for targets like the PC whose only hit stage *is* the write
    /// stage.
    Forward {
        /// Base name of the designated forwarding register.
        source: Option<String>,
    },
    /// No forwarding hardware: any hit stalls the reader until the
    /// writer has retired past the write stage (scoreboard-style
    /// interlock). The correctness baseline of experiment E4.
    InterlockOnly,
    /// No protection at all. **Produces an incorrect pipeline** when
    /// hazards occur; exists so tests and the ablation benches can
    /// demonstrate that the co-simulation checker catches the
    /// violation.
    Unprotected,
}

/// Per-target forwarding designation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardingSpec {
    /// The forwarded register or file base name (e.g. `"GPR"`, `"PC"`).
    pub target: String,
    /// Protection mode.
    pub mode: ForwardMode,
}

impl ForwardingSpec {
    /// Full forwarding of `target` via the designated register
    /// `source`.
    pub fn forward(target: impl Into<String>, source: impl Into<String>) -> ForwardingSpec {
        ForwardingSpec {
            target: target.into(),
            mode: ForwardMode::Forward {
                source: Some(source.into()),
            },
        }
    }

    /// Forwarding of `target` from the write stage only.
    pub fn forward_from_write_stage(target: impl Into<String>) -> ForwardingSpec {
        ForwardingSpec {
            target: target.into(),
            mode: ForwardMode::Forward { source: None },
        }
    }

    /// Interlock-only protection of `target`.
    pub fn interlock(target: impl Into<String>) -> ForwardingSpec {
        ForwardingSpec {
            target: target.into(),
            mode: ForwardMode::InterlockOnly,
        }
    }

    /// No protection (ablation only).
    pub fn unprotected(target: impl Into<String>) -> ForwardingSpec {
        ForwardingSpec {
            target: target.into(),
            mode: ForwardMode::Unprotected,
        }
    }
}

/// Where the true value of a speculated input comes from (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActualSource {
    /// Re-read the speculated operand through the ordinary forwarding
    /// network at the resolve stage (where it is guaranteed resolvable);
    /// compare against the piped guess. No state repair needed — the
    /// correct value flows through the architectural path after the
    /// squash. Used for branch prediction.
    Reread,
    /// An external input sampled at the resolve stage (e.g. the
    /// interrupt line for the paper's precise-interrupt construction).
    /// Usually combined with [`Fixup`]s that repair architectural state.
    External(String),
}

/// Value written into a register by a rollback fixup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixupValue {
    /// A constant (e.g. the interrupt handler address).
    Const(u64),
    /// An external input.
    External(String),
    /// The value of a register instance as visible at the resolve stage
    /// (e.g. the victim's own PC, piped along, for an EPC register).
    Instance(String),
    /// The speculation's own actual value — the paper's "the correct
    /// value is used as input for subsequent calculations". Typically
    /// repairs the register the guess function reads, so the re-fetch
    /// after the squash proceeds with the truth.
    Actual,
}

/// On rollback, overwrite the newest instance of `register` with
/// `value` — the paper's "the correct value is used as input for
/// subsequent calculations", in the Smith–Pleszkun precise-interrupt
/// style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixup {
    /// Base name of the register to repair.
    pub register: String,
    /// Replacement value.
    pub value: FixupValue,
}

/// A speculated input (§5): the designer states *which input value is
/// speculative and which value is speculated on*.
#[derive(Debug, Clone)]
pub struct SpeculationSpec {
    /// Name for reports and generated signal names.
    pub name: String,
    /// Stage consuming the guessed input.
    pub stage: usize,
    /// Input port of that stage being speculated.
    pub port: String,
    /// The guess function; inputs resolve like stage inputs (registers
    /// and external inputs only), result labelled `"guess"`. Its
    /// quality affects performance only, never correctness.
    pub guess: Fragment,
    /// Stage at which the actual value is compared (must be reachable
    /// with the operand resolvable; the comparison is gated by
    /// `full ∧ ¬stall` as the paper requires).
    pub resolve_stage: usize,
    /// Where the actual value comes from.
    pub actual: ActualSource,
    /// State repairs applied on rollback.
    pub fixups: Vec<Fixup>,
}

/// All designer-supplied inputs of the transformation.
#[derive(Debug, Clone, Default)]
pub struct SynthOptions {
    /// Per-target forwarding designations.
    pub forwarding: Vec<ForwardingSpec>,
    /// Speculated inputs.
    pub speculation: Vec<SpeculationSpec>,
    /// Mux network topology.
    pub topology: MuxTopology,
    /// Create a 1-bit `ext.k` stall input per stage (the paper's
    /// external stall condition, e.g. slow memory).
    pub ext_stall_inputs: bool,
    /// Add the temporal verification monitor registers emitted by
    /// [`crate::proof`]. Disable for hardware-cost measurements.
    pub monitors: bool,
    /// Include the paper's transitive hazard term (§4.1.1: "we enable
    /// dhaz_k if the data hazard signal of stage top is active").
    ///
    /// Ablation finding, proved both ways by the test suite:
    ///
    /// * when every hazardous forwarding source is *adjacent* to its
    ///   reader (the DLX: all deep-stage `dhaz` are constant 0), the
    ///   term is subsumed by the §3 stall chain and the lockstep miter
    ///   proves both variants cycle-exact equivalent
    ///   (`transitive_dhaz_term_is_equivalent_on_single_read_stage_machines`);
    /// * when a write stage's `Din` depends on a *hazardous read of its
    ///   own* and a bubble sits between reader and writer, the stall
    ///   chain breaks at the empty stage and only this term keeps the
    ///   reader from latching the unfinished value — dropping it
    ///   produces a data-consistency violation that the checker
    ///   catches (`crates/verify/tests/transitive_dhaz.rs`).
    ///
    /// Kept on by default; disable only for the ablation experiments.
    pub transitive_dhaz: bool,
}

impl SynthOptions {
    /// Options with full forwarding for one target.
    pub fn new() -> SynthOptions {
        SynthOptions {
            monitors: true,
            transitive_dhaz: true,
            ..Default::default()
        }
    }

    /// Ablation: drop the §4.1.1 transitive hazard term.
    #[must_use]
    pub fn without_transitive_dhaz(mut self) -> Self {
        self.transitive_dhaz = false;
        self
    }

    /// Adds a forwarding designation.
    #[must_use]
    pub fn with_forwarding(mut self, spec: ForwardingSpec) -> Self {
        self.forwarding.push(spec);
        self
    }

    /// Adds a speculation designation.
    #[must_use]
    pub fn with_speculation(mut self, spec: SpeculationSpec) -> Self {
        self.speculation.push(spec);
        self
    }

    /// Sets the mux topology.
    #[must_use]
    pub fn with_topology(mut self, t: MuxTopology) -> Self {
        self.topology = t;
        self
    }

    /// Enables per-stage external stall inputs.
    #[must_use]
    pub fn with_ext_stalls(mut self) -> Self {
        self.ext_stall_inputs = true;
        self
    }

    /// Disables verification monitor registers.
    #[must_use]
    pub fn without_monitors(mut self) -> Self {
        self.monitors = false;
        self
    }

    /// The forwarding mode declared for `target`, if any.
    pub fn mode_for(&self, target: &str) -> Option<&ForwardMode> {
        self.forwarding
            .iter()
            .find(|f| f.target == target)
            .map(|f| &f.mode)
    }
}
