//! Synthesis report: what hardware the transformation added.
//!
//! The report is both human-readable (its [`std::fmt::Display`] output
//! reproduces Figure 2 in text form for the DLX case study) and
//! machine-readable for the structural tests and experiment harness.

use crate::options::MuxTopology;
use std::fmt;

/// Kind of a forwarded operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardKind {
    /// Register-file read (address comparators generated).
    File,
    /// Plain register loop-back (no address comparison).
    Plain,
}

/// One synthesized forwarding path (one read of one target).
#[derive(Debug, Clone)]
pub struct ForwardPathInfo {
    /// Reading stage `k`.
    pub stage: usize,
    /// Port/alias name of the read (e.g. `"GPRa"`).
    pub port: String,
    /// Forwarded target (e.g. `"GPR"`).
    pub target: String,
    /// Designated forwarding register, if any (e.g. `"C"`).
    pub source: Option<String>,
    /// Stages with hit signals, ascending (e.g. `[2, 3, 4]`).
    pub hit_stages: Vec<usize>,
    /// The write stage `w`.
    pub write_stage: usize,
    /// File or plain.
    pub kind: ForwardKind,
    /// `true` when the path only interlocks (no bypass muxes).
    pub interlock_only: bool,
}

/// One synthesized speculation.
#[derive(Debug, Clone)]
pub struct SpeculationInfo {
    /// Designation name.
    pub name: String,
    /// Guess-consuming stage.
    pub stage: usize,
    /// Speculated port.
    pub port: String,
    /// Resolve (comparison) stage.
    pub resolve_stage: usize,
    /// Number of rollback fixups.
    pub fixups: usize,
}

/// Per-stage attribution of the hazard hardware the transformation
/// added — forwarding paths, interlocks and the structural price of the
/// stage's control cone.
///
/// Produced by
/// [`PipelinedMachine::stage_costs`](crate::PipelinedMachine::stage_costs)
/// from the synthesized netlist's [`autopipe_hdl::NetAnalysis`], this is
/// the record the run-telemetry layer emits on the per-stage trace
/// track. Gate figures come from [`autopipe_hdl::cone_gates`], so cones
/// that share logic overlap rather than partition the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCost {
    /// Stage index `k`.
    pub stage: usize,
    /// Forwarding paths whose read happens at this stage (bypass muxes
    /// generated here).
    pub forward_paths: usize,
    /// Paths at this stage that only interlock (no bypass network).
    pub interlock_paths: usize,
    /// Hit comparators feeding this stage (one per writing stage of
    /// each path).
    pub hit_signals: usize,
    /// Gate-equivalents in the combined combinational cone of this
    /// stage's `stall_k`/`dhaz_k`/`ue_k` control nets.
    pub control_gates: u64,
    /// Arrival time (logic levels) of `stall_k`.
    pub stall_levels: u32,
    /// Arrival time of `dhaz_k`.
    pub dhaz_levels: u32,
    /// Arrival time of `ue_k` (the update-enable, usually the stage's
    /// deepest control signal).
    pub ue_levels: u32,
}

/// Summary of one transformation run.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// Machine name.
    pub machine: String,
    /// Number of stages.
    pub n_stages: usize,
    /// Selected mux topology.
    pub topology: MuxTopology,
    /// All forwarding paths.
    pub forwards: Vec<ForwardPathInfo>,
    /// All speculations.
    pub speculations: Vec<SpeculationInfo>,
    /// Number of generated proof obligations.
    pub obligations: usize,
    /// Valid-bit registers added.
    pub valid_bits: usize,
    /// Guess pipe registers added.
    pub guess_regs: usize,
}

impl fmt::Display for SynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline transformation of `{}` ({} stages, {:?} select network)",
            self.machine, self.n_stages, self.topology
        )?;
        for p in &self.forwards {
            let kind = match p.kind {
                ForwardKind::File => "file",
                ForwardKind::Plain => "register",
            };
            let src = match (&p.source, p.interlock_only) {
                (_, true) => "interlock only".to_string(),
                (Some(q), _) => format!("via `{q}`"),
                (None, _) => "write-stage only".to_string(),
            };
            writeln!(
                f,
                "  stage {} reads {kind} `{}` as `{}` (written by stage {}): hits at {:?}, {src}",
                p.stage, p.target, p.port, p.write_stage, p.hit_stages
            )?;
        }
        for s in &self.speculations {
            writeln!(
                f,
                "  speculation `{}`: stage {} port `{}`, resolved at stage {} ({} fixups)",
                s.name, s.stage, s.port, s.resolve_stage, s.fixups
            )?;
        }
        writeln!(
            f,
            "  {} proof obligations, {} valid bits, {} guess registers",
            self.obligations, self.valid_bits, self.guess_regs
        )
    }
}
