//! Speculation end to end (paper §5): precise interrupts on the DLX
//! and branch-predicted fetch on the branchy companion machine. In
//! both cases the guessed value affects performance only — never the
//! committed architectural state.

use autopipe_dlx::asm::assemble;
use autopipe_dlx::branchy::{
    branchy_program, branchy_synth_options, build_branchy_spec, reference_run, BInstr, Predictor,
};
use autopipe_dlx::machine::{dlx_interrupt_options, load_program};
use autopipe_dlx::{build_dlx_spec, DlxConfig, Instr};
use autopipe_synth::{PipelineSynthesizer, PipelinedMachine};
use autopipe_verify::equiv::{retirement_miter, simulate_property};
use autopipe_verify::Cosim;

fn words(prog: &[Instr]) -> Vec<u32> {
    prog.iter().map(|i| i.encode()).collect()
}

const ISR: u32 = 0x40;

fn interrupt_machine() -> (DlxConfig, PipelinedMachine) {
    let cfg = DlxConfig::default().with_interrupts();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_interrupt_options(ISR))
        .run(&plan)
        .unwrap();
    (cfg, pm)
}

/// The main program stores `100+4k` at word `k` forever; the handler
/// at `ISR` stores a marker and halts.
fn interrupt_program(cfg: DlxConfig) -> Vec<u32> {
    let image = autopipe_dlx::asm::assemble_image(
        "       addi r1, r0, 0
         loop:  addi r2, r1, 100
                sw   r2, 0(r1)
                addi r1, r1, 4
                j    loop
                nop
         .org 0x40                 ; the interrupt handler
                addi r3, r0, 7
                sw   r3, 396(r0)   ; word 99
                halt
                nop",
    )
    .unwrap();
    assert!(image.len() <= 1 << cfg.imem_aw);
    image
}

#[test]
fn precise_interrupt_squashes_redirects_and_records_epc() {
    let (cfg, pm) = interrupt_machine();
    let mut sim = pm.simulator().unwrap();
    load_program(&mut sim, cfg, &interrupt_program(cfg));
    let irq = pm.netlist.find("irq").unwrap();
    let rollback = pm.netlist.find("spec.irq.rollback").unwrap();
    let retire_ue = *pm.control.ue.last().unwrap();

    // Let the main loop run and commit some stores.
    sim.set_input(irq, 0);
    let mut retired = 0u64;
    while retired < 12 {
        sim.settle();
        if sim.get(retire_ue) == 1 {
            retired += 1;
        }
        sim.clock();
    }
    // Raise the interrupt until a rollback is accepted (the WB stage
    // must hold a full, unstalled instruction), then drop it.
    sim.set_input(irq, 1);
    let mut fired = false;
    for _ in 0..20 {
        sim.settle();
        if sim.get(rollback) == 1 {
            fired = true;
            sim.clock();
            break;
        }
        sim.clock();
    }
    assert!(fired, "interrupt rollback must fire");
    sim.set_input(irq, 0);

    // The handler must now run to completion.
    let dmem = {
        let nl = sim.netlist();
        nl.mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
            .unwrap()
    };
    for _ in 0..100 {
        sim.step();
    }
    assert_eq!(sim.mem_value(dmem, 99), 7, "handler marker missing");

    // Precision: the committed stores form a gap-free prefix
    // (word k holds 100 + 4k).
    let mut m = 0usize;
    while sim.mem_value(dmem, m) == 100 + 4 * m as u64 {
        m += 1;
    }
    for k in m..90 {
        assert_eq!(sim.mem_value(dmem, k), 0, "hole or stray write at {k}");
    }
    assert!(m >= 1, "some stores must have committed before the irq");

    // EPC holds the victim's address (inside the main loop).
    let epc = pm
        .plan
        .instances
        .iter()
        .position(|i| i.base == "EPC")
        .map(|ii| pm.skel.inst_regs[ii].0)
        .unwrap();
    let victim = sim.reg_value(epc);
    assert!(
        (0..6).contains(&victim),
        "EPC = {victim:#x} must point into the main loop"
    );
}

#[test]
fn interrupt_machine_is_consistent_without_interrupts() {
    // With irq tied low the interrupt machinery must be inert: run the
    // full co-simulation (checks are disabled for speculative machines,
    // so compare final state manually against the plain machine).
    let (cfg, pm) = interrupt_machine();
    let prog = assemble(
        "   addi r1, r0, 5
            addi r2, r1, 6
            add  r3, r1, r2
            sw   r3, 36(r0)   ; word 9
            halt
            nop",
    )
    .unwrap();
    let mut cosim = Cosim::new(&pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &words(&prog));
    load_program(cosim.seq_sim_mut(), cfg, &words(&prog));
    cosim.run(80).unwrap();
    // 5 + 11 = 16 at DMEM[9].
    let dmem = {
        let nl = cosim.sim_mut().netlist();
        nl.mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
            .unwrap()
    };
    assert_eq!(cosim.sim_mut().peek_mem(dmem, 9), 16);
}

// ---------------------------------------------------------------------
// Branchy machine: predicted fetch.
// ---------------------------------------------------------------------

fn branchy_pipeline(p: Predictor) -> PipelinedMachine {
    let plan = build_branchy_spec(p).unwrap().plan().unwrap();
    PipelineSynthesizer::new(branchy_synth_options())
        .run(&plan)
        .unwrap()
}

fn load_branchy(sim: &mut dyn autopipe_hdl::Simulate, prog: &[u16]) {
    let nl = sim.netlist();
    let mem = nl
        .mem_ids()
        .find(|m| nl.memory_info(*m).name.ends_with("IMEM"))
        .unwrap();
    for (i, w) in prog.iter().enumerate() {
        sim.poke_mem(mem, i, u64::from(*w));
    }
}

/// Runs the pipelined branchy machine and compares the register file
/// against the pure-Rust reference after the retired count.
fn check_branchy(pm: &PipelinedMachine, prog: &[u16], cycles: u64) -> (u64, u64) {
    let mut cosim = Cosim::new(pm).unwrap();
    load_branchy(cosim.sim_mut(), prog);
    load_branchy(cosim.seq_sim_mut(), prog);
    let stats = cosim.run(cycles).unwrap().clone();
    let want = reference_run(prog, stats.retired);
    let rf = {
        let fi = pm.plan.files.iter().position(|f| f.name == "RF").unwrap();
        pm.skel.file_mems[fi]
    };
    for (i, w) in want.iter().enumerate() {
        assert_eq!(
            cosim.sim_mut().peek_mem(rf, i),
            u64::from(*w),
            "RF[{i}] after {} retirements",
            stats.retired
        );
    }
    (stats.retired, stats.rollbacks)
}

#[test]
fn branchy_straightline_runs_at_full_speed() {
    let pm = branchy_pipeline(Predictor::NextLine);
    // No branches at all: NextLine never mispredicts.
    let prog: Vec<u16> = (0..64)
        .map(|i| {
            BInstr::Alu {
                dst: 1 + (i % 3) as u8,
                src: (i % 4) as u8,
                imm: (i % 16) as u8,
            }
            .encode()
        })
        .collect();
    let (retired, rollbacks) = check_branchy(&pm, &prog, 200);
    assert_eq!(rollbacks, 0);
    assert!(retired >= 190, "CPI ~ 1 expected, retired {retired}");
}

#[test]
fn branchy_taken_branches_cost_rollbacks_but_stay_correct() {
    let pm = branchy_pipeline(Predictor::NextLine);
    // A tight always-taken loop: r0 stays 0.
    let prog = vec![
        BInstr::Alu {
            dst: 1,
            src: 1,
            imm: 1,
        }
        .encode(),
        BInstr::Beqz { src: 0, target: 0 }.encode(),
    ];
    let (retired, rollbacks) = check_branchy(&pm, &prog, 300);
    assert!(rollbacks > 50, "every taken branch must roll back");
    assert!(retired > 100, "the machine still progresses");
}

#[test]
fn predictor_quality_is_performance_only() {
    // Same taken-heavy program under both predictors: identical
    // architecture, different CPI.
    let prog = vec![
        BInstr::Alu {
            dst: 1,
            src: 1,
            imm: 1,
        }
        .encode(),
        BInstr::Beqz { src: 0, target: 0 }.encode(),
    ];
    let cycles = 400;
    let next = branchy_pipeline(Predictor::NextLine);
    let taken = branchy_pipeline(Predictor::AlwaysTaken);
    let (r_next, rb_next) = check_branchy(&next, &prog, cycles);
    let (r_taken, rb_taken) = check_branchy(&taken, &prog, cycles);
    assert!(
        rb_taken < rb_next,
        "always-taken must mispredict less here ({rb_taken} vs {rb_next})"
    );
    assert!(
        r_taken > r_next,
        "better prediction -> more retirements ({r_taken} vs {r_next})"
    );
}

#[test]
fn branchy_random_programs_match_reference() {
    for seed in 0..5 {
        let prog = branchy_program(0.25, seed);
        let pm = branchy_pipeline(Predictor::NextLine);
        check_branchy(&pm, &prog, 400);
    }
}

#[test]
fn branchy_retirement_equivalence_holds_under_speculation() {
    let pm = branchy_pipeline(Predictor::NextLine);
    // A program with early taken branches so mispredictions occur
    // within the checked window. IMEM contents are baked into the
    // netlist via FileDecl init — rebuild with an init program.
    let prog = [
        BInstr::Alu {
            dst: 1,
            src: 1,
            imm: 1,
        },
        BInstr::Beqz { src: 2, target: 4 }, // taken (RF[2]=0)
        BInstr::Alu {
            dst: 2,
            src: 1,
            imm: 3,
        }, // skipped
        BInstr::Alu {
            dst: 3,
            src: 1,
            imm: 5,
        }, // skipped
        BInstr::Alu {
            dst: 2,
            src: 1,
            imm: 7,
        }, // 4: target
        BInstr::Alu {
            dst: 3,
            src: 2,
            imm: 1,
        },
    ];
    let _ = pm;
    // Rebuild the spec with the program as IMEM init so the system is
    // closed for the miter.
    let mut spec = build_branchy_spec(Predictor::NextLine).unwrap();
    for f in &mut spec.files {
        if f.name == "IMEM" {
            f.init = prog.iter().map(|i| u64::from(i.encode())).collect();
        }
    }
    let plan = spec.plan().unwrap();
    let pm = PipelineSynthesizer::new(branchy_synth_options())
        .run(&plan)
        .unwrap();
    let (miter, prop) = retirement_miter(&pm, "RF", 8).unwrap();
    // Simulate the miter far enough for both sides to pass 8 writes.
    assert_eq!(simulate_property(&miter, prop, 120).unwrap(), None);
}

#[test]
fn interrupt_defers_while_the_victim_stage_is_stalled() {
    // The paper gates the comparison with `full AND NOT stall`: an
    // interrupt raised while WB is externally stalled must not be
    // accepted until the stall clears — and the machine stays precise.
    let cfg = DlxConfig::default().with_interrupts();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_interrupt_options(ISR).with_ext_stalls())
        .run(&plan)
        .unwrap();
    let mut sim = pm.simulator().unwrap();
    load_program(&mut sim, cfg, &interrupt_program(cfg));
    let irq = pm.netlist.find("irq").unwrap();
    let ext4 = pm.netlist.find("ext.4").unwrap();
    let rollback = pm.netlist.find("spec.irq.rollback").unwrap();

    sim.set_input(irq, 0);
    sim.set_input(ext4, 0);
    sim.run(20); // fill and run a little
                 // Stall WB externally, then raise the interrupt.
    sim.set_input(ext4, 1);
    sim.set_input(irq, 1);
    for t in 0..8 {
        sim.settle();
        assert_eq!(
            sim.get(rollback),
            0,
            "rollback must wait for the stall (cycle {t})"
        );
        sim.clock();
    }
    // Release the stall: the rollback must now be accepted promptly.
    sim.set_input(ext4, 0);
    let mut fired = false;
    for _ in 0..5 {
        sim.settle();
        if sim.get(rollback) == 1 {
            fired = true;
            break;
        }
        sim.clock();
    }
    assert!(fired, "rollback accepted after the stall clears");
}
