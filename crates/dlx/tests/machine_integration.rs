//! The case-study pipeline end to end:
//!
//! 1. the prepared **sequential** DLX matches the golden ISA simulator
//!    instruction by instruction (the paper assumes the sequential
//!    machine correct; we establish it),
//! 2. the **pipelined** DLX passes the scheduling-function
//!    co-simulation checker (data consistency `R_I^T = R_S^i`, Lemma 1,
//!    bounded liveness) on kernels and random workloads,
//! 3. the generated forwarding hardware has the structure of the
//!    paper's Figure 2,
//! 4. performance behaves as the paper implies (forwarding ≈ 1 CPI,
//!    interlock-only much slower, load-use stalls).

use autopipe_dlx::machine::{dlx_interlock_options, load_program};
use autopipe_dlx::workload::{bubble_sort, fib, gcd, memcpy, random_program, HazardProfile};
use autopipe_dlx::{build_dlx_spec, dlx_synth_options, DlxConfig, Instr, IsaSim};
use autopipe_psm::{SequentialMachine, VisibleValue};
use autopipe_synth::{PipelineSynthesizer, PipelinedMachine, SynthOptions};
use autopipe_verify::Cosim;

fn words(prog: &[Instr]) -> Vec<u32> {
    prog.iter().map(|i| i.encode()).collect()
}

/// Runs the prepared sequential machine against the ISA simulator,
/// comparing all visible state before every instruction.
fn seq_matches_isa(cfg: DlxConfig, prog: &[Instr], max_instr: u64) {
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let mut seq = SequentialMachine::new(plan).unwrap();
    load_program(seq.sim_mut(), cfg, &words(prog));
    let mut isa = IsaSim::new(cfg, &words(prog));
    for step in 0..max_instr {
        let vis = seq.visible_state();
        assert_eq!(
            vis["PC"],
            VisibleValue::Word(u64::from(isa.pc)),
            "PC before instruction {step}"
        );
        assert_eq!(
            vis["DPC"],
            VisibleValue::Word(u64::from(isa.dpc)),
            "DPC before instruction {step}"
        );
        match &vis["GPR"] {
            VisibleValue::File(v) => {
                for (i, got) in v.iter().enumerate() {
                    assert_eq!(
                        *got,
                        u64::from(isa.regs[i]),
                        "GPR[{i}] before instruction {step}"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        match &vis["DMEM"] {
            VisibleValue::File(v) => {
                for (i, got) in v.iter().enumerate() {
                    assert_eq!(
                        *got,
                        u64::from(isa.dmem[i]),
                        "DMEM[{i}] before instruction {step}"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        if isa.halted() {
            return;
        }
        isa.step();
        seq.step_instruction();
    }
    panic!("program did not halt within {max_instr} instructions");
}

fn pipeline(cfg: DlxConfig, options: SynthOptions) -> PipelinedMachine {
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    PipelineSynthesizer::new(options).run(&plan).unwrap()
}

/// Runs the pipelined machine under the cosim checker for `cycles`.
fn check_pipeline(pm: &PipelinedMachine, cfg: DlxConfig, prog: &[Instr], cycles: u64) -> f64 {
    let mut cosim = Cosim::new(pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &words(prog));
    load_program(cosim.seq_sim_mut(), cfg, &words(prog));
    let stats = cosim
        .run(cycles)
        .unwrap_or_else(|e| panic!("consistency violation: {e}"))
        .clone();
    stats.cpi()
}

#[test]
fn sequential_dlx_matches_isa_on_kernels() {
    let cfg = DlxConfig::default();
    seq_matches_isa(cfg, &fib(10), 200);
    seq_matches_isa(cfg, &memcpy(8, 30, 4), 200);
}

#[test]
fn sequential_dlx_matches_isa_on_random_programs() {
    let cfg = DlxConfig::default();
    for seed in 0..8 {
        let prog = random_program(cfg, 60, HazardProfile::default(), seed);
        seq_matches_isa(cfg, &prog, 100);
    }
}

#[test]
fn pipelined_dlx_is_consistent_on_fib() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let cpi = check_pipeline(&pm, cfg, &fib(8), 400);
    assert!(cpi < 2.0, "forwarded DLX should be fast (cpi = {cpi})");
}

#[test]
fn pipelined_dlx_is_consistent_on_random_programs() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    for seed in 0..6 {
        let prog = random_program(cfg, 80, HazardProfile::default(), seed);
        check_pipeline(&pm, cfg, &prog, 300);
    }
}

#[test]
fn pipelined_dlx_is_consistent_on_serial_chains() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let prog = random_program(cfg, 60, HazardProfile::serial(), 42);
    check_pipeline(&pm, cfg, &prog, 300);
}

#[test]
fn pipelined_dlx_is_consistent_on_memory_kernels() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    check_pipeline(&pm, cfg, &memcpy(8, 40, 6), 600);
    check_pipeline(&pm, cfg, &bubble_sort(0, 4), 2000);
}

#[test]
fn gcd_subroutine_is_consistent_in_the_pipeline() {
    // JAL/JR call-and-return with data-dependent branches, cycle-level
    // checked; result cross-checked against the ISA simulator.
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let prog = gcd(48, 36);
    check_pipeline(&pm, cfg, &prog, 1200);
    let mut isa = IsaSim::new(cfg, &words(&prog));
    isa.run(10_000);
    assert_eq!(isa.dmem[0], 12);
}

#[test]
fn interlock_only_dlx_is_consistent_but_slower() {
    let cfg = DlxConfig::default();
    let fwd = pipeline(cfg, dlx_synth_options());
    let ilk = pipeline(cfg, dlx_interlock_options());
    let prog = random_program(cfg, 80, HazardProfile::serial(), 3);
    let cpi_fwd = check_pipeline(&fwd, cfg, &prog, 600);
    let cpi_ilk = check_pipeline(&ilk, cfg, &prog, 600);
    assert!(
        cpi_ilk > cpi_fwd + 0.5,
        "interlock {cpi_ilk} vs forwarding {cpi_fwd}"
    );
}

#[test]
fn figure2_structure_of_generated_forwarding() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    // One forwarding path per GPR operand, hits in stages 2, 3, 4 —
    // three equality testers per operand, exactly Figure 2.
    let gpra: Vec<_> = pm
        .report
        .forwards
        .iter()
        .filter(|p| p.target == "GPR")
        .collect();
    assert_eq!(gpra.len(), 2, "GPRa and GPRb");
    for p in gpra {
        assert_eq!(p.stage, 1);
        assert_eq!(p.hit_stages, vec![2, 3, 4]);
        assert_eq!(p.write_stage, 4);
        assert_eq!(p.source.as_deref(), Some("C"));
    }
    // The hit nets exist under the names the paper uses.
    for j in [2, 3, 4] {
        assert!(pm.netlist.find(&format!("fw.1.GPRa.hit.{j}")).is_ok());
        assert!(pm.netlist.find(&format!("fw.1.GPRb.hit.{j}")).is_ok());
    }
    // The delay-slot fetch comes from the DPC forwarding path.
    let dpc: Vec<_> = pm
        .report
        .forwards
        .iter()
        .filter(|p| p.target == "DPC")
        .collect();
    assert_eq!(dpc.len(), 1);
    assert_eq!(dpc[0].stage, 0);
    assert_eq!(dpc[0].hit_stages, vec![1]);
}

#[test]
fn load_use_causes_stalls_but_stays_consistent() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    // sw/lw pair followed immediately by a use of the loaded value.
    let prog = autopipe_dlx::asm::assemble(
        "   addi r1, r0, 7
            sw   r1, 3(r0)
            lw   r2, 3(r0)
            add  r3, r2, r2   ; load-use
            sw   r3, 4(r0)
            halt
            nop",
    )
    .unwrap();
    let mut cosim = Cosim::new(&pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &words(&prog));
    load_program(cosim.seq_sim_mut(), cfg, &words(&prog));
    let stats = cosim.run(60).unwrap().clone();
    assert!(
        stats.dhaz_counts[1] > 0,
        "the load-use hazard must raise dhaz in decode"
    );
}

#[test]
fn pipelined_dlx_handles_external_stalls() {
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options().with_ext_stalls())
        .run(&plan)
        .unwrap();
    let prog = random_program(cfg, 60, HazardProfile::default(), 11);
    let mut state = 42u64;
    let hook = move |_sim: &dyn autopipe_hdl::Simulate, c: u64, s: usize| {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(c + s as u64);
        (state >> 40).is_multiple_of(3)
    };
    let mut cosim = Cosim::new(&pm).unwrap().with_ext_stalls(Box::new(hook));
    load_program(cosim.sim_mut(), cfg, &words(&prog));
    load_program(cosim.seq_sim_mut(), cfg, &words(&prog));
    let stats = cosim.run(500).unwrap().clone();
    assert!(stats.retired > 30);
}

#[test]
fn small_config_also_consistent() {
    let cfg = DlxConfig::small();
    let pm = pipeline(cfg, dlx_synth_options());
    let prog = random_program(cfg, 10, HazardProfile::serial(), 5);
    check_pipeline(&pm, cfg, &prog, 120);
}

#[test]
fn subword_memory_kernel_is_consistent_in_the_pipeline() {
    // The shift4load path (paper Figure 2): byte loads/stores with
    // read-modify-write word merging, checked cycle by cycle against
    // the sequential machine; final state against the golden ISA sim.
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let prog = autopipe_dlx::asm::assemble(
        "   lhi  r1, 0xdead
            ori  r1, r1, 0xbeef
            sw   r1, 8(r0)        ; word 2 = 0xdeadbeef
            lb   r2, 8(r0)        ; 0xffffffef
            lbu  r3, 11(r0)       ; 0xde
            lh   r4, 10(r0)       ; 0xffffdead
            lhu  r5, 8(r0)        ; 0xbeef
            sb   r3, 9(r0)        ; word 2 -> 0xdeaddeef
            sh   r4, 14(r0)       ; word 3 upper half = 0xdead
            add  r6, r2, r3       ; use the loaded values (hazards)
            sw   r6, 16(r0)
            halt
            nop",
    )
    .unwrap();
    check_pipeline(&pm, cfg, &prog, 120);
    // Cross-check final memory against the golden ISA simulator.
    let mut isa = IsaSim::new(cfg, &words(&prog));
    isa.run(1000);
    assert!(isa.halted());
    assert_eq!(isa.dmem[2], 0xdead_deef);
    assert_eq!(isa.dmem[3], 0xdead_0000);
    assert_eq!(isa.dmem[4], 0xffff_ffef_u32.wrapping_add(0xde));
}

#[test]
fn strcpy_kernel_runs_on_the_pipeline() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let prog = autopipe_dlx::workload::strcpy(0, 64);
    let w = words(&prog);
    let mut cosim = Cosim::new(&pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &w);
    load_program(cosim.seq_sim_mut(), cfg, &w);
    // Seed the string in both machines' data memories.
    let text = u64::from(u32::from_le_bytes(*b"Ok!\0"));
    {
        let sim = cosim.sim_mut();
        let nl = sim.netlist();
        let dmem = nl
            .mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
            .unwrap();
        sim.poke_mem(dmem, 0, text);
    }
    {
        let sim = cosim.seq_sim_mut();
        let nl = sim.netlist();
        let dmem = nl
            .mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
            .unwrap();
        sim.poke_mem(dmem, 0, text);
    }
    cosim.run(200).unwrap();
    let sim = cosim.sim_mut();
    let nl = sim.netlist();
    let dmem = nl
        .mem_ids()
        .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
        .unwrap();
    assert_eq!(sim.peek_mem(dmem, 16), text);
}

#[test]
fn slow_memory_stalls_but_stays_consistent() {
    // The paper's "external stall condition ... e.g. caused by slow
    // memory": a 2-wait-state data memory. Correctness must be
    // untouched; memory-heavy code slows down accordingly.
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options().with_ext_stalls())
        .run(&plan)
        .unwrap();
    let prog = memcpy(0, 64, 8);
    let w = words(&prog);

    // Fast memory baseline.
    let mut fast = Cosim::new(&pm).unwrap();
    load_program(fast.sim_mut(), cfg, &w);
    load_program(fast.seq_sim_mut(), cfg, &w);
    while fast.stats().retired < 50 {
        fast.step().unwrap();
    }
    let fast_cycles = fast.stats().cycles;

    // Two wait states per access.
    let hook = autopipe_dlx::machine::wait_state_memory(&pm, 2);
    let mut slow = Cosim::new(&pm).unwrap().with_ext_stalls(hook);
    load_program(slow.sim_mut(), cfg, &w);
    load_program(slow.seq_sim_mut(), cfg, &w);
    while slow.stats().retired < 50 {
        slow.step().unwrap();
    }
    let slow_cycles = slow.stats().cycles;
    assert!(
        slow_cycles > fast_cycles + 10,
        "wait states must cost cycles ({slow_cycles} vs {fast_cycles})"
    );
    assert!(slow.stats().stall_counts[3] > 0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn shared_pipeline() -> &'static (DlxConfig, PipelinedMachine) {
        static PM: OnceLock<(DlxConfig, PipelinedMachine)> = OnceLock::new();
        PM.get_or_init(|| {
            let cfg = DlxConfig::default();
            (cfg, pipeline(cfg, dlx_synth_options()))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The flagship property: arbitrary hazard profiles never break
        /// data consistency on the pipelined DLX.
        #[test]
        fn cosim_holds_for_arbitrary_hazard_profiles(
            raw_density in 0.0f64..1.0,
            short_distance in 0.0f64..1.0,
            mem_frac in 0.0f64..0.5,
            branch_frac in 0.0f64..0.3,
            seed in 0u64..10_000,
        ) {
            let (cfg, pm) = shared_pipeline();
            let profile = HazardProfile {
                raw_density,
                short_distance,
                mem_frac,
                branch_frac,
            };
            let prog = random_program(*cfg, 50, profile, seed);
            let mut cosim = Cosim::new(pm).map_err(TestCaseError::fail)?;
            load_program(cosim.sim_mut(), *cfg, &words(&prog));
            load_program(cosim.seq_sim_mut(), *cfg, &words(&prog));
            cosim
                .run(250)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }
}

#[test]
fn vcd_trace_of_the_pipeline() {
    use autopipe_hdl::vcd::VcdWriter;
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let mut sim = pm.simulator().unwrap();
    load_program(&mut sim, cfg, &words(&fib(5)));
    let mut buf = Vec::new();
    {
        let mut vcd = VcdWriter::new(&mut buf, &pm.netlist);
        for _ in 0..30 {
            sim.settle();
            vcd.sample(&sim).unwrap();
            sim.clock();
        }
    }
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("$enddefinitions"));
    // Control and forwarding signals are all traceable by name.
    for sig in ["ue_0", "full_4", "dhaz_1", "g_1_GPRa", "fw_1_GPRa_hit_2"] {
        assert!(text.contains(sig), "{sig} missing from the VCD header");
    }
    assert!(text.contains("#29"));
}

#[test]
fn dlx_retirement_equivalence_bmc() {
    // Machine-checked (SAT) bounded equivalence of the pipelined DLX
    // against its sequential specification: the first 3 data-memory
    // writes are identical, proven by BMC over the product machine.
    use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
    use autopipe_verify::equiv::retirement_miter;
    let cfg = DlxConfig::small();
    let mut spec = build_dlx_spec(cfg).unwrap();
    let prog: Vec<u64> = autopipe_dlx::asm::assemble(
        "   addi r1, r0, 3
            sw   r1, 0(r0)
            addi r2, r1, 4
            sw   r2, 4(r0)
            add  r3, r2, r1
            sw   r3, 8(r0)
            halt
            nop",
    )
    .unwrap()
    .iter()
    .map(|i| u64::from(i.encode()))
    .collect();
    for f in &mut spec.files {
        if f.name == "IMEM" {
            f.init = prog.clone();
        }
    }
    let plan = spec.plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .unwrap();
    let (nl, p) = retirement_miter(&pm, "DMEM", 3).unwrap();
    let low = autopipe_hdl::aig::lower(&nl).unwrap();
    let prop = low.net_lits(p)[0];
    // Sequential machine: 5 cycles/instr * 8 instructions + slack.
    assert_eq!(
        bmc_invariant(&low.aig, prop, 45),
        BmcOutcome::BoundedOk { depth: 45 }
    );
}

#[test]
fn dlx_stage_costs_attribute_forwarding_hardware() {
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let costs = pm.stage_costs();
    assert_eq!(costs.len(), pm.n_stages());
    for (k, c) in costs.iter().enumerate() {
        assert_eq!(c.stage, k);
    }
    // The paper's DLX forwards GPR into decode (stage 1): the bypass
    // muxes, hit comparators and a non-trivial control cone all land
    // on that stage's row.
    let decode = &costs[1];
    assert!(decode.forward_paths >= 1, "{decode:?}");
    assert!(decode.hit_signals >= decode.forward_paths, "{decode:?}");
    assert!(decode.control_gates > 0, "{decode:?}");
    assert!(decode.ue_levels >= decode.stall_levels, "{decode:?}");
    // Interlock-only synthesis moves those paths to the interlock
    // column and drops the bypass network.
    let ipm = pipeline(cfg, dlx_interlock_options());
    let icosts = ipm.stage_costs();
    assert!(icosts[1].interlock_paths >= 1, "{:?}", icosts[1]);
    assert_eq!(
        icosts[1].forward_paths + icosts[1].interlock_paths,
        decode.forward_paths + decode.interlock_paths,
        "same reads, different protection"
    );
}

#[test]
fn optimized_dlx_is_consistent_and_smaller() {
    use autopipe_hdl::NetlistStats;
    let cfg = DlxConfig::default();
    let pm = pipeline(cfg, dlx_synth_options());
    let opt = pm.optimized();
    let before = NetlistStats::of(&pm.netlist);
    let after = NetlistStats::of(&opt.netlist);
    assert!(
        after.gates < before.gates,
        "optimizer should shrink the DLX ({} -> {})",
        before.gates,
        after.gates
    );
    assert_eq!(after.register_bits, before.register_bits, "state preserved");
    // The optimized machine passes the full cycle-level checker.
    let prog = random_program(cfg, 60, HazardProfile::default(), 21);
    check_pipeline(&opt, cfg, &prog, 250);
    // And its obligations still discharge.
    let reports = autopipe_verify::check_obligations(&opt.netlist, &opt.obligations, 2).unwrap();
    assert!(reports.iter().all(|r| r.ok()));
}
