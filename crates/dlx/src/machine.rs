//! The prepared sequential five-stage DLX (paper §4.2).
//!
//! Stage structure and registers follow Müller & Paul's DLX
//! presentation, which the paper builds on:
//!
//! ```text
//! stage 0  IF   reads DPC (forwarded from decode), fetches IR
//! stage 1  ID   reads GPR (ports GPRa/GPRb, forwarded), computes the
//!               delayed-PC pair (DPC := PC, PC := next), operands
//!               A/B, store data SMDR, and the precomputed GPR write
//!               controls (the paper's Rwe/Rwa, ctrl stage 1)
//! stage 2  EX   ALU -> C (C.we = 0 for loads!), address MAR, DMEM
//!               write controls (ctrl stage 2)
//! stage 3  MEM  DMEM read -> MDRr, DMEM write of SMDR; C travels
//! stage 4  WB   GPR := is_load ? MDRr : C   (the Din mux of Fig. 2)
//! ```
//!
//! The architecture uses the **delayed PC** (one branch delay slot):
//! the visible state carries `DPC` (address of the next instruction)
//! and `PC` (the address after that); see [`crate::sim`].
//!
//! The designer effort the paper asks for is captured in
//! [`dlx_synth_options`]: name `C` as the forwarding register for the
//! GPR (the case study's "two registers, one in the execute stage and
//! one in the memory stage" are its instances `C.3`/`C.4`) and
//! write-stage forwarding for `DPC`, from which the transformation
//! derives the delay-slot fetch automatically.

use crate::isa::opcode;
use autopipe_hdl::{NetId, Netlist};
use autopipe_psm::{FileDecl, Fragment, MachineSpec, PlanError, ReadPort, RegisterDecl};
use autopipe_synth::{
    ActualSource, Fixup, FixupValue, ForwardingSpec, SpeculationSpec, SynthOptions,
};

/// Size parameters of the DLX instance (word-addressed memories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlxConfig {
    /// Instruction memory address bits.
    pub imem_aw: u32,
    /// Data memory address bits.
    pub dmem_aw: u32,
    /// Register file address bits (≤ 5; smaller configs use the low
    /// bits of the 5-bit register fields, mirrored by the golden
    /// simulator).
    pub gpr_aw: u32,
    /// Add the precise-interrupt machinery (paper §5): an `irq`
    /// external input speculated to be 0 at fetch, verified in WB, a
    /// piped `DPCp` chain and an `EPC` register for the rollback
    /// fixups.
    pub interrupts: bool,
}

impl Default for DlxConfig {
    fn default() -> Self {
        DlxConfig {
            imem_aw: 8,
            dmem_aw: 8,
            gpr_aw: 5,
            interrupts: false,
        }
    }
}

impl DlxConfig {
    /// A reduced configuration for SAT-based checking (16 instructions,
    /// 8 data words, 8 registers).
    pub fn small() -> DlxConfig {
        DlxConfig {
            imem_aw: 4,
            dmem_aw: 3,
            gpr_aw: 3,
            interrupts: false,
        }
    }

    /// Enables the precise-interrupt machinery.
    #[must_use]
    pub fn with_interrupts(mut self) -> DlxConfig {
        self.interrupts = true;
        self
    }
}

/// The paper's designer-supplied options for the DLX: forward the GPR
/// through `C`, forward `DPC` from its write stage (decode) — which
/// yields the delay-slot fetch.
pub fn dlx_synth_options() -> SynthOptions {
    SynthOptions::new()
        .with_forwarding(ForwardingSpec::forward("GPR", "C"))
        .with_forwarding(ForwardingSpec::forward_from_write_stage("DPC"))
}

/// Variant without forwarding hardware: every hazard interlocks
/// (experiment E4's baseline). `DPC` keeps write-stage forwarding —
/// without it the machine could not fetch at all.
pub fn dlx_interlock_options() -> SynthOptions {
    SynthOptions::new()
        .with_forwarding(ForwardingSpec::interlock("GPR"))
        .with_forwarding(ForwardingSpec::forward_from_write_stage("DPC"))
}

/// The paper's precise-interrupt construction (§5): speculate at fetch
/// that no interrupt occurs (guess 0 for the `irq` input); the truth is
/// detected in stage 4. On misspeculation the pipeline is cleared and
/// the rollback fixups implement the precise state: `EPC` := the
/// victim's address, `DPC`/`PC` := the handler at `isr`.
///
/// Requires a spec built with [`DlxConfig::with_interrupts`].
pub fn dlx_interrupt_options(isr: u32) -> SynthOptions {
    let mut guess = Netlist::new("irq_guess");
    let z = guess.constant(0, 1);
    guess.label("guess", z);
    dlx_synth_options().with_speculation(SpeculationSpec {
        name: "irq".into(),
        stage: 0,
        port: "irq".into(),
        guess: Fragment::new(guess).expect("combinational"),
        resolve_stage: 4,
        actual: ActualSource::External("irq".into()),
        fixups: vec![
            Fixup {
                register: "DPC".into(),
                value: FixupValue::Const(u64::from(isr)),
            },
            Fixup {
                register: "PC".into(),
                value: FixupValue::Const(u64::from(isr) + 1),
            },
            Fixup {
                register: "EPC".into(),
                value: FixupValue::Instance("DPCp".into()),
            },
        ],
    })
}

/// Equality against a 6-bit opcode constant.
fn is_op(nl: &mut Netlist, opc: NetId, val: u64) -> NetId {
    let c = nl.constant(val, 6);
    nl.eq(opc, c)
}

/// Builds the prepared sequential DLX machine specification.
///
/// # Errors
///
/// Propagates plan errors (impossible for valid configs; surfaced for
/// robustness).
pub fn build_dlx_spec(cfg: DlxConfig) -> Result<MachineSpec, PlanError> {
    assert!(cfg.gpr_aw >= 1 && cfg.gpr_aw <= 5, "gpr_aw must be 1..=5");
    let gaw = cfg.gpr_aw;
    let mut spec = MachineSpec::new("dlx5", 5);

    // Registers (instance R.k written by stage k-1).
    spec.register(RegisterDecl::new("PC", 32).written_by(1).init(1).visible());
    spec.register(RegisterDecl::new("DPC", 32).written_by(1).visible());
    spec.register(
        RegisterDecl::new("IR", 32)
            .written_by(0)
            .written_by(1)
            .written_by(2)
            .written_by(3),
    );
    spec.register(RegisterDecl::new("A", 32).written_by(1));
    spec.register(RegisterDecl::new("B", 32).written_by(1));
    spec.register(RegisterDecl::new("SMDR", 32).written_by(1).written_by(2));
    spec.register(RegisterDecl::new("C", 32).written_by(2).written_by(3));
    spec.register(RegisterDecl::new("MAR", 32).written_by(2).written_by(3));
    spec.register(RegisterDecl::new("MDRr", 32).written_by(3));

    if cfg.interrupts {
        // The interrupt line, the victim-address pipe and the EPC
        // register for Smith-Pleszkun-style precise interrupts.
        spec.external_input("irq", 1);
        spec.register(
            RegisterDecl::new("DPCp", 32)
                .written_by(1)
                .written_by(2)
                .written_by(3),
        );
        spec.register(RegisterDecl::new("EPC", 32).written_by(4).visible());
    }

    // Memories.
    spec.file(FileDecl::read_only("IMEM", cfg.imem_aw, 32));
    spec.file(FileDecl::new("GPR", gaw, 32, 4).ctrl(1).visible());
    spec.file(FileDecl::new("DMEM", cfg.dmem_aw, 32, 3).ctrl(2).visible());

    // ------------------------------------------------------------------
    // Stage 0: IF
    // ------------------------------------------------------------------
    let mut f0 = Netlist::new("IF");
    let insn = f0.input("insn", 32);
    f0.label("IR", insn);
    if cfg.interrupts {
        // The speculated interrupt line: architecturally an input of
        // the fetch stage ("the instruction is fetched assuming no
        // interrupt"); the data path does not consume it.
        f0.input("irq", 1);
    }
    let mut fa = Netlist::new("IF_addr");
    let dpc = fa.input("DPC", 32);
    let a = fa.slice(dpc, cfg.imem_aw - 1, 0);
    fa.label("addr", a);
    spec.stage(
        0,
        "IF",
        Fragment::new(f0).expect("combinational"),
        vec![ReadPort::new(
            "IMEM",
            "insn",
            Fragment::new(fa).expect("combinational"),
        )],
    );

    // ------------------------------------------------------------------
    // Stage 1: ID — delayed-PC computation, operand fetch, GPR write
    // controls.
    // ------------------------------------------------------------------
    let mut f1 = Netlist::new("ID");
    let ir = f1.input("IR", 32);
    let pc = f1.input("PC", 32);
    let dpc = f1.input("DPC", 32);
    let gpra = f1.input("GPRa", 32);
    let gprb = f1.input("GPRb", 32);

    let opc = f1.slice(ir, 31, 26);
    let imm16 = f1.slice(ir, 15, 0);
    let target26 = f1.slice(ir, 25, 0);
    let imm_sext = f1.sext(imm16, 32);
    let imm_zext = f1.zext(imm16, 32);
    let zeros16 = f1.constant(0, 16);
    let imm_lhi = f1.concat(imm16, zeros16);
    let jtarget = f1.zext(target26, 32);

    let is_rtype = is_op(&mut f1, opc, opcode::RTYPE);
    let is_addi = is_op(&mut f1, opc, opcode::ADDI);
    let is_slti = is_op(&mut f1, opc, opcode::SLTI);
    let is_sltui = is_op(&mut f1, opc, opcode::SLTUI);
    let is_andi = is_op(&mut f1, opc, opcode::ANDI);
    let is_ori = is_op(&mut f1, opc, opcode::ORI);
    let is_xori = is_op(&mut f1, opc, opcode::XORI);
    let is_lhi = is_op(&mut f1, opc, opcode::LHI);
    let is_slli = is_op(&mut f1, opc, opcode::SLLI);
    let is_srli = is_op(&mut f1, opc, opcode::SRLI);
    let is_srai = is_op(&mut f1, opc, opcode::SRAI);
    let is_lw = is_op(&mut f1, opc, opcode::LW);
    let is_lb = is_op(&mut f1, opc, opcode::LB);
    let is_lbu = is_op(&mut f1, opc, opcode::LBU);
    let is_lh = is_op(&mut f1, opc, opcode::LH);
    let is_lhu = is_op(&mut f1, opc, opcode::LHU);
    let loads = [is_lw, is_lb, is_lbu, is_lh, is_lhu];
    let is_load = f1.or_all(&loads);
    let is_beqz = is_op(&mut f1, opc, opcode::BEQZ);
    let is_bnez = is_op(&mut f1, opc, opcode::BNEZ);
    let is_j = is_op(&mut f1, opc, opcode::J);
    let is_jal = is_op(&mut f1, opc, opcode::JAL);
    let is_jr = is_op(&mut f1, opc, opcode::JR);
    let is_jalr = is_op(&mut f1, opc, opcode::JALR);
    let is_halt = is_op(&mut f1, opc, opcode::HALT);

    // Branch resolution.
    let zero32 = f1.constant(0, 32);
    let a_is_zero = f1.eq(gpra, zero32);
    let a_nonzero = f1.not(a_is_zero);
    let beqz_taken = f1.and(is_beqz, a_is_zero);
    let bnez_taken = f1.and(is_bnez, a_nonzero);
    let branch_taken = f1.or(beqz_taken, bnez_taken);
    let one32 = f1.constant(1, 32);
    let two32 = f1.constant(2, 32);
    let slot = f1.add(dpc, one32);
    let btarget = f1.add(slot, imm_sext);
    let seq_next = f1.add(pc, one32);

    // PC := halt ? DPC : jump/branch target : PC + 1.
    let is_jabs = f1.or(is_j, is_jal);
    let is_jreg = f1.or(is_jr, is_jalr);
    let mut next_pc = seq_next;
    next_pc = f1.mux(branch_taken, btarget, next_pc);
    next_pc = f1.mux(is_jreg, gpra, next_pc);
    next_pc = f1.mux(is_jabs, jtarget, next_pc);
    next_pc = f1.mux(is_halt, dpc, next_pc);
    f1.label("PC", next_pc);
    f1.label("DPC", pc);
    if cfg.interrupts {
        // Pipe the instruction's own address along for the EPC fixup.
        let dpcp = f1.or(dpc, dpc);
        f1.label("DPCp", dpcp);
    }

    // Operands: A gets the link value for JAL/JALR.
    let link = f1.add(dpc, two32);
    let is_link = f1.or(is_jal, is_jalr);
    let a_out = f1.mux(is_link, link, gpra);
    f1.label("A", a_out);

    // B: R-type -> GPRb; LHI -> imm<<16; link -> 0; zero-extending
    // ops -> zext; otherwise sign extended.
    let zext_ops = [
        is_andi, is_ori, is_xori, is_sltui, is_slli, is_srli, is_srai,
    ];
    let is_zext = f1.or_all(&zext_ops);
    let mut immval = f1.mux(is_zext, imm_zext, imm_sext);
    immval = f1.mux(is_lhi, imm_lhi, immval);
    immval = f1.mux(is_link, zero32, immval);
    let b_out = f1.mux(is_rtype, gprb, immval);
    f1.label("B", b_out);
    f1.label("SMDR", gprb);

    // Precomputed GPR write controls (the paper's Rwe/Rwa, ctrl = 1).
    let rd_r = f1.slice(ir, 11 + gaw - 1, 11);
    let rd_i = f1.slice(ir, 16 + gaw - 1, 16);
    let link_reg = f1.constant((1 << gaw) - 1, gaw); // r31 (masked)
    let mut wa = f1.mux(is_rtype, rd_r, rd_i);
    wa = f1.mux(is_jal, link_reg, wa);
    f1.label("GPR.wa", wa);
    let ialu = [
        is_addi, is_slti, is_sltui, is_andi, is_ori, is_xori, is_lhi, is_slli, is_srli, is_srai,
    ];
    let is_ialu = f1.or_all(&ialu);
    let writes = [is_rtype, is_ialu, is_load, is_jal, is_jalr];
    let writes_gpr = f1.or_all(&writes);
    let zero_g = f1.constant(0, gaw);
    let wa_is_zero = f1.eq(wa, zero_g);
    let wa_nonzero = f1.not(wa_is_zero);
    let gpr_we = f1.and(writes_gpr, wa_nonzero);
    f1.label("GPR.we", gpr_we);

    // GPR read port addresses.
    let mut ga = Netlist::new("ID_gpra_addr");
    let ir_a = ga.input("IR", 32);
    let rs1 = ga.slice(ir_a, 21 + gaw - 1, 21);
    ga.label("addr", rs1);
    let mut gb = Netlist::new("ID_gprb_addr");
    let ir_b = gb.input("IR", 32);
    let rs2 = gb.slice(ir_b, 16 + gaw - 1, 16);
    gb.label("addr", rs2);

    spec.stage(
        1,
        "ID",
        Fragment::new(f1).expect("combinational"),
        vec![
            ReadPort::new("GPR", "GPRa", Fragment::new(ga).expect("combinational")),
            ReadPort::new("GPR", "GPRb", Fragment::new(gb).expect("combinational")),
        ],
    );

    // ------------------------------------------------------------------
    // Stage 2: EX — ALU, address computation, DMEM write controls.
    // ------------------------------------------------------------------
    let mut f2 = Netlist::new("EX");
    let ir = f2.input("IR", 32);
    let a_in = f2.input("A", 32);
    let b_in = f2.input("B", 32);
    let opc = f2.slice(ir, 31, 26);
    let func = f2.slice(ir, 5, 0);
    let imm16 = f2.slice(ir, 15, 0);
    let imm_sext = f2.sext(imm16, 32);

    let is_rtype = is_op(&mut f2, opc, opcode::RTYPE);
    let is_lw = is_op(&mut f2, opc, opcode::LW);
    let is_lb = is_op(&mut f2, opc, opcode::LB);
    let is_lbu = is_op(&mut f2, opc, opcode::LBU);
    let is_lh = is_op(&mut f2, opc, opcode::LH);
    let is_lhu = is_op(&mut f2, opc, opcode::LHU);
    let loads = [is_lw, is_lb, is_lbu, is_lh, is_lhu];
    let is_load = f2.or_all(&loads);
    let is_sw = is_op(&mut f2, opc, opcode::SW);
    let is_sb = is_op(&mut f2, opc, opcode::SB);
    let is_sh = is_op(&mut f2, opc, opcode::SH);
    let stores = [is_sw, is_sb, is_sh];
    let is_store = f2.or_all(&stores);

    let rfun = |f2: &mut Netlist, val: u64| -> NetId {
        let c = f2.constant(val, 6);
        f2.eq(func, c)
    };
    let f_add = rfun(&mut f2, 0x20);
    let f_sub = rfun(&mut f2, 0x22);
    let f_and = rfun(&mut f2, 0x24);
    let f_or = rfun(&mut f2, 0x25);
    let f_xor = rfun(&mut f2, 0x26);
    let f_sll = rfun(&mut f2, 0x04);
    let f_srl = rfun(&mut f2, 0x06);
    let f_sra = rfun(&mut f2, 0x07);
    let f_slt = rfun(&mut f2, 0x2a);
    let f_sltu = rfun(&mut f2, 0x2b);
    let f_seq = rfun(&mut f2, 0x28);
    let f_sne = rfun(&mut f2, 0x29);
    let f_sle = rfun(&mut f2, 0x2c);
    let f_sge = rfun(&mut f2, 0x2d);
    let f_sgt = rfun(&mut f2, 0x2e);
    let _ = f_add; // ADD is the default arm of the result mux.

    let op_sub_i = f2.zero(); // no SUBI
    let op_sub = {
        let r = f2.and(is_rtype, f_sub);
        f2.or(r, op_sub_i)
    };
    let sel = |f2: &mut Netlist, f_net: NetId, i_op: u64| -> NetId {
        let r = f2.and(is_rtype, f_net);
        let i = is_op(f2, opc, i_op);
        f2.or(r, i)
    };
    let op_and = sel(&mut f2, f_and, opcode::ANDI);
    let op_or = sel(&mut f2, f_or, opcode::ORI);
    let op_xor = sel(&mut f2, f_xor, opcode::XORI);
    let op_sll = sel(&mut f2, f_sll, opcode::SLLI);
    let op_srl = sel(&mut f2, f_srl, opcode::SRLI);
    let op_sra = sel(&mut f2, f_sra, opcode::SRAI);
    let op_slt = sel(&mut f2, f_slt, opcode::SLTI);
    let op_sltu = sel(&mut f2, f_sltu, opcode::SLTUI);
    // The remaining set-comparisons exist only in R-type form.
    let op_seq = f2.and(is_rtype, f_seq);
    let op_sne = f2.and(is_rtype, f_sne);
    let op_sle = f2.and(is_rtype, f_sle);
    let op_sge = f2.and(is_rtype, f_sge);
    let op_sgt = f2.and(is_rtype, f_sgt);

    let shamt = f2.slice(b_in, 4, 0);
    let r_add = f2.add(a_in, b_in);
    let r_sub = f2.sub(a_in, b_in);
    let r_and = f2.and(a_in, b_in);
    let r_or = f2.or(a_in, b_in);
    let r_xor = f2.xor(a_in, b_in);
    let r_sll = f2.shl(a_in, shamt);
    let r_srl = f2.lshr(a_in, shamt);
    let r_sra = f2.ashr(a_in, shamt);
    let lt_s = f2.slt(a_in, b_in);
    let r_slt = f2.zext(lt_s, 32);
    let lt_u = f2.ult(a_in, b_in);
    let r_sltu = f2.zext(lt_u, 32);
    let eq_b = f2.eq(a_in, b_in);
    let r_seq = f2.zext(eq_b, 32);
    let ne_b = f2.ne(a_in, b_in);
    let r_sne = f2.zext(ne_b, 32);
    let le_b = f2.sle(a_in, b_in);
    let r_sle = f2.zext(le_b, 32);
    let ge_b = f2.not(lt_s);
    let r_sge = f2.zext(ge_b, 32);
    let gt_b = f2.slt(b_in, a_in);
    let r_sgt = f2.zext(gt_b, 32);

    let mut c = r_add;
    c = f2.mux(op_sub, r_sub, c);
    c = f2.mux(op_and, r_and, c);
    c = f2.mux(op_or, r_or, c);
    c = f2.mux(op_xor, r_xor, c);
    c = f2.mux(op_sll, r_sll, c);
    c = f2.mux(op_srl, r_srl, c);
    c = f2.mux(op_sra, r_sra, c);
    c = f2.mux(op_slt, r_slt, c);
    c = f2.mux(op_sltu, r_sltu, c);
    c = f2.mux(op_seq, r_seq, c);
    c = f2.mux(op_sne, r_sne, c);
    c = f2.mux(op_sle, r_sle, c);
    c = f2.mux(op_sge, r_sge, c);
    c = f2.mux(op_sgt, r_sgt, c);
    f2.label("C", c);
    // The essential bit for the load-use interlock: C does not hold a
    // load's result — its valid bit stays 0 until WB forwarding.
    let c_we = f2.not(is_load);
    f2.label("C.we", c_we);

    let mar = f2.add(a_in, imm_sext);
    f2.label("MAR", mar);
    f2.label("DMEM.we", is_store);
    // Byte-addressed data memory: the word index drops the two low
    // address bits.
    let dwa = f2.slice(mar, cfg.dmem_aw + 1, 2);
    f2.label("DMEM.wa", dwa);
    spec.stage(2, "EX", Fragment::new(f2).expect("combinational"), vec![]);

    // ------------------------------------------------------------------
    // Stage 3: MEM — load data, store commit (sub-word stores merge
    // into the old word read combinationally from the same port).
    // ------------------------------------------------------------------
    let mut f3 = Netlist::new("MEM");
    let ir = f3.input("IR", 32);
    let marv = f3.input("MAR", 32);
    let dmem_out = f3.input("dmem_out", 32);
    let smdr = f3.input("SMDR", 32);
    let opc = f3.slice(ir, 31, 26);
    let is_sb = is_op(&mut f3, opc, opcode::SB);
    let is_sh = is_op(&mut f3, opc, opcode::SH);
    // Byte lane shift amounts from the low address bits.
    let lane2 = f3.slice(marv, 1, 0);
    let zero3 = f3.constant(0, 3);
    let byte_shift = f3.concat(lane2, zero3); // lane * 8
    let lane1 = f3.bit(marv, 1);
    let zero4 = f3.constant(0, 4);
    let half_shift = f3.concat(lane1, zero4); // lane * 16
                                              // Byte merge.
    let ff = f3.constant(0xff, 32);
    let bmask = f3.shl(ff, byte_shift);
    let nbmask = f3.not(bmask);
    let bkeep = f3.and(dmem_out, nbmask);
    let b0 = f3.slice(smdr, 7, 0);
    let bz = f3.zext(b0, 32);
    let bval = f3.shl(bz, byte_shift);
    let merged_b = f3.or(bkeep, bval);
    // Half merge.
    let ffff = f3.constant(0xffff, 32);
    let hmask = f3.shl(ffff, half_shift);
    let nhmask = f3.not(hmask);
    let hkeep = f3.and(dmem_out, nhmask);
    let h0 = f3.slice(smdr, 15, 0);
    let hz = f3.zext(h0, 32);
    let hval = f3.shl(hz, half_shift);
    let merged_h = f3.or(hkeep, hval);
    let mut din = smdr;
    din = f3.mux(is_sh, merged_h, din);
    din = f3.mux(is_sb, merged_b, din);
    f3.label("MDRr", dmem_out);
    f3.label("DMEM", din);
    let mut ma = Netlist::new("MEM_addr");
    let mar = ma.input("MAR", 32);
    let a = ma.slice(mar, cfg.dmem_aw + 1, 2);
    ma.label("addr", a);
    spec.stage(
        3,
        "MEM",
        Fragment::new(f3).expect("combinational"),
        vec![ReadPort::new(
            "DMEM",
            "dmem_out",
            Fragment::new(ma).expect("combinational"),
        )],
    );

    // ------------------------------------------------------------------
    // Stage 4: WB — shift4load and the Din multiplexer of Figure 2.
    // ------------------------------------------------------------------
    let mut f4 = Netlist::new("WB");
    let ir = f4.input("IR", 32);
    let c_in = f4.input("C", 32);
    let mdrr = f4.input("MDRr", 32);
    let marv = f4.input("MAR", 32);
    let opc = f4.slice(ir, 31, 26);
    let is_lw = is_op(&mut f4, opc, opcode::LW);
    let is_lb = is_op(&mut f4, opc, opcode::LB);
    let is_lbu = is_op(&mut f4, opc, opcode::LBU);
    let is_lh = is_op(&mut f4, opc, opcode::LH);
    let is_lhu = is_op(&mut f4, opc, opcode::LHU);
    // shift4load: align the addressed byte/half to bit 0, then extend.
    let lane2 = f4.slice(marv, 1, 0);
    let zero3 = f4.constant(0, 3);
    let byte_shift = f4.concat(lane2, zero3);
    let lane1 = f4.bit(marv, 1);
    let zero4 = f4.constant(0, 4);
    let half_shift = f4.concat(lane1, zero4);
    let bsh = f4.lshr(mdrr, byte_shift);
    let byte = f4.slice(bsh, 7, 0);
    let byte_s = f4.sext(byte, 32);
    let byte_u = f4.zext(byte, 32);
    let hsh = f4.lshr(mdrr, half_shift);
    let half = f4.slice(hsh, 15, 0);
    let half_s = f4.sext(half, 32);
    let half_u = f4.zext(half, 32);
    let mut load_val = mdrr; // LW: the raw word
    load_val = f4.mux(is_lb, byte_s, load_val);
    load_val = f4.mux(is_lbu, byte_u, load_val);
    load_val = f4.mux(is_lh, half_s, load_val);
    load_val = f4.mux(is_lhu, half_u, load_val);
    let load_any = [is_lw, is_lb, is_lbu, is_lh, is_lhu];
    let is_load = f4.or_all(&load_any);
    let din = f4.mux(is_load, load_val, c_in);
    f4.label("GPR", din);
    if cfg.interrupts {
        // EPC only changes through the rollback fixup; its normal
        // update is the identity (a distinct net is required to count
        // as a computed output).
        let epc = f4.input("EPC", 32);
        let hold = f4.or(epc, epc);
        f4.label("EPC", hold);
    }
    spec.stage(4, "WB", Fragment::new(f4).expect("combinational"), vec![]);

    // Sanity: the spec must plan cleanly.
    spec.plan()?;
    Ok(spec)
}

/// Builds a wait-state data-memory model: whenever a new memory
/// instruction (load or store) occupies the MEM stage, the external
/// stall input of that stage is asserted for `wait` cycles before the
/// access completes — the paper's "external stall condition in the
/// stage, e.g., caused by slow memory".
///
/// The hook inspects the pipelined machine's `IR.3` and `full.3`
/// registers; it distinguishes instructions by their arrival (register
/// value change or refill), so back-to-back *identical* memory words
/// are conservatively merged — fine for a performance model.
///
/// # Panics
///
/// Panics if the machine was synthesized without
/// [`autopipe_synth::SynthOptions::with_ext_stalls`] or is not a DLX.
pub fn wait_state_memory(
    pm: &autopipe_synth::PipelinedMachine,
    wait: u32,
) -> autopipe_verify::cosim::ExtStallHook {
    use crate::isa::opcode;
    let ir3 = pm
        .netlist
        .reg_by_name("IR.3")
        .expect("DLX pipelined netlist has IR.3");
    let full3 = pm
        .netlist
        .reg_by_name("full.3")
        .expect("stall engine full bit");
    let mut last_ir: Option<u64> = None;
    let mut remaining = 0u32;
    Box::new(move |sim, _cycle, stage| {
        if stage != 3 {
            return false;
        }
        if sim.peek_reg(full3) != 1 {
            last_ir = None;
            return false;
        }
        let ir = sim.peek_reg(ir3);
        if last_ir != Some(ir) {
            last_ir = Some(ir);
            let opc = ir >> 26;
            let is_mem = matches!(
                opc,
                opcode::LW
                    | opcode::LB
                    | opcode::LBU
                    | opcode::LH
                    | opcode::LHU
                    | opcode::SW
                    | opcode::SB
                    | opcode::SH
            );
            remaining = if is_mem { wait } else { 0 };
        }
        if remaining > 0 {
            remaining -= 1;
            true
        } else {
            false
        }
    })
}

/// Loads a program into the instruction memory of a simulator built
/// from an elaborated DLX netlist (sequential or pipelined).
///
/// # Panics
///
/// Panics if the program exceeds the instruction memory or the
/// netlist lacks an `IMEM` memory.
pub fn load_program(sim: &mut dyn autopipe_hdl::Simulate, cfg: DlxConfig, program: &[u32]) {
    assert!(
        program.len() <= 1 << cfg.imem_aw,
        "program does not fit in IMEM"
    );
    let nl = sim.netlist();
    let mem = nl
        .mem_ids()
        .find(|m| nl.memory_info(*m).name.ends_with("IMEM"))
        .expect("netlist has an IMEM");
    for (i, w) in program.iter().enumerate() {
        sim.poke_mem(mem, i, u64::from(*w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_plans_for_all_configs() {
        for cfg in [DlxConfig::default(), DlxConfig::small()] {
            let spec = build_dlx_spec(cfg).unwrap();
            let plan = spec.plan().unwrap();
            // PC.2, DPC.2, IR.1-4, A.2, B.2, SMDR.2-3, C.3-4, MAR.3-4,
            // MDRr.4 = 15 instances.
            assert_eq!(plan.instances.len(), 15);
            assert_eq!(plan.files.len(), 3);
        }
    }

    #[test]
    fn instance_chain_matches_paper() {
        let plan = build_dlx_spec(DlxConfig::default())
            .unwrap()
            .plan()
            .unwrap();
        // The case study's forwarding registers are the C instances
        // written by EX and MEM: C.3 and C.4.
        let c3 = plan.instance_named("C", 3).unwrap();
        let c4 = plan.instance_named("C", 4).unwrap();
        assert!(plan.instances[c3].has_data);
        assert!(plan.instances[c3].has_we);
        assert!(!plan.instances[c4].has_data, "C.4 is a travelling copy");
        assert!(plan.instances[c4].has_pred);
    }
}
