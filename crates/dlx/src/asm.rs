//! A small two-pass DLX assembler.
//!
//! Supports labels, comments (`;` or `#` to end of line), decimal /
//! hex (`0x`) / negative immediates, and the full instruction set of
//! [`crate::isa`]. Branch targets may be labels (offsets are computed
//! relative to the delay slot, matching the hardware) or numeric
//! immediates.
//!
//! ```
//! use autopipe_dlx::asm::assemble;
//!
//! # fn main() -> Result<(), autopipe_dlx::asm::AsmError> {
//! let prog = assemble(
//!     "      addi r1, r0, 3
//!      loop: addi r2, r2, 5
//!            subi r1, r1, 1
//!            bnez r1, loop
//!            nop            ; delay slot
//!            halt",
//! )?;
//! assert_eq!(prog.len(), 6);
//! # Ok(())
//! # }
//! ```

use crate::isa::{AluOp, Instr, Reg, SubKind, NOP};
use std::collections::HashMap;
use std::fmt;

/// Assembly error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Line of the offending statement.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let num = t
        .strip_prefix('r')
        .or_else(|| t.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got `{t}`")))?;
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{t}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{t}` out of range")));
    }
    Ok(Reg(n))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn to_u16(v: i64, line: usize) -> Result<u16, AsmError> {
    if (-(1 << 15)..1 << 16).contains(&v) {
        Ok(v as u16)
    } else {
        Err(err(line, format!("immediate {v} does not fit in 16 bits")))
    }
}

/// One parsed statement before fixups.
#[derive(Debug, Clone)]
enum Stmt {
    Ready(Instr),
    Branch {
        negated: bool,
        rs1: Reg,
        target: String,
    },
    Jump {
        link: bool,
        target: String,
    },
}

/// Assembles source text into instructions.
///
/// # Errors
///
/// Returns the first [`AsmError`] (syntax, unknown mnemonic/label,
/// range).
pub fn assemble(src: &str) -> Result<Vec<Instr>, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several) before the statement.
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, "malformed label"));
            }
            if labels
                .insert(label.to_string(), stmts.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            vec![]
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nops = ops.len();
        let want = |n: usize| -> Result<(), AsmError> {
            if nops == n {
                Ok(())
            } else {
                Err(err(line, format!("`{mnemonic}` expects {n} operands")))
            }
        };
        let rrr = |op: AluOp| -> Result<Stmt, AsmError> {
            want(3)?;
            Ok(Stmt::Ready(Instr::Alu {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[2], line)?,
            }))
        };
        let rri = |op: AluOp, negate: bool| -> Result<Stmt, AsmError> {
            want(3)?;
            let mut v = parse_imm(ops[2], line)?;
            if negate {
                v = -v;
            }
            Ok(Stmt::Ready(Instr::AluImm {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: to_u16(v, line)?,
            }))
        };
        // `lw rd, imm(rs1)` / `sw rs2, imm(rs1)`
        let memop = |line: usize| -> Result<(Reg, Reg, u16), AsmError> {
            want(2)?;
            let r = parse_reg(ops[0], line)?;
            let (immpart, rest) = ops[1]
                .split_once('(')
                .ok_or_else(|| err(line, "expected `imm(reg)`"))?;
            let base = rest
                .strip_suffix(')')
                .ok_or_else(|| err(line, "missing `)`"))?;
            let imm = to_u16(parse_imm(immpart, line)?, line)?;
            Ok((r, parse_reg(base, line)?, imm))
        };
        let stmt = match mnemonic.to_lowercase().as_str() {
            "add" => rrr(AluOp::Add)?,
            "sub" => rrr(AluOp::Sub)?,
            "and" => rrr(AluOp::And)?,
            "or" => rrr(AluOp::Or)?,
            "xor" => rrr(AluOp::Xor)?,
            "sll" => rrr(AluOp::Sll)?,
            "srl" => rrr(AluOp::Srl)?,
            "sra" => rrr(AluOp::Sra)?,
            "slt" => rrr(AluOp::Slt)?,
            "sltu" => rrr(AluOp::Sltu)?,
            "seq" => rrr(AluOp::Seq)?,
            "sne" => rrr(AluOp::Sne)?,
            "sle" => rrr(AluOp::Sle)?,
            "sge" => rrr(AluOp::Sge)?,
            "sgt" => rrr(AluOp::Sgt)?,
            "addi" => rri(AluOp::Add, false)?,
            // subi is a convenience alias: addi with a negated
            // immediate.
            "subi" => rri(AluOp::Add, true)?,
            "andi" => rri(AluOp::And, false)?,
            "ori" => rri(AluOp::Or, false)?,
            "xori" => rri(AluOp::Xor, false)?,
            "slti" => rri(AluOp::Slt, false)?,
            "sltui" => rri(AluOp::Sltu, false)?,
            "slli" => rri(AluOp::Sll, false)?,
            "srli" => rri(AluOp::Srl, false)?,
            "srai" => rri(AluOp::Sra, false)?,
            "lhi" => {
                want(2)?;
                Stmt::Ready(Instr::Lhi {
                    rd: parse_reg(ops[0], line)?,
                    imm: to_u16(parse_imm(ops[1], line)?, line)?,
                })
            }
            "lw" => {
                let (rd, rs1, imm) = memop(line)?;
                Stmt::Ready(Instr::Lw { rd, rs1, imm })
            }
            "sw" => {
                let (rs2, rs1, imm) = memop(line)?;
                Stmt::Ready(Instr::Sw { rs2, rs1, imm })
            }
            m @ ("lb" | "lbu" | "lh" | "lhu") => {
                let (rd, rs1, imm) = memop(line)?;
                let kind = match m {
                    "lb" => SubKind::Byte,
                    "lbu" => SubKind::ByteU,
                    "lh" => SubKind::Half,
                    _ => SubKind::HalfU,
                };
                Stmt::Ready(Instr::LoadSub { kind, rd, rs1, imm })
            }
            m @ ("sb" | "sh") => {
                let (rs2, rs1, imm) = memop(line)?;
                let kind = if m == "sb" {
                    SubKind::Byte
                } else {
                    SubKind::Half
                };
                Stmt::Ready(Instr::StoreSub {
                    kind,
                    rs2,
                    rs1,
                    imm,
                })
            }
            "beqz" | "bnez" => {
                want(2)?;
                let rs1 = parse_reg(ops[0], line)?;
                Stmt::Branch {
                    negated: mnemonic.eq_ignore_ascii_case("bnez"),
                    rs1,
                    target: ops[1].to_string(),
                }
            }
            "j" | "jal" => {
                want(1)?;
                Stmt::Jump {
                    link: mnemonic.eq_ignore_ascii_case("jal"),
                    target: ops[0].to_string(),
                }
            }
            "jr" => {
                want(1)?;
                Stmt::Ready(Instr::Jr {
                    rs1: parse_reg(ops[0], line)?,
                })
            }
            "jalr" => {
                want(2)?;
                Stmt::Ready(Instr::Jalr {
                    rd: parse_reg(ops[0], line)?,
                    rs1: parse_reg(ops[1], line)?,
                })
            }
            "halt" => {
                want(0)?;
                Stmt::Ready(Instr::Halt)
            }
            "nop" => {
                want(0)?;
                Stmt::Ready(NOP)
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        stmts.push((line, stmt));
    }

    // Pass 2: resolve labels.
    let mut out = Vec::with_capacity(stmts.len());
    for (addr, (line, stmt)) in stmts.iter().enumerate() {
        let resolve = |target: &str| -> Result<i64, AsmError> {
            if let Some(&a) = labels.get(target) {
                Ok(i64::from(a))
            } else {
                parse_imm(target, *line)
            }
        };
        let instr = match stmt {
            Stmt::Ready(i) => *i,
            Stmt::Branch {
                negated,
                rs1,
                target,
            } => {
                let t = resolve(target)?;
                // Offset relative to the delay slot address (pc + 1).
                let off = t - (addr as i64 + 1);
                let imm = to_u16(off, *line)?;
                if *negated {
                    Instr::Bnez { rs1: *rs1, imm }
                } else {
                    Instr::Beqz { rs1: *rs1, imm }
                }
            }
            Stmt::Jump { link, target } => {
                let t = resolve(target)?;
                if !(0..1 << 26).contains(&t) {
                    return Err(err(*line, format!("jump target {t} out of range")));
                }
                if *link {
                    Instr::Jal { target: t as u32 }
                } else {
                    Instr::J { target: t as u32 }
                }
            }
        };
        out.push(instr);
    }
    Ok(out)
}

/// Assembles source text that may additionally contain the image
/// directives
///
/// * `.org N` — continue assembling at word address `N` (forward only;
///   the gap is filled with `NOP`s),
/// * `.word V` — emit a raw 32-bit word,
///
/// into a flat memory image. Labels respect directive-adjusted
/// addresses.
///
/// # Errors
///
/// Returns the first [`AsmError`].
pub fn assemble_image(src: &str) -> Result<Vec<u32>, AsmError> {
    // Strategy: split the source at `.org` boundaries, assemble each
    // chunk with globally collected labels. Implemented as a two-pass
    // over raw lines to keep label addressing exact.
    let nop = NOP.encode();
    // Pass 1: compute the word address of every line and labels.
    let mut labels: HashMap<String, i64> = HashMap::new();
    let mut addr: i64 = 0;
    let mut items: Vec<(usize, i64, String)> = Vec::new(); // (line, addr, stmt text)
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, "malformed label"));
            }
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".org") {
            let target = parse_imm(rest.trim(), line)?;
            if target < addr {
                return Err(err(line, format!(".org {target} moves backwards")));
            }
            addr = target;
            continue;
        }
        items.push((line, addr, text.to_string()));
        addr += 1;
    }
    // Pass 2: emit.
    let mut image = vec![nop; addr as usize];
    for (line, at, text) in items {
        let word = if let Some(rest) = text.strip_prefix(".word") {
            let v = parse_imm(rest.trim(), line)?;
            if !(0..=i64::from(u32::MAX)).contains(&v) && !(-(1i64 << 31)..0).contains(&v) {
                return Err(err(line, format!(".word value {v} out of range")));
            }
            v as u32
        } else {
            // Assemble the single statement with label substitution:
            // replace label operands by their absolute addresses.
            let resolved = substitute_labels(&text, &labels);
            let mut one = assemble(&resolved).map_err(|e| err(line, e.message))?;
            if one.len() != 1 {
                return Err(err(
                    line,
                    "internal: statement did not assemble to one word",
                ));
            }
            // Branches need offsets relative to their own address, but
            // `assemble` computed them relative to address 0. Re-encode
            // branch targets here.
            match one.remove(0) {
                Instr::Beqz { rs1, imm } => {
                    // assemble() saw `beqz rX, <abs>` with the statement
                    // at address 0, so imm = abs - 1; recover abs and
                    // re-relativise.
                    let abs = i64::from(imm as i16) + 1;
                    let off = abs - (at + 1);
                    Instr::Beqz {
                        rs1,
                        imm: to_u16(off, line)?,
                    }
                    .encode()
                }
                Instr::Bnez { rs1, imm } => {
                    let abs = i64::from(imm as i16) + 1;
                    let off = abs - (at + 1);
                    Instr::Bnez {
                        rs1,
                        imm: to_u16(off, line)?,
                    }
                    .encode()
                }
                other => other.encode(),
            }
        };
        image[at as usize] = word;
    }
    Ok(image)
}

/// Replaces whole-word label tokens in a statement with their decimal
/// addresses.
fn substitute_labels(stmt: &str, labels: &HashMap<String, i64>) -> String {
    // Operand splitting mirrors `assemble`: mnemonic, then
    // comma-separated operands.
    let (m, rest) = match stmt.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (stmt, ""),
    };
    if rest.is_empty() {
        return stmt.to_string();
    }
    let ops: Vec<String> = rest
        .split(',')
        .map(|op| {
            let t = op.trim();
            if let Some(a) = labels.get(t) {
                return a.to_string();
            }
            // Labels as memory offsets: `lw r1, table(r0)`.
            if let Some((imm, rest)) = t.split_once('(') {
                if let Some(a) = labels.get(imm.trim()) {
                    return format!("{a}({rest}");
                }
            }
            t.to_string()
        })
        .collect();
    format!("{m} {}", ops.join(", "))
}

/// Disassembles machine words into assembler-compatible source text:
/// one instruction per line, branch and jump targets printed as
/// absolute numeric addresses (which [`assemble`] resolves back).
///
/// # Errors
///
/// Returns the address and value of the first undecodable word.
pub fn disassemble(words: &[u32]) -> Result<String, (usize, u32)> {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (addr, &w) in words.iter().enumerate() {
        let Some(i) = Instr::decode(w) else {
            return Err((addr, w));
        };
        let line = match i {
            Instr::Beqz { rs1, imm } => {
                let t = (addr as i64 + 1) + i64::from(imm as i16);
                format!("beqz {rs1}, {t}")
            }
            Instr::Bnez { rs1, imm } => {
                let t = (addr as i64 + 1) + i64::from(imm as i16);
                format!("bnez {rs1}, {t}")
            }
            Instr::J { target } => format!("j {target}"),
            Instr::Jal { target } => format!("jal {target}"),
            other => other.to_string(),
        };
        let _ = writeln!(out, "    {line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "start: addi r1, r0, 10
                    lw   r2, 0x4(r1)
                    sw   r2, -2(r1)
                    halt",
        )
        .unwrap();
        assert_eq!(
            p[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 10
            }
        );
        assert_eq!(
            p[1],
            Instr::Lw {
                rd: Reg(2),
                rs1: Reg(1),
                imm: 4
            }
        );
        assert_eq!(
            p[2],
            Instr::Sw {
                rs2: Reg(2),
                rs1: Reg(1),
                imm: (-2i16) as u16
            }
        );
        assert_eq!(p[3], Instr::Halt);
    }

    #[test]
    fn backward_branch_offset_relative_to_delay_slot() {
        let p = assemble(
            "loop: addi r1, r1, 1
                   bnez r1, loop
                   nop",
        )
        .unwrap();
        // bnez at address 1; target 0; offset = 0 - (1+1) = -2.
        assert_eq!(
            p[1],
            Instr::Bnez {
                rs1: Reg(1),
                imm: (-2i16) as u16
            }
        );
    }

    #[test]
    fn forward_label_resolves() {
        let p = assemble(
            "  beqz r0, end
               nop
               addi r1, r0, 1
           end: halt",
        )
        .unwrap();
        // beqz at 0, target 3, offset = 3 - 1 = 2.
        assert_eq!(
            p[0],
            Instr::Beqz {
                rs1: Reg(0),
                imm: 2
            }
        );
    }

    #[test]
    fn subi_negates() {
        let p = assemble("subi r1, r1, 1").unwrap();
        assert_eq!(
            p[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(1),
                imm: 0xffff
            }
        );
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = assemble("nop\n bogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("addi r1, r0, 99999").unwrap_err();
        assert!(e.message.contains("16 bits"));
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble("beqz r1, nowhere").unwrap_err();
        assert!(e.message.contains("bad immediate"));
    }

    #[test]
    fn disassemble_assemble_roundtrip_on_random_programs() {
        use crate::machine::DlxConfig;
        use crate::workload::{random_program, HazardProfile};
        for seed in 0..10 {
            let prog = random_program(DlxConfig::default(), 40, HazardProfile::default(), seed);
            let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
            let text = disassemble(&words).expect("valid program");
            let back = assemble(&text).expect("disassembly reassembles");
            let words2: Vec<u32> = back.iter().map(|i| i.encode()).collect();
            assert_eq!(words, words2, "seed {seed}\n{text}");
        }
    }

    #[test]
    fn assemble_image_with_org_and_word() {
        let img = assemble_image(
            "        addi r1, r0, 1
                     j    handler
                     nop
             .org 8
             handler: .word 0xdeadbeef
                     halt",
        )
        .unwrap();
        assert_eq!(img.len(), 10);
        assert_eq!(img[8], 0xdead_beef);
        // Gap filled with NOPs.
        assert_eq!(img[3], NOP.encode());
        // The jump targets the handler's address.
        assert_eq!(Instr::decode(img[1]), Some(Instr::J { target: 8 }));
        assert_eq!(Instr::decode(img[9]), Some(Instr::Halt));
    }

    #[test]
    fn assemble_image_branch_offsets_respect_org() {
        let img = assemble_image(
            "       beqz r1, target
                    nop
             .org 6
             target: halt",
        )
        .unwrap();
        // beqz at 0, target 6: offset = 6 - 1 = 5.
        assert_eq!(
            Instr::decode(img[0]),
            Some(Instr::Beqz {
                rs1: Reg(1),
                imm: 5
            })
        );
        // Backward branch after an org.
        let img = assemble_image(
            "  top: nop
               .org 4
                    bnez r2, top
                    nop",
        )
        .unwrap();
        // bnez at 4, target 0: offset = 0 - 5 = -5.
        assert_eq!(
            Instr::decode(img[4]),
            Some(Instr::Bnez {
                rs1: Reg(2),
                imm: (-5i16) as u16
            })
        );
    }

    #[test]
    fn assemble_image_labels_in_memory_operands() {
        // Word addresses double as byte offsets when data and code
        // share the image; `table` here names word 4 = byte offset 4
        // (the program loads from IMEM-addressed data only in
        // Harvard-style tests, so just check the encoding).
        let img = assemble_image(
            "        lw   r1, table(r0)
                     halt
                     nop
             .org 4
             table:  .word 123",
        )
        .unwrap();
        assert_eq!(
            Instr::decode(img[0]),
            Some(Instr::Lw {
                rd: Reg(1),
                rs1: Reg(0),
                imm: 4
            })
        );
        assert_eq!(img[4], 123);
    }

    #[test]
    fn assemble_image_rejects_backward_org() {
        let e = assemble_image(".org 4\nnop\n.org 2\nnop").unwrap_err();
        assert!(e.message.contains("backwards"));
    }

    #[test]
    fn disassemble_reports_bad_words() {
        // Opcode 0x3e is unassigned.
        assert_eq!(disassemble(&[0x20, 0xf800_0000]), Err((1, 0xf800_0000)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; full line comment\n\n nop # trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn assembled_program_runs_on_isa_sim() {
        use crate::machine::DlxConfig;
        use crate::sim::IsaSim;
        let p = assemble(
            "      addi r1, r0, 5    ; counter
                   addi r2, r0, 0    ; sum
            loop:  add  r2, r2, r1
                   subi r1, r1, 1
                   bnez r1, loop
                   nop
                   sw   r2, 0(r0)
                   halt",
        )
        .unwrap();
        let words: Vec<u32> = p.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(DlxConfig::default(), &words);
        sim.run(200);
        assert!(sim.halted());
        assert_eq!(sim.dmem[0], 15); // 5+4+3+2+1
    }
}
