//! # autopipe-dlx — the paper's five-stage DLX case study
//!
//! A DLX RISC processor (no floating point unit, one branch delay slot
//! — exactly the configuration of §4.2 of *Automated Pipeline Design*)
//! built on the `autopipe` stack:
//!
//! * [`isa`] — the instruction set: encodings, decoding, pretty
//!   printing;
//! * [`asm`] — a small two-pass text assembler with labels;
//! * [`sim`] — the golden instruction-level simulator (the reference
//!   the *prepared sequential machine* is validated against, since the
//!   paper assumes the sequential design correct);
//! * [`machine`] — the prepared sequential 5-stage DLX as a
//!   [`autopipe_psm::MachineSpec`], plus the designer options of the
//!   case study (forwarding registers `C` for the GPR, write-stage
//!   forwarding for the PC — which makes the transformation reproduce
//!   the delay-slot fetch automatically);
//! * [`workload`] — program generators: hazard-density-controlled
//!   random programs and small kernels (Fibonacci, memcpy, bubble
//!   sort) for the experiments.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod branchy;
pub mod isa;
pub mod machine;
pub mod sim;
pub mod workload;

pub use isa::{Instr, Reg};
pub use machine::{build_dlx_spec, dlx_synth_options, DlxConfig};
pub use sim::{IsaSim, StopReason};
