//! The DLX instruction set (integer subset, no FPU).
//!
//! Layout (32-bit instructions):
//!
//! * R-type (`opcode = 0`): `rs1[25:21] rs2[20:16] rd[15:11] func[5:0]`
//! * I-type: `opcode[31:26] rs1[25:21] rd[20:16] imm[15:0]`
//!   (for `SW` the `rd` slot names the *source* register, DLX style;
//!   for `BEQZ`/`BNEZ` it is unused)
//! * J-type: `opcode[31:26] target[25:0]` (absolute word address)
//!
//! Instruction memory is word (instruction) addressed; **data memory is
//! byte addressed** with naturally aligned accesses: `LW`/`SW` ignore
//! the two low address bits, `LH`/`LHU`/`SH` ignore the lowest bit, and
//! the byte/half lane of a sub-word access is selected by the low
//! address bits (the paper's `shift4load` circuit in the write-back
//! stage).
//!
//! Branches are **delayed** with a single delay slot: the instruction
//! after a taken or untaken branch/jump always executes. `HALT` loops
//! on itself (its next PC is its own address) — the harnesses detect
//! it to stop simulation.

use std::fmt;

/// A general-purpose register `r0..r31` (`r0` is hard-wired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const R0: Reg = Reg(0);
    /// The link register used by `JAL`.
    pub const LINK: Reg = Reg(31);

    /// Register number as u64 (for encoding).
    pub fn num(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// R-type ALU operations (the `func` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount = low 5 bits of the second operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set on (signed) less than.
    Slt,
    /// Set on unsigned less than.
    Sltu,
    /// Set on equal.
    Seq,
    /// Set on not equal.
    Sne,
    /// Set on (signed) less-or-equal.
    Sle,
    /// Set on (signed) greater-or-equal.
    Sge,
    /// Set on (signed) greater than.
    Sgt,
}

impl AluOp {
    /// The `func` encoding.
    pub fn func(self) -> u64 {
        match self {
            AluOp::Add => 0x20,
            AluOp::Sub => 0x22,
            AluOp::And => 0x24,
            AluOp::Or => 0x25,
            AluOp::Xor => 0x26,
            AluOp::Sll => 0x04,
            AluOp::Srl => 0x06,
            AluOp::Sra => 0x07,
            AluOp::Slt => 0x2a,
            AluOp::Sltu => 0x2b,
            AluOp::Seq => 0x28,
            AluOp::Sne => 0x29,
            AluOp::Sle => 0x2c,
            AluOp::Sge => 0x2d,
            AluOp::Sgt => 0x2e,
        }
    }

    /// Decodes a `func` field.
    pub fn from_func(f: u64) -> Option<AluOp> {
        Some(match f {
            0x20 => AluOp::Add,
            0x22 => AluOp::Sub,
            0x24 => AluOp::And,
            0x25 => AluOp::Or,
            0x26 => AluOp::Xor,
            0x04 => AluOp::Sll,
            0x06 => AluOp::Srl,
            0x07 => AluOp::Sra,
            0x2a => AluOp::Slt,
            0x2b => AluOp::Sltu,
            0x28 => AluOp::Seq,
            0x29 => AluOp::Sne,
            0x2c => AluOp::Sle,
            0x2d => AluOp::Sge,
            0x2e => AluOp::Sgt,
            _ => return None,
        })
    }

    /// All operations (for generators and exhaustive tests).
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::Sle,
        AluOp::Sge,
        AluOp::Sgt,
    ];

    /// Operations that have an immediate (I-type) form.
    pub const IMMEDIATE: [AluOp; 9] = [
        AluOp::Add,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
    ];

    /// Applies the operation to 32-bit values.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Seq => u32::from(a == b),
            AluOp::Sne => u32::from(a != b),
            AluOp::Sle => u32::from((a as i32) <= (b as i32)),
            AluOp::Sge => u32::from((a as i32) >= (b as i32)),
            AluOp::Sgt => u32::from((a as i32) > (b as i32)),
        }
    }
}

/// Opcodes (the `[31:26]` field).
pub mod opcode {
    /// R-type.
    pub const RTYPE: u64 = 0x00;
    /// Add immediate (sign extended).
    pub const ADDI: u64 = 0x08;
    /// Set-less-than immediate (signed, sign extended).
    pub const SLTI: u64 = 0x0a;
    /// Set-less-than-unsigned immediate (zero extended).
    pub const SLTUI: u64 = 0x0b;
    /// AND immediate (zero extended).
    pub const ANDI: u64 = 0x0c;
    /// OR immediate (zero extended).
    pub const ORI: u64 = 0x0d;
    /// XOR immediate (zero extended).
    pub const XORI: u64 = 0x0e;
    /// Load high immediate: `rd := imm << 16`.
    pub const LHI: u64 = 0x0f;
    /// Shift left logical immediate.
    pub const SLLI: u64 = 0x14;
    /// Shift right logical immediate.
    pub const SRLI: u64 = 0x16;
    /// Shift right arithmetic immediate.
    pub const SRAI: u64 = 0x17;
    /// Load word.
    pub const LW: u64 = 0x23;
    /// Load byte (sign extended).
    pub const LB: u64 = 0x20;
    /// Load halfword (sign extended).
    pub const LH: u64 = 0x21;
    /// Load byte unsigned.
    pub const LBU: u64 = 0x24;
    /// Load halfword unsigned.
    pub const LHU: u64 = 0x25;
    /// Store word.
    pub const SW: u64 = 0x2b;
    /// Store byte.
    pub const SB: u64 = 0x28;
    /// Store halfword.
    pub const SH: u64 = 0x29;
    /// Branch if equal zero.
    pub const BEQZ: u64 = 0x04;
    /// Branch if not equal zero.
    pub const BNEZ: u64 = 0x05;
    /// Jump (absolute word address).
    pub const J: u64 = 0x02;
    /// Jump and link (`r31 := return address`).
    pub const JAL: u64 = 0x03;
    /// Jump register.
    pub const JR: u64 = 0x12;
    /// Jump and link register.
    pub const JALR: u64 = 0x13;
    /// Halt: next PC is the instruction's own address.
    pub const HALT: u64 = 0x3f;
}

/// Width/extension of a sub-word memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubKind {
    /// Byte, sign extended on load.
    Byte,
    /// Byte, zero extended on load.
    ByteU,
    /// Halfword, sign extended on load.
    Half,
    /// Halfword, zero extended on load.
    HalfU,
}

impl SubKind {
    /// Load opcode of this kind.
    pub fn load_opcode(self) -> u64 {
        match self {
            SubKind::Byte => opcode::LB,
            SubKind::ByteU => opcode::LBU,
            SubKind::Half => opcode::LH,
            SubKind::HalfU => opcode::LHU,
        }
    }

    /// Store opcode (unsigned variants alias the signed ones).
    pub fn store_opcode(self) -> u64 {
        match self {
            SubKind::Byte | SubKind::ByteU => opcode::SB,
            SubKind::Half | SubKind::HalfU => opcode::SH,
        }
    }

    /// Whether this is a byte access.
    pub fn is_byte(self) -> bool {
        matches!(self, SubKind::Byte | SubKind::ByteU)
    }

    /// Whether loads sign extend.
    pub fn is_signed(self) -> bool {
        matches!(self, SubKind::Byte | SubKind::Half)
    }
}

/// A decoded DLX instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// R-type ALU: `rd := rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// I-type ALU: `rd := rs1 op imm` (extension depends on op).
    AluImm {
        /// Operation (Add/And/Or/Xor/Slt/Sltu/Sll/Srl/Sra).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// 16-bit immediate (raw field value).
        imm: u16,
    },
    /// `rd := imm << 16`.
    Lhi {
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: u16,
    },
    /// `rd := DMEM[rs1 + sext(imm)]`.
    Lw {
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// `DMEM[rs1 + sext(imm)] := rs2` (`rs2` sits in the rd slot).
    Sw {
        /// Source of the stored value.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// Sub-word load: `rd := extend(byte/half at rs1 + sext(imm))`.
    LoadSub {
        /// Access width and extension.
        kind: SubKind,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// Sub-word store of the low byte/half of `rs2`.
    StoreSub {
        /// Access width (extension irrelevant for stores).
        kind: SubKind,
        /// Source of the stored value.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// Branch if `rs1 == 0` to `pc + 1 + sext(imm)` (one delay slot).
    Beqz {
        /// Tested register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// Branch if `rs1 != 0`.
    Bnez {
        /// Tested register.
        rs1: Reg,
        /// Offset.
        imm: u16,
    },
    /// Jump to an absolute word address.
    J {
        /// Target address.
        target: u32,
    },
    /// Jump and link (`r31 := pc + 2`).
    Jal {
        /// Target address.
        target: u32,
    },
    /// Jump to the address in `rs1`.
    Jr {
        /// Target register.
        rs1: Reg,
    },
    /// Jump to `rs1`, link in `rd`.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Target register.
        rs1: Reg,
    },
    /// Halt (self-loop).
    Halt,
}

/// `NOP` is encoded as `ADD r0, r0, r0`.
pub const NOP: Instr = Instr::Alu {
    op: AluOp::Add,
    rd: Reg(0),
    rs1: Reg(0),
    rs2: Reg(0),
};

impl Instr {
    /// Encodes to the 32-bit machine word.
    pub fn encode(self) -> u32 {
        use opcode::*;
        let r = |op: u64, rs1: Reg, rs2: Reg, rd: Reg, func: u64| -> u32 {
            (op << 26 | rs1.num() << 21 | rs2.num() << 16 | rd.num() << 11 | func) as u32
        };
        let i = |op: u64, rs1: Reg, rd: Reg, imm: u16| -> u32 {
            (op << 26 | rs1.num() << 21 | rd.num() << 16 | u64::from(imm)) as u32
        };
        let j =
            |op: u64, target: u32| -> u32 { (op << 26 | u64::from(target & 0x03ff_ffff)) as u32 };
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => r(RTYPE, rs1, rs2, rd, op.func()),
            Instr::AluImm { op, rd, rs1, imm } => {
                let opc = match op {
                    AluOp::Add => ADDI,
                    AluOp::And => ANDI,
                    AluOp::Or => ORI,
                    AluOp::Xor => XORI,
                    AluOp::Slt => SLTI,
                    AluOp::Sltu => SLTUI,
                    AluOp::Sll => SLLI,
                    AluOp::Srl => SRLI,
                    AluOp::Sra => SRAI,
                    AluOp::Sub => ADDI, // no SUBI in DLX; callers negate
                    other => panic!("{other:?} has no immediate form"),
                };
                i(opc, rs1, rd, imm)
            }
            Instr::Lhi { rd, imm } => i(LHI, Reg::R0, rd, imm),
            Instr::Lw { rd, rs1, imm } => i(LW, rs1, rd, imm),
            Instr::Sw { rs2, rs1, imm } => i(SW, rs1, rs2, imm),
            Instr::LoadSub { kind, rd, rs1, imm } => i(kind.load_opcode(), rs1, rd, imm),
            Instr::StoreSub {
                kind,
                rs2,
                rs1,
                imm,
            } => i(kind.store_opcode(), rs1, rs2, imm),
            Instr::Beqz { rs1, imm } => i(BEQZ, rs1, Reg::R0, imm),
            Instr::Bnez { rs1, imm } => i(BNEZ, rs1, Reg::R0, imm),
            Instr::J { target } => j(J, target),
            Instr::Jal { target } => j(JAL, target),
            Instr::Jr { rs1 } => i(JR, rs1, Reg::R0, 0),
            Instr::Jalr { rd, rs1 } => i(JALR, rs1, rd, 0),
            Instr::Halt => j(HALT, 0),
        }
    }

    /// Decodes a machine word; unknown encodings decode to `None`.
    pub fn decode(word: u32) -> Option<Instr> {
        use opcode::*;
        let w = u64::from(word);
        let op = w >> 26;
        let rs1 = Reg(((w >> 21) & 31) as u8);
        let rfield = Reg(((w >> 16) & 31) as u8);
        let rd_r = Reg(((w >> 11) & 31) as u8);
        let imm = (w & 0xffff) as u16;
        Some(match op {
            RTYPE => Instr::Alu {
                op: AluOp::from_func(w & 0x3f)?,
                rd: rd_r,
                rs1,
                rs2: rfield,
            },
            ADDI => Instr::AluImm {
                op: AluOp::Add,
                rd: rfield,
                rs1,
                imm,
            },
            ANDI => Instr::AluImm {
                op: AluOp::And,
                rd: rfield,
                rs1,
                imm,
            },
            ORI => Instr::AluImm {
                op: AluOp::Or,
                rd: rfield,
                rs1,
                imm,
            },
            XORI => Instr::AluImm {
                op: AluOp::Xor,
                rd: rfield,
                rs1,
                imm,
            },
            SLTI => Instr::AluImm {
                op: AluOp::Slt,
                rd: rfield,
                rs1,
                imm,
            },
            SLTUI => Instr::AluImm {
                op: AluOp::Sltu,
                rd: rfield,
                rs1,
                imm,
            },
            SLLI => Instr::AluImm {
                op: AluOp::Sll,
                rd: rfield,
                rs1,
                imm,
            },
            SRLI => Instr::AluImm {
                op: AluOp::Srl,
                rd: rfield,
                rs1,
                imm,
            },
            SRAI => Instr::AluImm {
                op: AluOp::Sra,
                rd: rfield,
                rs1,
                imm,
            },
            LHI => Instr::Lhi { rd: rfield, imm },
            LW => Instr::Lw {
                rd: rfield,
                rs1,
                imm,
            },
            SW => Instr::Sw {
                rs2: rfield,
                rs1,
                imm,
            },
            LB => Instr::LoadSub {
                kind: SubKind::Byte,
                rd: rfield,
                rs1,
                imm,
            },
            LBU => Instr::LoadSub {
                kind: SubKind::ByteU,
                rd: rfield,
                rs1,
                imm,
            },
            LH => Instr::LoadSub {
                kind: SubKind::Half,
                rd: rfield,
                rs1,
                imm,
            },
            LHU => Instr::LoadSub {
                kind: SubKind::HalfU,
                rd: rfield,
                rs1,
                imm,
            },
            SB => Instr::StoreSub {
                kind: SubKind::Byte,
                rs2: rfield,
                rs1,
                imm,
            },
            SH => Instr::StoreSub {
                kind: SubKind::Half,
                rs2: rfield,
                rs1,
                imm,
            },
            BEQZ => Instr::Beqz { rs1, imm },
            BNEZ => Instr::Bnez { rs1, imm },
            J => Instr::J {
                target: (w & 0x03ff_ffff) as u32,
            },
            JAL => Instr::Jal {
                target: (w & 0x03ff_ffff) as u32,
            },
            JR => Instr::Jr { rs1 },
            JALR => Instr::Jalr { rd: rfield, rs1 },
            HALT => Instr::Halt,
            _ => return None,
        })
    }

    /// The register this instruction writes, if any (`r0` writes are
    /// architectural no-ops but still reported here).
    pub fn dest(self) -> Option<Reg> {
        match self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lhi { rd, .. }
            | Instr::Lw { rd, .. }
            | Instr::LoadSub { rd, .. }
            | Instr::Jalr { rd, .. } => Some(rd),
            Instr::Jal { .. } => Some(Reg::LINK),
            _ => None,
        }
    }

    /// Registers this instruction reads.
    pub fn sources(self) -> Vec<Reg> {
        match self {
            Instr::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::AluImm { rs1, .. } | Instr::Lw { rs1, .. } | Instr::LoadSub { rs1, .. } => {
                vec![rs1]
            }
            Instr::Sw { rs1, rs2, .. } | Instr::StoreSub { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::Beqz { rs1, .. } | Instr::Bnez { rs1, .. } => vec![rs1],
            Instr::Jr { rs1 } | Instr::Jalr { rs1, .. } => vec![rs1],
            _ => vec![],
        }
    }

    /// Whether this is a control-transfer instruction (has a delay
    /// slot).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Beqz { .. }
                | Instr::Bnez { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instr::AluImm { op, rd, rs1, imm } => write!(
                f,
                "{}i {rd}, {rs1}, {imm:#x}",
                format!("{op:?}").to_lowercase()
            ),
            Instr::Lhi { rd, imm } => write!(f, "lhi {rd}, {imm:#x}"),
            Instr::Lw { rd, rs1, imm } => write!(f, "lw {rd}, {imm:#x}({rs1})"),
            Instr::Sw { rs2, rs1, imm } => write!(f, "sw {rs2}, {imm:#x}({rs1})"),
            Instr::LoadSub { kind, rd, rs1, imm } => {
                let m = match kind {
                    SubKind::Byte => "lb",
                    SubKind::ByteU => "lbu",
                    SubKind::Half => "lh",
                    SubKind::HalfU => "lhu",
                };
                write!(f, "{m} {rd}, {imm:#x}({rs1})")
            }
            Instr::StoreSub {
                kind,
                rs2,
                rs1,
                imm,
            } => {
                let m = if kind.is_byte() { "sb" } else { "sh" };
                write!(f, "{m} {rs2}, {imm:#x}({rs1})")
            }
            Instr::Beqz { rs1, imm } => write!(f, "beqz {rs1}, {imm:#x}"),
            Instr::Bnez { rs1, imm } => write!(f, "bnez {rs1}, {imm:#x}"),
            Instr::J { target } => write!(f, "j {target:#x}"),
            Instr::Jal { target } => write!(f, "jal {target:#x}"),
            Instr::Jr { rs1 } => write!(f, "jr {rs1}"),
            Instr::Jalr { rd, rs1 } => write!(f, "jalr {rd}, {rs1}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// Encodes a program to machine words.
pub fn encode_program(prog: &[Instr]) -> Vec<u64> {
    prog.iter().map(|i| u64::from(i.encode())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        let alu = (0usize..15, arb_reg(), arb_reg(), arb_reg()).prop_map(|(o, rd, rs1, rs2)| {
            Instr::Alu {
                op: AluOp::ALL[o],
                rd,
                rs1,
                rs2,
            }
        });
        // Sub has no immediate form; skip it in AluImm.
        let imm_ops = [
            AluOp::Add,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
        ];
        let alui =
            (0usize..9, arb_reg(), arb_reg(), any::<u16>()).prop_map(move |(o, rd, rs1, imm)| {
                Instr::AluImm {
                    op: imm_ops[o],
                    rd,
                    rs1,
                    imm,
                }
            });
        prop_oneof![
            alu,
            alui,
            (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lhi { rd, imm }),
            (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Lw {
                rd,
                rs1,
                imm
            }),
            (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rs2, rs1, imm)| Instr::Sw {
                rs2,
                rs1,
                imm
            }),
            (0usize..4, arb_reg(), arb_reg(), any::<u16>()).prop_map(|(k, rd, rs1, imm)| {
                let kinds = [SubKind::Byte, SubKind::ByteU, SubKind::Half, SubKind::HalfU];
                Instr::LoadSub {
                    kind: kinds[k],
                    rd,
                    rs1,
                    imm,
                }
            }),
            (0usize..2, arb_reg(), arb_reg(), any::<u16>()).prop_map(|(k, rs2, rs1, imm)| {
                let kinds = [SubKind::Byte, SubKind::Half];
                Instr::StoreSub {
                    kind: kinds[k],
                    rs2,
                    rs1,
                    imm,
                }
            }),
            (arb_reg(), any::<u16>()).prop_map(|(rs1, imm)| Instr::Beqz { rs1, imm }),
            (arb_reg(), any::<u16>()).prop_map(|(rs1, imm)| Instr::Bnez { rs1, imm }),
            (0u32..1 << 26).prop_map(|target| Instr::J { target }),
            (0u32..1 << 26).prop_map(|target| Instr::Jal { target }),
            arb_reg().prop_map(|rs1| Instr::Jr { rs1 }),
            (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Jalr { rd, rs1 }),
            Just(Instr::Halt),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(i in arb_instr()) {
            let enc = i.encode();
            let dec = Instr::decode(enc).expect("decodes");
            prop_assert_eq!(i, dec);
        }
    }

    #[test]
    fn nop_is_all_zero_fields_except_func() {
        assert_eq!(NOP.encode(), 0x20);
    }

    #[test]
    fn known_encodings() {
        // add r3, r1, r2
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(i.encode(), 1 << 21 | 2 << 16 | 3 << 11 | 0x20);
        // lw r5, 8(r4)
        let i = Instr::Lw {
            rd: Reg(5),
            rs1: Reg(4),
            imm: 8,
        };
        assert_eq!(i.encode(), 0x23 << 26 | 4 << 21 | 5 << 16 | 8);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount is mod 32");
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::Sw {
            rs2: Reg(7),
            rs1: Reg(3),
            imm: 0,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), vec![Reg(3), Reg(7)]);
        assert_eq!(Instr::Jal { target: 5 }.dest(), Some(Reg::LINK));
    }
}
