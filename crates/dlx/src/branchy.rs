//! A companion mini-machine with **speculative instruction fetch** —
//! the §5 configuration the delay-slot DLX deliberately avoids.
//!
//! Three stages; branches resolve in the *last* stage, so the fetch
//! address of an instruction is only verifiable two instructions
//! later. The transformation inserts the §5 hardware:
//!
//! * fetch consumes a **guessed** PC (the `FPC` register, maintained by
//!   a static predictor in the fetch stage),
//! * the guess travels with the instruction and is compared in decode
//!   against the re-read architectural PC (gated `full ∧ ¬stall`),
//! * a mismatch squashes the two youngest stages and the rollback
//!   fixup writes the **actual** value into `FPC` — the paper's "the
//!   correct value is used as input for subsequent calculations" — so
//!   the re-fetch proceeds with the truth.
//!
//! The predictor only affects performance, never correctness
//! (experiment E6): a worse predictor yields more rollbacks and a
//! higher CPI, while the retirement-equivalence miter against the
//! (speculation-free) sequential machine continues to hold.
//!
//! Instruction format (16 bits): `op[15:14] imm[13:10] src[9:8]
//! dst[7:6] target[5:0]`; `op = 1` is `BEQZ src, target`, anything
//! else is `RF[dst] := RF[src] + imm`.

use autopipe_hdl::Netlist;
use autopipe_psm::{FileDecl, Fragment, MachineSpec, PlanError, ReadPort, RegisterDecl};
use autopipe_synth::{
    ActualSource, Fixup, FixupValue, ForwardingSpec, SpeculationSpec, SynthOptions,
};

/// Address width of the mini-machine (64 instructions).
pub const PCW: u32 = 6;

/// Static fetch predictors for the E6 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predictor {
    /// Always predict straight-line fetch (`FPC := addr + 1`): every
    /// taken branch mispredicts.
    NextLine,
    /// Predict every branch taken (`FPC := is_beqz ? target :
    /// addr + 1`): every *untaken* branch mispredicts.
    AlwaysTaken,
}

/// A branchy-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BInstr {
    /// `RF[dst] := RF[src] + imm` (8-bit wrapping).
    Alu {
        /// Destination register (0..4).
        dst: u8,
        /// Source register (0..4).
        src: u8,
        /// 4-bit immediate.
        imm: u8,
    },
    /// Branch to `target` when `RF[src] == 0`.
    Beqz {
        /// Tested register.
        src: u8,
        /// Absolute target address.
        target: u8,
    },
}

impl BInstr {
    /// Encodes to the 16-bit word.
    pub fn encode(self) -> u16 {
        match self {
            BInstr::Alu { dst, src, imm } => {
                u16::from(imm & 15) << 10 | u16::from(src & 3) << 8 | u16::from(dst & 3) << 6
            }
            BInstr::Beqz { src, target } => {
                1 << 14 | u16::from(src & 3) << 8 | u16::from(target & 63)
            }
        }
    }
}

/// Pure-Rust reference executor: runs `steps` instructions and returns
/// the register file.
pub fn reference_run(prog: &[u16], steps: u64) -> [u8; 4] {
    let mut rf = [0u8; 4];
    let mut pc = 0usize;
    let mask = (1usize << PCW) - 1;
    for _ in 0..steps {
        let w = prog.get(pc & mask).copied().unwrap_or(0);
        let op = w >> 14 & 3;
        let src = (w >> 8 & 3) as usize;
        if op == 1 {
            let target = (w & 63) as usize;
            pc = if rf[src] == 0 {
                target
            } else {
                (pc + 1) & mask
            };
        } else {
            let dst = (w >> 6 & 3) as usize;
            let imm = (w >> 10 & 15) as u8;
            rf[dst] = rf[src].wrapping_add(imm);
            pc = (pc + 1) & mask;
        }
    }
    rf
}

/// Builds the branchy machine specification with the given fetch
/// predictor.
///
/// # Errors
///
/// Propagates plan errors (none expected).
pub fn build_branchy_spec(predictor: Predictor) -> Result<MachineSpec, PlanError> {
    let mut spec = MachineSpec::new("bran3", 3);
    spec.register(RegisterDecl::new("PC", PCW).written_by(2).visible());
    spec.register(RegisterDecl::new("FPC", PCW).written_by(0));
    spec.register(RegisterDecl::new("PCp", PCW).written_by(0).written_by(1));
    spec.register(RegisterDecl::new("IR", 16).written_by(0));
    spec.register(RegisterDecl::new("X", 8).written_by(1));
    spec.register(RegisterDecl::new("TK", 1).written_by(1));
    spec.register(RegisterDecl::new("TGT", PCW).written_by(1));
    spec.file(FileDecl::read_only("IMEM", PCW, 16));
    spec.file(FileDecl::new("RF", 2, 8, 2).ctrl(1).visible());

    // Stage 0: fetch with the predictor maintaining FPC.
    let mut f0 = Netlist::new("F");
    let pc = f0.input("PC", PCW); // the speculated port
    let insn = f0.input("insn", 16);
    f0.label("IR", insn);
    let pcp = f0.or(pc, pc); // distinct net: PCp := fetch address
    f0.label("PCp", pcp);
    let one = f0.constant(1, PCW);
    let next_line = f0.add(pc, one);
    let fpc = match predictor {
        Predictor::NextLine => next_line,
        Predictor::AlwaysTaken => {
            let op = f0.slice(insn, 15, 14);
            let one2 = f0.constant(1, 2);
            let is_beqz = f0.eq(op, one2);
            let target = f0.slice(insn, PCW - 1, 0);
            f0.mux(is_beqz, target, next_line)
        }
    };
    f0.label("FPC", fpc);
    let mut fa = Netlist::new("F_addr");
    let pca = fa.input("PC", PCW);
    let id = fa.or(pca, pca);
    fa.label("addr", id);
    spec.stage(
        0,
        "F",
        Fragment::new(f0).expect("combinational"),
        vec![ReadPort::new(
            "IMEM",
            "insn",
            Fragment::new(fa).expect("combinational"),
        )],
    );

    // Stage 1: execute ALU, resolve branch condition.
    let mut f1 = Netlist::new("X");
    let ir = f1.input("IR", 16);
    let srcv = f1.input("srcv", 8);
    let op = f1.slice(ir, 15, 14);
    let one2 = f1.constant(1, 2);
    let is_beqz = f1.eq(op, one2);
    let is_alu = f1.not(is_beqz);
    let imm4 = f1.slice(ir, 13, 10);
    let imm = f1.zext(imm4, 8);
    let x = f1.add(srcv, imm);
    f1.label("X", x);
    let zero8 = f1.constant(0, 8);
    let src_zero = f1.eq(srcv, zero8);
    let tk = f1.and(is_beqz, src_zero);
    f1.label("TK", tk);
    let tgt = f1.slice(ir, PCW - 1, 0);
    f1.label("TGT", tgt);
    f1.label("RF.we", is_alu);
    let wa = f1.slice(ir, 7, 6);
    f1.label("RF.wa", wa);
    let mut ra = Netlist::new("X_src");
    let ir_a = ra.input("IR", 16);
    let a = ra.slice(ir_a, 9, 8);
    ra.label("addr", a);
    spec.stage(
        1,
        "X",
        Fragment::new(f1).expect("combinational"),
        vec![ReadPort::new(
            "RF",
            "srcv",
            Fragment::new(ra).expect("combinational"),
        )],
    );

    // Stage 2: retire — architectural PC and the RF write.
    let mut f2 = Netlist::new("W");
    let tk = f2.input("TK", 1);
    let tgt = f2.input("TGT", PCW);
    let pcp = f2.input("PCp", PCW);
    let x = f2.input("X", 8);
    let one = f2.constant(1, PCW);
    let next = f2.add(pcp, one);
    let newpc = f2.mux(tk, tgt, next);
    f2.label("PC", newpc);
    f2.label("RF", x);
    spec.stage(2, "W", Fragment::new(f2).expect("combinational"), vec![]);

    spec.plan()?;
    Ok(spec)
}

/// The designer options: RF write-stage forwarding, PC speculated at
/// fetch (guess = `FPC`), verified in decode by re-reading the
/// operand, with the actual value repairing `FPC` on rollback.
pub fn branchy_synth_options() -> SynthOptions {
    let mut guess = Netlist::new("bp_guess");
    let fpc = guess.input("FPC", PCW);
    let g = guess.or(fpc, fpc);
    guess.label("guess", g);
    SynthOptions::new()
        .with_forwarding(ForwardingSpec::forward_from_write_stage("RF"))
        .with_forwarding(ForwardingSpec::forward_from_write_stage("PC"))
        .with_speculation(SpeculationSpec {
            name: "bp".into(),
            stage: 0,
            port: "PC".into(),
            guess: Fragment::new(guess).expect("combinational"),
            resolve_stage: 1,
            actual: ActualSource::Reread,
            fixups: vec![Fixup {
                register: "FPC".into(),
                value: FixupValue::Actual,
            }],
        })
}

/// A random branchy program: `alu_run` ALU instructions between
/// branches, branches jumping backward to loop heads or forward, with
/// roughly the requested taken rate (controlled via which register the
/// branch tests).
pub fn branchy_program(branch_frac: f64, seed: u64) -> Vec<u16> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let len = 1usize << PCW;
    let mut prog = Vec::with_capacity(len);
    for i in 0..len {
        let b: f64 = rng.gen();
        let instr = if b < branch_frac {
            // Forward target within a few instructions (keeps the
            // program flowing around the whole memory).
            let target = ((i + rng.gen_range(2usize..6)) % len) as u8;
            BInstr::Beqz {
                // src 0 reads RF[0]: often zero -> frequently taken;
                // src 1..3: usually nonzero -> rarely taken.
                src: rng.gen_range(0..4),
                target,
            }
        } else {
            BInstr::Alu {
                dst: rng.gen_range(1..4),
                src: rng.gen_range(0..4),
                imm: rng.gen_range(0..16),
            }
        };
        prog.push(instr.encode());
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_roundtrip_fields() {
        let w = BInstr::Alu {
            dst: 2,
            src: 3,
            imm: 9,
        }
        .encode();
        assert_eq!(w >> 14 & 3, 0);
        assert_eq!(w >> 10 & 15, 9);
        assert_eq!(w >> 8 & 3, 3);
        assert_eq!(w >> 6 & 3, 2);
        let w = BInstr::Beqz { src: 1, target: 33 }.encode();
        assert_eq!(w >> 14 & 3, 1);
        assert_eq!(w >> 8 & 3, 1);
        assert_eq!(w & 63, 33);
    }

    #[test]
    fn reference_executes_branches() {
        // 0: alu r1 := r1 + 1 ; 1: beqz r0 -> 0 (taken forever)
        let prog = vec![
            BInstr::Alu {
                dst: 1,
                src: 1,
                imm: 1,
            }
            .encode(),
            BInstr::Beqz { src: 0, target: 0 }.encode(),
        ];
        let rf = reference_run(&prog, 10);
        assert_eq!(rf[1], 5); // 5 ALU executions in 10 steps
    }

    #[test]
    fn specs_plan_for_both_predictors() {
        for p in [Predictor::NextLine, Predictor::AlwaysTaken] {
            let plan = build_branchy_spec(p).unwrap().plan().unwrap();
            assert_eq!(plan.n_stages(), 3);
        }
    }
}
