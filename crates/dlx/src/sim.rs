//! Golden instruction-level DLX simulator.
//!
//! Defines the architectural semantics the hardware is held to,
//! including the **delayed-PC** mechanism that gives the machine its
//! single branch delay slot: the architectural state carries two
//! program counters,
//!
//! * `DPC` — the address of the instruction about to execute,
//! * `PC`  — the address of the one after it,
//!
//! and every instruction performs `DPC := PC; PC := f(...)` where `f`
//! is `PC + 1` for straight-line code and the branch/jump target
//! otherwise. A taken branch therefore affects the *second* following
//! instruction — the instruction in the delay slot always executes.
//!
//! `HALT` sets `PC := DPC` (a self-loop); the simulator reports it via
//! [`StopReason::Halted`].

use crate::isa::{AluOp, Instr, Reg, SubKind};
use crate::machine::DlxConfig;

/// Why [`IsaSim::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `HALT` retired.
    Halted,
    /// The step budget was exhausted.
    OutOfFuel,
    /// An undecodable instruction word was fetched.
    IllegalInstruction {
        /// Address of the offending word.
        at: u32,
        /// The word itself.
        word: u32,
    },
}

/// The golden simulator.
///
/// ```
/// use autopipe_dlx::{DlxConfig, IsaSim};
/// use autopipe_dlx::asm::assemble;
///
/// # fn main() -> Result<(), autopipe_dlx::asm::AsmError> {
/// let prog = assemble(
///     "   addi r1, r0, 20
///         addi r2, r1, 22
///         sw   r2, 0(r0)
///         halt
///         nop",
/// )?;
/// let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
/// let mut sim = IsaSim::new(DlxConfig::default(), &words);
/// sim.run(100);
/// assert!(sim.halted());
/// assert_eq!(sim.dmem[0], 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IsaSim {
    cfg: DlxConfig,
    /// Register file (entry 0 reads as zero).
    pub regs: Vec<u32>,
    /// Data memory (word addressed).
    pub dmem: Vec<u32>,
    imem: Vec<u32>,
    /// Address of the next instruction to execute.
    pub dpc: u32,
    /// Address of the instruction after that (delayed-PC architecture).
    pub pc: u32,
    halted: bool,
    /// Retired instruction count.
    pub retired: u64,
}

impl IsaSim {
    /// Creates a simulator with the given configuration and program.
    pub fn new(cfg: DlxConfig, program: &[u32]) -> IsaSim {
        let mut imem = program.to_vec();
        imem.resize(1 << cfg.imem_aw, 0);
        IsaSim {
            regs: vec![0; 1 << cfg.gpr_aw],
            dmem: vec![0; 1 << cfg.dmem_aw],
            imem,
            dpc: 0,
            pc: 1,
            halted: false,
            retired: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DlxConfig {
        self.cfg
    }

    /// Whether a `HALT` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize & ((1 << self.cfg.gpr_aw) - 1)]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        let idx = r.num() as usize & ((1 << self.cfg.gpr_aw) - 1);
        if idx != 0 {
            self.regs[idx] = v;
        }
    }

    /// Word index of a byte address (naturally aligned; low bits
    /// ignored), wrapped into the data memory.
    fn mem_index(&self, addr: u32) -> usize {
        ((addr >> 2) as usize) & ((1 << self.cfg.dmem_aw) - 1)
    }

    /// Reads a naturally aligned sub-word value (before extension).
    fn load_sub(&self, kind: SubKind, addr: u32) -> u32 {
        let word = self.dmem[self.mem_index(addr)];
        if kind.is_byte() {
            let lane = addr & 3;
            let byte = (word >> (8 * lane)) & 0xff;
            if kind.is_signed() {
                byte as u8 as i8 as i32 as u32
            } else {
                byte
            }
        } else {
            let lane = addr >> 1 & 1;
            let half = (word >> (16 * lane)) & 0xffff;
            if kind.is_signed() {
                half as u16 as i16 as i32 as u32
            } else {
                half
            }
        }
    }

    /// Merges a sub-word store into the target word.
    fn store_sub(&mut self, kind: SubKind, addr: u32, value: u32) {
        let idx = self.mem_index(addr);
        let old = self.dmem[idx];
        self.dmem[idx] = if kind.is_byte() {
            let lane = addr & 3;
            let mask = 0xffu32 << (8 * lane);
            (old & !mask) | ((value & 0xff) << (8 * lane))
        } else {
            let lane = addr >> 1 & 1;
            let mask = 0xffffu32 << (16 * lane);
            (old & !mask) | ((value & 0xffff) << (16 * lane))
        };
    }

    /// Sign- or zero-extends an I-type immediate per DLX convention.
    fn imm_ext(op: AluOp, imm: u16) -> u32 {
        match op {
            // Logical and shift immediates are zero extended; shifts
            // additionally only use the low 5 bits in the ALU.
            AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Sll
            | AluOp::Srl
            | AluOp::Sra
            | AluOp::Sltu => u32::from(imm),
            _ => imm as i16 as i32 as u32,
        }
    }

    /// Executes one instruction. Returns `None` while running, or the
    /// stop reason.
    pub fn step(&mut self) -> Option<StopReason> {
        if self.halted {
            return Some(StopReason::Halted);
        }
        let p = self.dpc;
        let word = self.imem[(p as usize) & ((1 << self.cfg.imem_aw) - 1)];
        let Some(instr) = Instr::decode(word) else {
            return Some(StopReason::IllegalInstruction { at: p, word });
        };
        // Delayed PC update: DPC := PC; PC := f.
        let seq_next = self.pc.wrapping_add(1);
        let mut f = seq_next;
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), Self::imm_ext(op, imm));
                self.set_reg(rd, v);
            }
            Instr::Lhi { rd, imm } => {
                self.set_reg(rd, u32::from(imm) << 16);
            }
            Instr::Lw { rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i16 as i32 as u32);
                let v = self.dmem[self.mem_index(addr)];
                self.set_reg(rd, v);
            }
            Instr::Sw { rs2, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i16 as i32 as u32);
                let idx = self.mem_index(addr);
                self.dmem[idx] = self.reg(rs2);
            }
            Instr::LoadSub { kind, rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i16 as i32 as u32);
                let v = self.load_sub(kind, addr);
                self.set_reg(rd, v);
            }
            Instr::StoreSub {
                kind,
                rs2,
                rs1,
                imm,
            } => {
                let addr = self.reg(rs1).wrapping_add(imm as i16 as i32 as u32);
                let v = self.reg(rs2);
                self.store_sub(kind, addr, v);
            }
            Instr::Beqz { rs1, imm } => {
                if self.reg(rs1) == 0 {
                    f = p.wrapping_add(1).wrapping_add(imm as i16 as i32 as u32);
                }
            }
            Instr::Bnez { rs1, imm } => {
                if self.reg(rs1) != 0 {
                    f = p.wrapping_add(1).wrapping_add(imm as i16 as i32 as u32);
                }
            }
            Instr::J { target } => f = target,
            Instr::Jal { target } => {
                self.set_reg(Reg::LINK, p.wrapping_add(2));
                f = target;
            }
            Instr::Jr { rs1 } => f = self.reg(rs1),
            Instr::Jalr { rd, rs1 } => {
                // Read the target before writing the link (rd may equal
                // rs1).
                f = self.reg(rs1);
                self.set_reg(rd, p.wrapping_add(2));
            }
            Instr::Halt => {
                f = p;
                self.halted = true;
            }
        }
        self.dpc = self.pc;
        self.pc = f;
        self.retired += 1;
        if self.halted {
            Some(StopReason::Halted)
        } else {
            None
        }
    }

    /// Runs until halt, an illegal instruction, or `fuel` instructions.
    pub fn run(&mut self, fuel: u64) -> StopReason {
        for _ in 0..fuel {
            if let Some(r) = self.step() {
                return r;
            }
        }
        StopReason::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{encode_program, Instr::*, NOP};

    fn cfg() -> DlxConfig {
        DlxConfig::default()
    }

    fn run_prog(prog: &[Instr], fuel: u64) -> IsaSim {
        let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(cfg(), &words);
        sim.run(fuel);
        sim
    }

    #[test]
    fn straight_line_arithmetic() {
        let sim = run_prog(
            &[
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 5,
                },
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(1),
                    imm: 7,
                },
                Alu {
                    op: AluOp::Sub,
                    rd: Reg(3),
                    rs1: Reg(2),
                    rs2: Reg(1),
                },
                Halt,
            ],
            100,
        );
        assert!(sim.halted());
        assert_eq!(sim.regs[1], 5);
        assert_eq!(sim.regs[2], 12);
        assert_eq!(sim.regs[3], 7);
        assert_eq!(sim.retired, 4);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let sim = run_prog(
            &[
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(0),
                    rs1: Reg(0),
                    imm: 99,
                },
                Halt,
            ],
            10,
        );
        assert_eq!(sim.regs[0], 0);
    }

    #[test]
    fn delay_slot_executes_on_taken_branch() {
        // beqz r0, +2 (taken; target = pc+1+2 = 3? offset relative to
        // delay slot: target = 0+1+2 = 3)
        let sim = run_prog(
            &[
                Beqz {
                    rs1: Reg(0),
                    imm: 2,
                }, // 0: taken, target 3
                AluImm {
                    // 1: delay slot — must execute
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 11,
                },
                AluImm {
                    // 2: skipped
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(0),
                    imm: 22,
                },
                Halt, // 3
            ],
            10,
        );
        assert_eq!(sim.regs[1], 11, "delay slot executed");
        assert_eq!(sim.regs[2], 0, "branch shadow skipped");
    }

    #[test]
    fn untaken_branch_falls_through() {
        let sim = run_prog(
            &[
                Bnez {
                    rs1: Reg(0),
                    imm: 2,
                },
                NOP,
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(0),
                    imm: 22,
                },
                Halt,
            ],
            10,
        );
        assert_eq!(sim.regs[2], 22);
    }

    #[test]
    fn jal_links_past_delay_slot() {
        let sim = run_prog(
            &[
                Jal { target: 4 }, // 0: r31 := 2
                NOP,               // 1: delay slot
                AluImm {
                    // 2: return lands here
                    op: AluOp::Add,
                    rd: Reg(3),
                    rs1: Reg(0),
                    imm: 33,
                },
                Halt, // 3
                // 4: subroutine
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(4),
                    rs1: Reg(0),
                    imm: 44,
                },
                Jr { rs1: Reg(31) }, // 5
                NOP,                 // 6: delay slot of jr
            ],
            50,
        );
        assert_eq!(sim.regs[31], 2);
        assert_eq!(sim.regs[4], 44);
        assert_eq!(sim.regs[3], 33);
        assert!(sim.halted());
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let sim = run_prog(
            &[
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 10, // address base
                },
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(0),
                    imm: 0x1234,
                },
                Sw {
                    rs2: Reg(2),
                    rs1: Reg(1),
                    imm: 6, // byte address 16 -> word 4
                },
                Lw {
                    rd: Reg(3),
                    rs1: Reg(1),
                    imm: 6,
                },
                Halt,
            ],
            10,
        );
        assert_eq!(sim.dmem[4], 0x1234);
        assert_eq!(sim.regs[3], 0x1234);
    }

    #[test]
    fn subword_loads_and_stores() {
        let sim = run_prog(
            &[
                Lhi {
                    rd: Reg(1),
                    imm: 0xdead,
                },
                AluImm {
                    op: AluOp::Or,
                    rd: Reg(1),
                    rs1: Reg(1),
                    imm: 0xbeef,
                },
                Sw {
                    rs2: Reg(1),
                    rs1: Reg(0),
                    imm: 8, // word 2 := 0xdeadbeef
                },
                LoadSub {
                    kind: SubKind::Byte,
                    rd: Reg(2),
                    rs1: Reg(0),
                    imm: 8, // lane 0: 0xef sign-extended
                },
                LoadSub {
                    kind: SubKind::ByteU,
                    rd: Reg(3),
                    rs1: Reg(0),
                    imm: 11, // lane 3: 0xde
                },
                LoadSub {
                    kind: SubKind::Half,
                    rd: Reg(4),
                    rs1: Reg(0),
                    imm: 10, // upper half: 0xdead sign-extended
                },
                LoadSub {
                    kind: SubKind::HalfU,
                    rd: Reg(5),
                    rs1: Reg(0),
                    imm: 8, // lower half: 0xbeef
                },
                StoreSub {
                    kind: SubKind::Byte,
                    rs2: Reg(3),
                    rs1: Reg(0),
                    imm: 9, // word 2 lane 1 := 0xde
                },
                StoreSub {
                    kind: SubKind::Half,
                    rs2: Reg(4),
                    rs1: Reg(0),
                    imm: 14, // word 3 upper half := 0xdead (low half of r4)
                },
                Halt,
            ],
            20,
        );
        assert_eq!(sim.regs[2], 0xffff_ffef);
        assert_eq!(sim.regs[3], 0xde);
        assert_eq!(sim.regs[4], 0xffff_dead);
        assert_eq!(sim.regs[5], 0xbeef);
        assert_eq!(sim.dmem[2], 0xdead_deef);
        assert_eq!(sim.dmem[3], 0xdead_0000);
    }

    #[test]
    fn negative_branch_offset_loops() {
        // r1 counts down from 3; loop body adds 1 to r2.
        let sim = run_prog(
            &[
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 3,
                },
                // 1: loop: r2++
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(2),
                    imm: 1,
                },
                // 2: r1--
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(1),
                    imm: 0xffff, // -1
                },
                // 3: bnez r1, loop (target = 3+1-4 = 0? want 1:
                // target = p+1+imm = 4+imm = 1 -> imm = -3)
                Bnez {
                    rs1: Reg(1),
                    imm: (-3i16) as u16,
                },
                NOP, // 4: delay slot
                Halt,
            ],
            100,
        );
        assert!(sim.halted());
        assert_eq!(sim.regs[2], 3);
        assert_eq!(sim.regs[1], 0);
    }

    #[test]
    fn lhi_and_ori_build_constants() {
        let sim = run_prog(
            &[
                Lhi {
                    rd: Reg(1),
                    imm: 0xdead,
                },
                AluImm {
                    op: AluOp::Or,
                    rd: Reg(1),
                    rs1: Reg(1),
                    imm: 0xbeef,
                },
                Halt,
            ],
            10,
        );
        assert_eq!(sim.regs[1], 0xdead_beef);
    }

    #[test]
    fn halt_stops_before_following_instructions() {
        let sim = run_prog(
            &[
                Halt,
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 1,
                },
            ],
            10,
        );
        assert_eq!(sim.regs[1], 0, "nothing after halt executes");
        assert_eq!(sim.retired, 1);
    }

    #[test]
    fn set_comparison_ops() {
        let sim = run_prog(
            &[
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    imm: 0xffff, // r1 = -1
                },
                AluImm {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(0),
                    imm: 1,
                },
                Alu {
                    op: AluOp::Sgt,
                    rd: Reg(3),
                    rs1: Reg(2),
                    rs2: Reg(1),
                }, // 1 > -1 -> 1
                Alu {
                    op: AluOp::Sle,
                    rd: Reg(4),
                    rs1: Reg(1),
                    rs2: Reg(2),
                }, // -1 <= 1 -> 1
                Alu {
                    op: AluOp::Seq,
                    rd: Reg(5),
                    rs1: Reg(1),
                    rs2: Reg(1),
                }, // 1
                Alu {
                    op: AluOp::Sne,
                    rd: Reg(6),
                    rs1: Reg(1),
                    rs2: Reg(1),
                }, // 0
                Alu {
                    op: AluOp::Sge,
                    rd: Reg(7),
                    rs1: Reg(1),
                    rs2: Reg(2),
                }, // -1 >= 1 -> 0
                Halt,
            ],
            20,
        );
        assert_eq!(sim.regs[3], 1);
        assert_eq!(sim.regs[4], 1);
        assert_eq!(sim.regs[5], 1);
        assert_eq!(sim.regs[6], 0);
        assert_eq!(sim.regs[7], 0);
    }

    #[test]
    fn jalr_with_rd_equal_rs1_reads_before_link() {
        let prog = encode_program(&[
            AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: 4,
            },
            Jalr {
                rd: Reg(1),
                rs1: Reg(1),
            }, // jump to 4, r1 := 3
            NOP, // 2: delay slot
            AluImm {
                // 3: skipped
                op: AluOp::Add,
                rd: Reg(5),
                rs1: Reg(0),
                imm: 55,
            },
            Halt, // 4: target
        ]);
        let words: Vec<u32> = prog.iter().map(|w| *w as u32).collect();
        let mut sim = IsaSim::new(cfg(), &words);
        sim.run(10);
        assert_eq!(sim.regs[1], 3, "link value reads target before write");
        assert_eq!(sim.regs[5], 0, "jump shadow skipped");
        assert!(sim.halted());
    }
}
