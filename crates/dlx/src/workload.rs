//! Workload generators for the experiments.
//!
//! * [`random_program`] — terminating random programs with a
//!   controllable **hazard profile**: how often an instruction reads
//!   the result of a recent predecessor (RAW density and distance),
//!   the load/store fraction, and the (forward-only) branch fraction.
//!   These drive the CPI sweeps of experiments E4/E5.
//! * Kernels ([`fib`], [`memcpy`], [`bubble_sort`]) — the "realistic
//!   scenario" programs used by the examples and integration tests.

use crate::asm::assemble;
use crate::isa::{AluOp, Instr, Reg, SubKind, NOP};
use crate::machine::DlxConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hazard characteristics of a generated program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardProfile {
    /// Probability that an instruction reads the destination of a
    /// recent predecessor.
    pub raw_density: f64,
    /// Distance distribution of such reads: probability that the
    /// producer is the *immediately* preceding instruction (otherwise
    /// it is 2–3 back).
    pub short_distance: f64,
    /// Fraction of memory instructions (half loads, half stores).
    pub mem_frac: f64,
    /// Fraction of (forward, short) conditional branches.
    pub branch_frac: f64,
}

impl Default for HazardProfile {
    fn default() -> Self {
        HazardProfile {
            raw_density: 0.3,
            short_distance: 0.5,
            mem_frac: 0.2,
            branch_frac: 0.1,
        }
    }
}

impl HazardProfile {
    /// A profile with no data dependencies at all.
    pub fn independent() -> Self {
        HazardProfile {
            raw_density: 0.0,
            short_distance: 0.0,
            mem_frac: 0.0,
            branch_frac: 0.0,
        }
    }

    /// A profile where every instruction depends on its predecessor.
    pub fn serial() -> Self {
        HazardProfile {
            raw_density: 1.0,
            short_distance: 1.0,
            mem_frac: 0.0,
            branch_frac: 0.0,
        }
    }
}

/// Generates a terminating random program of roughly `len`
/// instructions (plus the trailing `HALT`/`NOP`). Branches are always
/// forward with short offsets, so the program cannot loop; it fits the
/// instruction memory of `cfg` or panics.
///
/// # Panics
///
/// Panics if `len + 2` exceeds the instruction memory.
pub fn random_program(cfg: DlxConfig, len: usize, profile: HazardProfile, seed: u64) -> Vec<Instr> {
    assert!(
        len + 2 <= 1 << cfg.imem_aw,
        "program of {len} instructions does not fit"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let nregs = 1u8 << cfg.gpr_aw.min(5);
    let reg_max = nregs.max(2);
    let mut prog: Vec<Instr> = Vec::with_capacity(len + 2);
    // Track recent destination registers for dependence injection.
    let mut recent: Vec<Reg> = Vec::new();
    // Cycles where a branch shadow forbids placing another branch.
    let mut no_branch_until = 0usize;

    while prog.len() < len {
        let idx = prog.len();
        // A register that is *not* a recent destination, so accidental
        // dependencies do not dilute the profile knob.
        let rand_reg = |rng: &mut StdRng, recent: &[Reg]| {
            for _ in 0..4 {
                let r = Reg(rng.gen_range(1..reg_max));
                if !recent.iter().rev().take(3).any(|&d| d == r) {
                    return r;
                }
            }
            Reg(rng.gen_range(1..reg_max))
        };
        let pick_src = |rng: &mut StdRng, recent: &[Reg]| -> Option<Reg> {
            if recent.is_empty() || !rng.gen_bool(profile.raw_density) {
                return None;
            }
            let d = if recent.len() < 2 || rng.gen_bool(profile.short_distance) {
                1
            } else {
                rng.gen_range(2..=3.min(recent.len()))
            };
            recent.get(recent.len().saturating_sub(d)).copied()
        };
        let r = rng.gen::<f64>();
        let instr = if r < profile.branch_frac && idx >= no_branch_until && len - idx > 4 {
            // Forward branch skipping 1..3 instructions; its delay slot
            // executes.
            let skip = rng.gen_range(1..=3u16);
            no_branch_until = idx + 2;
            let rs1 = pick_src(&mut rng, &recent).unwrap_or_else(|| rand_reg(&mut rng, &recent));
            recent.push(Reg::R0); // branch writes nothing; keep distances aligned
            if rng.gen_bool(0.5) {
                Instr::Beqz { rs1, imm: skip }
            } else {
                Instr::Bnez { rs1, imm: skip }
            }
        } else if r < profile.branch_frac + profile.mem_frac {
            let base = pick_src(&mut rng, &recent).unwrap_or_else(|| rand_reg(&mut rng, &recent));
            let off = rng.gen_range(0..1u16 << cfg.dmem_aw.min(8));
            if rng.gen_bool(0.5) {
                let rd = rand_reg(&mut rng, &recent);
                recent.push(rd);
                // Mix word and sub-word loads (exercises shift4load).
                match rng.gen_range(0..5) {
                    0 => Instr::LoadSub {
                        kind: SubKind::Byte,
                        rd,
                        rs1: base,
                        imm: off,
                    },
                    1 => Instr::LoadSub {
                        kind: SubKind::HalfU,
                        rd,
                        rs1: base,
                        imm: off,
                    },
                    _ => Instr::Lw {
                        rd,
                        rs1: base,
                        imm: off,
                    },
                }
            } else {
                let rs2 =
                    pick_src(&mut rng, &recent).unwrap_or_else(|| rand_reg(&mut rng, &recent));
                recent.push(Reg::R0);
                match rng.gen_range(0..5) {
                    0 => Instr::StoreSub {
                        kind: SubKind::Byte,
                        rs2,
                        rs1: base,
                        imm: off,
                    },
                    1 => Instr::StoreSub {
                        kind: SubKind::Half,
                        rs2,
                        rs1: base,
                        imm: off,
                    },
                    _ => Instr::Sw {
                        rs2,
                        rs1: base,
                        imm: off,
                    },
                }
            }
        } else {
            let rd = rand_reg(&mut rng, &recent);
            let rs1 = pick_src(&mut rng, &recent).unwrap_or_else(|| rand_reg(&mut rng, &recent));
            recent.push(rd);
            if rng.gen_bool(0.5) {
                let rs2 =
                    pick_src(&mut rng, &recent).unwrap_or_else(|| rand_reg(&mut rng, &recent));
                let ops = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Slt,
                    AluOp::Seq,
                    AluOp::Sne,
                    AluOp::Sge,
                ];
                Instr::Alu {
                    op: ops[rng.gen_range(0..ops.len())],
                    rd,
                    rs1,
                    rs2,
                }
            } else {
                Instr::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    imm: rng.gen_range(0..256),
                }
            }
        };
        prog.push(instr);
        if recent.len() > 8 {
            recent.remove(0);
        }
    }
    prog.push(Instr::Halt);
    prog.push(NOP); // benign halt-loop companion
    prog
}

/// Iterative Fibonacci: computes `fib(n)` into `DMEM[0]`.
pub fn fib(n: u16) -> Vec<Instr> {
    assemble(&format!(
        "      addi r1, r0, {n}   ; counter
               addi r2, r0, 0     ; fib(0)
               addi r3, r0, 1     ; fib(1)
               beqz r1, done
               nop
        loop:  add  r4, r2, r3
               add  r2, r3, r0
               add  r3, r4, r0
               subi r1, r1, 1
               bnez r1, loop
               nop
        done:  sw   r2, 0(r0)
               halt
               nop"
    ))
    .expect("kernel assembles")
}

/// Copies `n` words from byte address `src` to byte address `dst`.
pub fn memcpy(src: u16, dst: u16, n: u16) -> Vec<Instr> {
    assemble(&format!(
        "      addi r1, r0, {src}
               addi r2, r0, {dst}
               addi r3, r0, {n}
               beqz r3, done
               nop
        loop:  lw   r4, 0(r1)
               sw   r4, 0(r2)
               addi r1, r1, 4
               addi r2, r2, 4
               subi r3, r3, 1
               bnez r3, loop
               nop
        done:  halt
               nop"
    ))
    .expect("kernel assembles")
}

/// Bubble-sorts `n` words starting at byte address `base`, ascending
/// (unsigned).
pub fn bubble_sort(base: u16, n: u16) -> Vec<Instr> {
    assemble(&format!(
        "       addi r1, r0, {n}    ; outer counter
        outer:  subi r1, r1, 1
                beqz r1, done
                nop
                addi r2, r0, {base} ; byte pointer
                add  r3, r1, r0     ; inner counter
        inner:  lw   r4, 0(r2)
                lw   r5, 4(r2)
                sltu r6, r5, r4     ; r5 < r4 -> swap
                beqz r6, noswap
                nop
                sw   r5, 0(r2)
                sw   r4, 4(r2)
        noswap: addi r2, r2, 4
                subi r3, r3, 1
                bnez r3, inner
                nop
                j    outer
                nop
        done:   halt
                nop"
    ))
    .expect("kernel assembles")
}

/// Byte-string copy: copies bytes from `src` to `dst` until (and
/// including) a zero byte — exercises `lb`/`sb` and the shift4load
/// path.
pub fn strcpy(src: u16, dst: u16) -> Vec<Instr> {
    assemble(&format!(
        "      addi r1, r0, {src}
               addi r2, r0, {dst}
        loop:  lbu  r3, 0(r1)
               sb   r3, 0(r2)
               addi r1, r1, 1
               addi r2, r2, 1
               bnez r3, loop
               nop
               halt
               nop"
    ))
    .expect("kernel assembles")
}

/// Euclid's gcd as a JAL/JR subroutine: computes `gcd(a, b)` into
/// `DMEM[0]` — exercises call/return through the pipeline.
pub fn gcd(a: u16, b: u16) -> Vec<Instr> {
    assemble(&format!(
        "       addi r1, r0, {a}
                addi r2, r0, {b}
                jal  gcd
                nop
                sw   r1, 0(r0)
                halt
                nop
        ; gcd(r1, r2) -> r1, clobbers r3
        gcd:    beqz r2, ret
                nop
        step:   sltu r3, r1, r2    ; r1 < r2 ?
                beqz r3, sub
                nop
                add  r3, r1, r0    ; swap
                add  r1, r2, r0
                add  r2, r3, r0
        sub:    sub  r1, r1, r2
                bnez r2, gcd
                nop
        ret:    jr   r31
                nop"
    ))
    .expect("kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{IsaSim, StopReason};

    fn run(cfg: DlxConfig, prog: &[Instr], fuel: u64) -> IsaSim {
        let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(cfg, &words);
        let r = sim.run(fuel);
        assert_eq!(r, StopReason::Halted, "workload must terminate");
        sim
    }

    #[test]
    fn fib_computes_correctly() {
        for (n, want) in [(0u16, 0u32), (1, 1), (2, 1), (3, 2), (10, 55), (20, 6765)] {
            let sim = run(DlxConfig::default(), &fib(n), 10_000);
            assert_eq!(sim.dmem[0], want, "fib({n})");
        }
    }

    #[test]
    fn memcpy_moves_data() {
        let prog = memcpy(40, 80, 5); // byte addresses of words 10 / 20
        let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(DlxConfig::default(), &words);
        for i in 0..5 {
            sim.dmem[10 + i] = 100 + i as u32;
        }
        assert_eq!(sim.run(10_000), StopReason::Halted);
        for i in 0..5 {
            assert_eq!(sim.dmem[20 + i], 100 + i as u32);
        }
    }

    #[test]
    fn bubble_sort_sorts() {
        let prog = bubble_sort(0, 6);
        let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(DlxConfig::default(), &words);
        let data = [5u32, 1, 4, 2, 6, 3];
        for (i, v) in data.iter().enumerate() {
            sim.dmem[i] = *v;
        }
        assert_eq!(sim.run(100_000), StopReason::Halted);
        assert_eq!(&sim.dmem[..6], &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn gcd_computes_correctly() {
        for (a, b, want) in [
            (48u16, 18u16, 6u32),
            (7, 13, 1),
            (0, 5, 5),
            (9, 0, 9),
            (36, 36, 36),
        ] {
            let sim = run(DlxConfig::default(), &gcd(a, b), 10_000);
            assert_eq!(sim.dmem[0], want, "gcd({a},{b})");
        }
    }

    #[test]
    fn strcpy_copies_bytes() {
        let prog = strcpy(0, 64); // byte 64 = word 16
        let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
        let mut sim = IsaSim::new(DlxConfig::default(), &words);
        // "Hi!\0" packed little-endian into word 0.
        sim.dmem[0] = u32::from_le_bytes(*b"Hi!\0");
        assert_eq!(sim.run(10_000), StopReason::Halted);
        assert_eq!(sim.dmem[16].to_le_bytes(), *b"Hi!\0");
    }

    #[test]
    fn random_programs_terminate_and_vary() {
        let cfg = DlxConfig::default();
        for seed in 0..20 {
            let prog = random_program(cfg, 100, HazardProfile::default(), seed);
            assert!(prog.len() <= 102);
            let sim = run(cfg, &prog, 1_000);
            assert!(sim.retired <= 110, "forward branches cannot loop");
        }
    }

    #[test]
    fn serial_profile_creates_chains() {
        let cfg = DlxConfig::default();
        let prog = random_program(cfg, 50, HazardProfile::serial(), 7);
        // Count adjacent RAW dependencies.
        let mut chains = 0;
        for w in prog.windows(2) {
            if let Some(d) = w[0].dest() {
                if d != Reg::R0 && w[1].sources().contains(&d) {
                    chains += 1;
                }
            }
        }
        assert!(chains > 30, "serial profile must chain ({chains})");
    }

    #[test]
    fn independent_profile_has_no_chains() {
        let cfg = DlxConfig::default();
        let prog = random_program(cfg, 50, HazardProfile::independent(), 7);
        let mut chains = 0;
        for w in prog.windows(2) {
            if let Some(d) = w[0].dest() {
                if d != Reg::R0 && w[1].sources().contains(&d) {
                    chains += 1;
                }
            }
        }
        assert_eq!(chains, 0);
    }
}
