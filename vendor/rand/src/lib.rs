//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` helpers
//! `gen`, `gen_range` and `gen_bool`. The generator is deterministic —
//! every call site in the workspace seeds explicitly, so reproducibility
//! is a feature here, not a limitation.
//!
//! The distribution machinery is intentionally simple: integer ranges use
//! a modulo reduction (bias is irrelevant for test stimulus), and floats
//! use the standard 53-bit mantissa-fill for the unit interval.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be drawn "from the standard distribution" via
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw 64-bit draw onto `[0, 1)` with 53 bits of precision.
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rng.next_u64()) % span;
                (lo as i128 + off as i128) as $t
            }
        }

        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 256-bit PRNG (xoshiro256**), seeded via splitmix64
    /// like the real `StdRng::seed_from_u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
