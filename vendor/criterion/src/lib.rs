//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the criterion 0.5 API the workspace's benches
//! use. It is a real (if simple) harness: each benchmark is warmed up,
//! then timed for the configured measurement window, and a
//! median-of-samples line is printed. There is no statistical analysis,
//! HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; printed alongside the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(config: &Criterion, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up window closes,
    // which also calibrates the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += 1;
    }
    let per_iter = warm_elapsed
        .checked_div(warm_iters as u32)
        .unwrap_or(Duration::ZERO);

    // Size each sample so all samples together roughly fill the
    // measurement window.
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        ((per_sample / per_iter.as_secs_f64()).ceil() as u64).max(1)
    };

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {:.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {:.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{}]{rate}  ({} samples x {iters} iters)",
        format_time(median),
        samples.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
