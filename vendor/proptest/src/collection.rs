//! `proptest::collection` — vector strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` whose length lies in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
