//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest this has no value-tree/shrinking machinery:
/// `generate` draws one concrete value from the runner's deterministic
/// RNG.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for `any::<T>()`; constructed via [`crate::arbitrary::any`].
#[derive(Debug, Clone)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: rand::Standard + fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
