//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! reimplements the subset of the proptest 1.x API the workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` macros, the
//! [`Strategy`] trait with `prop_map` and tuple/range/`Just`/`any`
//! strategies, `collection::vec`, and a deterministic [`TestRunner`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim; they are reproducible because the runner's seed is fixed.
//! - **Deterministic by construction.** Each test function runs the same
//!   case sequence on every invocation, so CI is stable.
//! - Only the configuration knob the workspace touches (`cases`) exists.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// `any::<T>()` — the standard strategy for a primitive type.
    pub fn any<T: rand::Standard + std::fmt::Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Parameters are either `name in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`), optionally
/// preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::__proptest_params! { config; body = $body; pats = []; strats = []; $($params)* }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // `name in strategy` with more parameters following.
    ($cfg:ident; body = $body:block; pats = [$($pat:pat,)*]; strats = [$($strat:expr,)*];
     $name:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_params! {
            $cfg; body = $body; pats = [$($pat,)* $name,]; strats = [$($strat,)* $s,]; $($rest)*
        }
    };
    // `name in strategy`, final parameter.
    ($cfg:ident; body = $body:block; pats = [$($pat:pat,)*]; strats = [$($strat:expr,)*];
     $name:ident in $s:expr) => {
        $crate::__proptest_params! {
            $cfg; body = $body; pats = [$($pat,)* $name,]; strats = [$($strat,)* $s,];
        }
    };
    // `name: Type` with more parameters following.
    ($cfg:ident; body = $body:block; pats = [$($pat:pat,)*]; strats = [$($strat:expr,)*];
     $name:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_params! {
            $cfg; body = $body;
            pats = [$($pat,)* $name,];
            strats = [$($strat,)* $crate::arbitrary::any::<$t>(),];
            $($rest)*
        }
    };
    // `name: Type`, final parameter.
    ($cfg:ident; body = $body:block; pats = [$($pat:pat,)*]; strats = [$($strat:expr,)*];
     $name:ident : $t:ty) => {
        $crate::__proptest_params! {
            $cfg; body = $body;
            pats = [$($pat,)* $name,];
            strats = [$($strat,)* $crate::arbitrary::any::<$t>(),];
        }
    };
    // All parameters consumed: run the cases.
    ($cfg:ident; body = $body:block; pats = [$($pat:pat,)*]; strats = [$($strat:expr,)*];) => {
        let strategy = ($($strat,)*);
        let mut runner = $crate::test_runner::TestRunner::new($cfg);
        let outcome = runner.run(&strategy, |($($pat,)*)| {
            $body
            Ok(())
        });
        if let Err(e) = outcome {
            panic!("{}", e);
        }
    };
}

/// Strategy that picks uniformly among the listed strategies. The real
/// crate's `weight => strategy` arms are accepted and honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)+)
        );
    }};
}
