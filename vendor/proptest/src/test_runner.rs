//! Deterministic test runner: generates `config.cases` inputs from a
//! fixed seed and reports the first failing case without shrinking.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default (256) is tuned for a shrinking runner; with
        // deterministic non-shrinking cases a smaller default keeps the
        // suite fast without losing the regression-catching role.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The input is rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    pub fn fail<T: fmt::Display>(reason: T) -> TestCaseError {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject<T: fmt::Display>(reason: T) -> TestCaseError {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

// Lets `?` convert arbitrary errors inside proptest! bodies, mirroring
// the real crate. TestCaseError itself deliberately does not implement
// std::error::Error so this blanket impl cannot overlap with From<Self>.
impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> TestCaseError {
        TestCaseError::fail(e.to_string())
    }
}

/// A property failure, carrying the offending input's debug rendering.
#[derive(Debug)]
pub struct TestError {
    pub case: u32,
    pub input: String,
    pub reason: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proptest case {} failed: {}\n    input: {}",
            self.case, self.reason, self.input
        )
    }
}

pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        // Fixed seed: every invocation replays the same case sequence.
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(0x70726f70_74657374),
        }
    }

    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut case = 0;
        let mut attempts = 0;
        let max_attempts = self.config.cases.saturating_mul(10).max(100);
        while case < self.config.cases {
            attempts += 1;
            if attempts > max_attempts {
                break; // Too many rejects; give up quietly like the real runner.
            }
            let value = strategy.generate(&mut self.rng);
            let rendered = format!("{:?}", value);
            match test(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    return Err(TestError {
                        case,
                        input: rendered,
                        reason,
                    });
                }
            }
        }
        Ok(())
    }
}
