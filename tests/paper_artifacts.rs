//! Structural reproduction of the paper's three artifacts: Table 1
//! (sequential scheduling), Figure 1 (register file write interface)
//! and Figure 2 (generated DLX forwarding hardware).

use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::synth::PipelineSynthesizer;
use autopipe_bench::experiments;

#[test]
fn table1_round_robin_schedule() {
    // Paper Table 1: cycle 0 -> ue_0, cycle 1 -> ue_1, cycle 2 -> ue_2,
    // then repeating.
    let rows = experiments::e1_data(9);
    let want = [
        [true, false, false],
        [false, true, false],
        [false, false, true],
    ];
    for (cycle, row) in rows.iter().enumerate() {
        assert_eq!(row.as_slice(), want[cycle % 3], "cycle {cycle}");
    }
}

#[test]
fn figure1_register_file_interface() {
    // Figure 1: a register file of four registers takes Din, a 2-bit
    // write address Aw and a write enable.
    let text = experiments::e2_render();
    assert!(text.contains("4 entries x 8 bits"));
    assert!(text.contains("Aw[2]"));
    assert!(text.contains("we ="));
    // The precomputed Rwe.j / Rwa.j pipeline exists (paper §2).
    assert!(text.contains("RF.we.1[1]"));
    assert!(text.contains("RF.wa.2[2]"));
}

#[test]
fn figure2_forwarding_structure() {
    let plan = build_dlx_spec(DlxConfig::default())
        .unwrap()
        .plan()
        .unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .unwrap();

    // Hit signals at stages 2, 3, 4 per operand (three "=?" testers,
    // gated by full_2..full_4 and the precomputed GPRwe.j).
    for port in ["GPRa", "GPRb"] {
        for j in [2, 3, 4] {
            assert!(
                pm.netlist.find(&format!("fw.1.{port}.hit.{j}")).is_ok(),
                "{port} hit[{j}]"
            );
        }
        assert!(pm.netlist.find(&format!("g.1.{port}")).is_ok());
    }
    // The precomputed write controls of Figure 2: f4 GPRwa:2/:3/:4.
    for j in [2, 3, 4] {
        assert!(pm.netlist.find(&format!("GPR.wa.{j}")).is_ok());
        assert!(pm.netlist.find(&format!("GPR.we.{j}")).is_ok());
    }
    // The designated forwarding registers C.3 / C.4 ("C:2 and C:3" in
    // the paper's stage-of-computation naming) and the load path
    // MDRr.4 feeding the Din mux.
    assert!(pm.netlist.find("C.3").is_ok());
    assert!(pm.netlist.find("C.4").is_ok());
    assert!(pm.netlist.find("MDRr.4").is_ok());
    // One pipelined valid bit for the GPR/C chain.
    assert!(pm.netlist.find("fw.GPR.v.3").is_ok());
    assert_eq!(pm.report.valid_bits, 1);
}

#[test]
fn report_binary_sections_render() {
    // Smoke-check the cheap render functions end to end (the heavy
    // sweeps run in the bench crate's own tests).
    assert!(experiments::e1_render().contains("Table 1"));
    assert!(experiments::e2_render().contains("Figure 1"));
    assert!(experiments::e3_render().contains("Figure 2"));
}
