//! Cross-backend differentials on the real machines: the compiled
//! bytecode engine, the scalar interpreter and the bit-parallel engine
//! must be observationally identical on the full DLX — and the
//! verify-side replay guard must reach the same verdict on every
//! backend, so a cached refutation admitted by one engine is admitted
//! by all.

use autopipe::dlx::machine::load_program;
use autopipe::dlx::workload::fib;
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::hdl::{mutate, Backend, Simulate};
use autopipe::synth::{PipelineSynthesizer, PipelinedMachine};
use autopipe::trace::Trace;
use autopipe::verify::{check_selected_traced, refutes_on, BmcOutcome, ObligationBudget};

fn dlx() -> (DlxConfig, PipelinedMachine) {
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .unwrap();
    (cfg, pm)
}

/// 10k cycles of the pipelined DLX running fib: every backend retires
/// the same instruction stream cycle-for-cycle and ends in the same
/// architectural state.
#[test]
fn dlx_10k_cycles_all_backends_agree() {
    let (cfg, pm) = dlx();
    let words: Vec<u32> = fib(15).iter().map(|i| i.encode()).collect();
    let retire = *pm.control.ue.last().expect("stages");
    let mut sims: Vec<Box<dyn Simulate>> =
        Backend::ALL.iter().map(|b| pm.sim(*b).unwrap()).collect();
    for sim in sims.iter_mut() {
        load_program(sim.as_mut(), cfg, &words);
    }
    let nl = &pm.netlist;
    let regs: Vec<_> = nl.reg_ids().collect();
    for cycle in 0..10_000u64 {
        let (reference, rest) = sims.split_first_mut().unwrap();
        reference.settle();
        let want_retire = reference.peek(retire);
        for sim in rest.iter_mut() {
            sim.settle();
            assert_eq!(
                sim.peek(retire),
                want_retire,
                "retire bit diverges at cycle {cycle} on {}",
                sim.backend()
            );
        }
        // Full register compare on a coarse grid keeps the test fast
        // while still catching slow state drift.
        if cycle % 500 == 0 {
            for sim in rest.iter() {
                for &r in &regs {
                    assert_eq!(
                        sim.peek_reg(r),
                        reference.peek_reg(r),
                        "register {:?} diverges at cycle {cycle} on {}",
                        r,
                        sim.backend()
                    );
                }
            }
        }
        for sim in sims.iter_mut() {
            sim.clock();
        }
    }
    // Final architectural state: registers and every memory word.
    let (reference, rest) = sims.split_first_mut().unwrap();
    for sim in rest.iter() {
        for &r in &regs {
            assert_eq!(sim.peek_reg(r), reference.peek_reg(r));
        }
        for (mem, m) in nl.mem_ids().zip(nl.memories()) {
            for a in 0..m.entries() {
                assert_eq!(
                    sim.peek_mem(mem, a),
                    reference.peek_mem(mem, a),
                    "memory {} word {a} on {}",
                    m.name,
                    sim.backend()
                );
            }
        }
    }
}

/// Satellite regression for the serve replay guard: a counterexample
/// extracted from a killed mutant refutes its obligation under *every*
/// simulation backend — interp and compiled must agree, or a cache
/// could serve a verdict that depends on the engine it was checked on.
#[test]
fn killed_mutant_replay_verdict_is_backend_independent() {
    let compiled = autopipe::front::compile_file(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/programs/toy.psm"
    )))
    .unwrap_or_else(|d| panic!("{d}"));
    let plan = compiled.spec.plan().unwrap();
    let pm = PipelineSynthesizer::new(compiled.options)
        .run(&plan)
        .unwrap();
    let catalog = mutate::catalog(&pm.netlist);
    let mut checked = 0;
    for m in &catalog {
        let mutant = mutate::apply(&pm.netlist, m);
        let selected: Vec<usize> = (0..pm.obligations.len()).collect();
        let reports = check_selected_traced(
            &mutant,
            &pm.obligations,
            &selected,
            2,
            1,
            &ObligationBudget::unlimited(),
            &Trace::disabled(),
        )
        .unwrap();
        for rep in &reports {
            let (BmcOutcome::Violated { .. }, Some(cex)) = (&rep.report.outcome, &rep.cex) else {
                continue;
            };
            let net = pm.obligations[rep.index].net;
            let interp = refutes_on(&mutant, net, cex, Backend::Interp).unwrap();
            let compiled = refutes_on(&mutant, net, cex, Backend::Compiled).unwrap();
            assert!(interp, "stored cex must replay on the interpreter");
            assert_eq!(
                interp, compiled,
                "replay verdict differs between interp and compiled on mutant {}",
                m.id
            );
            checked += 1;
        }
        if checked >= 3 {
            return;
        }
    }
    assert!(
        checked > 0,
        "no mutant produced a replayable refutation — harness lost its teeth"
    );
}
