//! Smoke tests for the `dlx_run` and `autopipe` command-line tools.

use std::process::Command;

fn run_bin(bin: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr),
    )
}

/// Like [`run_bin`] but keeps stdout separate from stderr, for tests
/// that pin down the byte-exact report contract.
fn run_bin_stdout(bin: &str, args: &[&str]) -> (Option<i32>, Vec<u8>, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.code(),
        out.stdout,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn run(args: &[&str]) -> (bool, String) {
    let (code, out) = run_bin(env!("CARGO_BIN_EXE_dlx_run"), args);
    (code == Some(0), out)
}

fn autopipe(args: &[&str]) -> (Option<i32>, String) {
    run_bin(env!("CARGO_BIN_EXE_autopipe"), args)
}

fn example(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn write_prog(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, text).expect("write temp program");
    path.to_string_lossy().into_owned()
}

#[test]
fn checked_pipelined_run() {
    let p = write_prog(
        "dlxrun_sum.s",
        "   addi r1, r0, 4
            addi r2, r1, 5
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--cycles", "60"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("checked against the sequential machine"),
        "{out}"
    );
    assert!(out.contains("(9)"), "DMEM[0] = 9 expected: {out}");
}

#[test]
fn isa_only_run_and_mem_preload() {
    let p = write_prog(
        "dlxrun_load.s",
        "   lw   r1, 8(r0)
            addi r2, r1, 1
            sw   r2, 12(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--isa", "--mem", "8=41"]);
    assert!(ok, "{out}");
    assert!(out.contains("(42)"), "{out}");
}

#[test]
fn disassembly_roundtrips_through_stdout() {
    let p = write_prog(
        "dlxrun_dis.s",
        "   addi r1, r0, 7
            beqz r1, 3
            nop
            halt",
    );
    let (ok, out) = run(&[&p, "--disasm"]);
    assert!(ok, "{out}");
    assert!(out.contains("addi r1, r0, 0x7"), "{out}");
    assert!(out.contains("beqz r1, 3"), "{out}");
}

#[test]
fn bad_source_is_reported_with_line() {
    let p = write_prog("dlxrun_bad.s", "nop\nbogus r1\n");
    let (ok, out) = run(&[&p]);
    assert!(!ok);
    assert!(out.contains("line 2"), "{out}");
}

#[test]
fn vcd_file_is_written() {
    let p = write_prog(
        "dlxrun_vcd.s",
        "   addi r1, r0, 1
            halt
            nop",
    );
    let vcd = std::env::temp_dir().join("dlxrun_trace.vcd");
    let vcd_s = vcd.to_string_lossy().into_owned();
    let (ok, out) = run(&[&p, "--no-check", "--cycles", "20", "--vcd", &vcd_s]);
    assert!(ok, "{out}");
    let text = std::fs::read_to_string(&vcd).expect("vcd written");
    assert!(text.contains("$enddefinitions"));
}

#[test]
fn verify_flag_discharges_obligations() {
    let p = write_prog(
        "dlxrun_verify.s",
        "   addi r1, r0, 2
            add  r2, r1, r1
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--verify", "--cycles", "40"]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict: PASS"), "{out}");
    assert!(out.contains("27 proved"), "{out}");
}

#[test]
fn help_and_version_exit_successfully() {
    for args in [&["--help"][..], &["--version"][..]] {
        let (code, out) = run_bin(env!("CARGO_BIN_EXE_dlx_run"), args);
        assert_eq!(code, Some(0), "{out}");
        let (code, out) = autopipe(args);
        assert_eq!(code, Some(0), "{out}");
    }
    let (_, out) = autopipe(&["--version"]);
    assert!(out.contains(env!("CARGO_PKG_VERSION")), "{out}");
}

#[test]
fn autopipe_usage_errors_exit_2() {
    let (code, out) = autopipe(&["bogus", "x.psm"]);
    assert_eq!(code, Some(2), "{out}");
    let (code, _) = autopipe(&[]);
    assert_eq!(code, Some(2));
}

#[test]
fn autopipe_parse_prints_canonical_form() {
    let (code, out) = autopipe(&["parse", &example("toy.psm")]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("machine acc(3) {"), "{out}");
    assert!(out.contains("forward RF;"), "{out}");
}

#[test]
fn autopipe_diagnoses_bad_input_with_exit_1() {
    let bad = std::env::temp_dir().join("autopipe_bad.psm");
    std::fs::write(&bad, "machine m(1) {\n  reg R : 8 writes(0);\n}\n").unwrap();
    let (code, out) = autopipe(&["parse", &bad.to_string_lossy()]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("stage 0 has no definition"), "{out}");
}

#[test]
fn autopipe_synth_emits_verilog_and_proof() {
    let dir = std::env::temp_dir();
    let v = dir.join("autopipe_dlx.v");
    let proof = dir.join("autopipe_dlx_proof.md");
    let (code, out) = autopipe(&[
        "synth",
        &example("dlx.psm"),
        "--emit",
        &v.to_string_lossy(),
        "--proof",
        &proof.to_string_lossy(),
    ]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("pipeline transformation of `dlx5`"), "{out}");
    let verilog = std::fs::read_to_string(&v).unwrap();
    assert!(verilog.contains("module dlx5 ("), "{verilog}");
    assert!(verilog.ends_with("endmodule\n"));
    let doc = std::fs::read_to_string(&proof).unwrap();
    assert!(doc.contains("CORRECTNESS ARGUMENT"), "{doc}");
}

#[test]
fn autopipe_verify_passes_on_toy_machine() {
    let (code, out) = autopipe(&["verify", &example("toy.psm"), "--cycles", "300"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("verdict: PASS"), "{out}");
    assert!(
        out.contains("checked against the sequential machine"),
        "{out}"
    );
}

/// The determinism contract of the parallel engine: the verification
/// report on stdout is byte-identical no matter how many worker
/// threads discharge the obligations, and the wall-clock timing table
/// stays on stderr where it cannot perturb the report.
#[test]
fn autopipe_verify_report_is_identical_across_jobs() {
    let dlx = example("dlx.psm");
    let (code1, out1, err1) = run_bin_stdout(
        env!("CARGO_BIN_EXE_autopipe"),
        &["verify", &dlx, "--cycles", "60", "-j", "1"],
    );
    let (code4, out4, err4) = run_bin_stdout(
        env!("CARGO_BIN_EXE_autopipe"),
        &["verify", &dlx, "--cycles", "60", "-j", "4"],
    );
    assert_eq!(code1, Some(0), "{err1}");
    assert_eq!(code4, Some(0), "{err4}");
    assert_eq!(
        out1, out4,
        "stdout must be byte-identical for -j 1 and -j 4"
    );
    // The timing table is stderr-only and reflects the requested lanes.
    assert!(err1.contains("verify timing (1 jobs)"), "{err1}");
    assert!(err4.contains("verify timing (4 jobs)"), "{err4}");
    assert!(err4.contains("speedup"), "{err4}");
}

/// A 1-stage machine whose every obligation is far too expensive for a
/// 1-second budget: a chain of 160 64-bit multiply-adds. All three of
/// its obligations time out under `--timeout 1`, so the partial report
/// is deterministic by construction — no obligation's solve time
/// straddles the deadline.
fn hard_machine() -> String {
    let mut s = String::from(
        "machine hard(1) {\n  reg X : 64 writes(0) visible;\n  stage 0 S {\n    let a0 = X ^ 64'd1;\n",
    );
    for i in 1..160 {
        s.push_str(&format!(
            "    let a{i} = a{} * a{} + 64'd{i};\n",
            i - 1,
            i - 1
        ));
    }
    s.push_str("    X = a159;\n  }\n}\n");
    write_prog("autopipe_hard.psm", &s)
}

#[test]
fn autopipe_timeout_partial_report_is_identical_across_jobs() {
    let hard = hard_machine();
    let args = |j| {
        [
            "verify".into(),
            hard.clone(),
            "--timeout".into(),
            "1".into(),
            "--cycles".into(),
            "0".into(),
            "-j".into(),
            String::from(j),
        ]
    };
    let a1 = args("1");
    let a4 = args("4");
    let (code1, out1, err1) = run_bin_stdout(
        env!("CARGO_BIN_EXE_autopipe"),
        &a1.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let (code4, out4, err4) = run_bin_stdout(
        env!("CARGO_BIN_EXE_autopipe"),
        &a4.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    // Exit code 3: the budget expired but nothing that finished failed.
    assert_eq!(code1, Some(3), "{err1}");
    assert_eq!(code4, Some(3), "{err4}");
    assert_eq!(
        out1, out4,
        "partial report must be byte-identical for -j 1 and -j 4"
    );
    let text = String::from_utf8_lossy(&out1);
    assert!(text.contains("3 timed out"), "{text}");
    assert!(text.contains("INCOMPLETE"), "{text}");
}

/// The tracing analogue of the report-determinism contract: the
/// `--trace` NDJSON file is byte-identical no matter how many worker
/// threads ran, and `autopipe trace` renders the hot-obligation table
/// from it with the SAT counters populated.
#[test]
fn autopipe_trace_ndjson_is_identical_across_jobs() {
    let dlx = example("dlx.psm");
    let dir = std::env::temp_dir();
    let t1 = dir.join("autopipe_trace_j1.ndjson");
    let t4 = dir.join("autopipe_trace_j4.ndjson");
    let t1_s = t1.to_string_lossy().into_owned();
    let t4_s = t4.to_string_lossy().into_owned();
    let (code1, out1) = autopipe(&[
        "verify", &dlx, "--cycles", "60", "-j", "1", "--trace", &t1_s,
    ]);
    let (code4, out4) = autopipe(&[
        "verify", &dlx, "--cycles", "60", "-j", "4", "--trace", &t4_s,
    ]);
    assert_eq!(code1, Some(0), "{out1}");
    assert_eq!(code4, Some(0), "{out4}");
    let b1 = std::fs::read(&t1).expect("trace written for -j 1");
    let b4 = std::fs::read(&t4).expect("trace written for -j 4");
    assert!(!b1.is_empty());
    assert_eq!(
        b1, b4,
        "--trace NDJSON must be byte-identical for -j 1 and -j 4"
    );
    // Deterministic events never leak wall-clock or lane count.
    let text = String::from_utf8_lossy(&b1);
    assert!(!text.contains("\"jobs\""), "{text}");

    let (code, out) = autopipe(&["trace", &t1_s]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("hot obligations (by SAT conflicts)"), "{out}");
    assert!(out.contains("conflicts"), "{out}");
    assert!(out.contains("per-stage hazard hardware"), "{out}");
    assert!(out.contains("clause-cache summary"), "{out}");
    assert!(out.contains("proved"), "{out}");
}

/// `--profile` writes a Chrome trace-event file that loads in
/// `chrome://tracing` / Perfetto: a JSON array carrying thread-name
/// metadata plus complete events with wall-clock timestamps.
#[test]
fn autopipe_profile_emits_chrome_trace_events() {
    let dir = std::env::temp_dir();
    let prof = dir.join("autopipe_profile.json");
    let prof_s = prof.to_string_lossy().into_owned();
    let (code, out) = autopipe(&["synth", &example("toy.psm"), "--profile", &prof_s]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("profile written to"), "{out}");
    let text = std::fs::read_to_string(&prof).expect("profile written");
    assert!(text.starts_with('['), "{text}");
    assert!(text.contains("\"ph\":\"M\""), "{text}");
    assert!(text.contains("\"ph\":\"X\""), "{text}");
    assert!(text.contains("\"name\":\"parse\""), "{text}");
}

#[test]
fn autopipe_trace_command_rejects_missing_file() {
    let (code, out) = autopipe(&["trace"]);
    assert_eq!(code, Some(2), "{out}");
    let (code, out) = autopipe(&["trace", "/nonexistent/trace.ndjson"]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("cannot"), "{out}");
}

#[test]
fn autopipe_emit_prints_verilog_to_stdout() {
    let (code, out) = autopipe(&["emit", &example("toy.psm")]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("module acc ("), "{out}");
}

#[test]
fn optimize_flag_runs_the_checked_pipeline() {
    let p = write_prog(
        "dlxrun_opt.s",
        "   addi r1, r0, 3
            add  r2, r1, r1
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--optimize", "--cycles", "40"]);
    assert!(ok, "{out}");
    assert!(out.contains("(6)"), "DMEM[0] = 6 expected: {out}");
}

// ---------------------------------------------------------------- lint

fn fixture(name: &str) -> String {
    format!(
        "{}/crates/analyze/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn lint_clean_design_exits_zero() {
    let (code, out) = autopipe(&["lint", &example("dlx.psm")]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("0 error(s)"), "{out}");
    assert!(out.contains("21 read(s) analyzed"), "{out}");
}

#[test]
fn lint_bad_fixture_exits_two_with_sarif_code() {
    let (code, out) = autopipe(&["lint", &fixture("uncovered_read.psm"), "--format", "sarif"]);
    assert_eq!(code, Some(2), "{out}");
    assert!(out.contains("\"ruleId\": \"AP0101\""), "{out}");
    assert!(out.contains("sarif-2.1.0.json"), "{out}");
}

/// `--deny` on a warn-level lint flips a clean exit into exit 2.
#[test]
fn lint_deny_promotes_warning_to_error_exit() {
    let path = fixture("unused_designation.psm");
    let (code, out) = autopipe(&["lint", &path]);
    assert_eq!(code, Some(0), "warn-level by default: {out}");
    let (code, out) = autopipe(&["lint", &path, "--deny", "AP0104"]);
    assert_eq!(code, Some(2), "{out}");
    assert!(out.contains("error[AP0104]"), "{out}");
}

/// `--allow` on an error-level lint downgrades the exit code but the
/// finding stays in the machine-readable record.
#[test]
fn lint_allow_downgrades_exit_but_keeps_record() {
    let path = fixture("uncovered_read.psm");
    let (code, _) = autopipe(&["lint", &path]);
    assert_eq!(code, Some(2));
    let (code, out) = autopipe(&["lint", &path, "--allow", "AP0101", "--format", "json"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("\"code\": \"AP0101\""), "{out}");
    assert!(out.contains("\"level\": \"allowed\""), "{out}");
    assert!(out.contains("\"allowed\": 1"), "{out}");
}

/// Lint codes are addressable by kebab-case name too; a typo is
/// command-line misuse (exit 2 before any analysis).
#[test]
fn lint_accepts_names_and_rejects_unknown_codes() {
    let path = fixture("unused_designation.psm");
    let (code, _) = autopipe(&["lint", &path, "--deny", "unused-designation"]);
    assert_eq!(code, Some(2), "kebab name addresses the same lint");
    let (code, out) = autopipe(&["lint", &path, "--deny", "AP9999"]);
    assert_eq!(code, Some(2));
    assert!(out.contains("unknown lint"), "{out}");
}

/// JSON and SARIF output are byte-deterministic across `-j` values.
#[test]
fn lint_output_is_deterministic_across_jobs() {
    for format in ["json", "sarif"] {
        let path = fixture("never_read.psm");
        let (c1, o1, e1) = run_bin_stdout(
            env!("CARGO_BIN_EXE_autopipe"),
            &["lint", &path, "--format", format, "-j", "1"],
        );
        let (c4, o4, e4) = run_bin_stdout(
            env!("CARGO_BIN_EXE_autopipe"),
            &["lint", &path, "--format", format, "-j", "4"],
        );
        assert_eq!(c1, Some(0), "{e1}");
        assert_eq!(c4, Some(0), "{e4}");
        assert_eq!(o1, o4, "{format} must be byte-identical for -j 1 and -j 4");
        assert!(!o1.is_empty());
    }
}

// ---------------------------------------------------------------- sta

/// The toy pipeline's structural worst path is a false path, so a
/// plain `sta` run exercises top-path pruning, the control audit and
/// the AP0403 warning in one invocation — still exit 0.
#[test]
fn sta_toy_reports_pruning_and_warns() {
    let (code, out) = autopipe(&["sta", &example("toy.psm")]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("static timing report for `acc_pipe`"), "{out}");
    assert!(out.contains("control false-path audit"), "{out}");
    assert!(out.contains("AP0403 (warn)"), "{out}");
    assert!(out.contains("6 pruned (9 in audit)"), "{out}");
}

/// `--deny AP0403` promotes the unsensitizable-critical-path warning
/// to an error exit, mirroring the lint gate.
#[test]
fn sta_deny_gates_timing_findings() {
    let (code, out) = autopipe(&["sta", &example("toy.psm"), "--deny", "AP0403"]);
    assert_eq!(code, Some(2), "{out}");
    assert!(out.contains("AP0403"), "{out}");
}

/// Machine-readable sta output: JSON carries the audit section, SARIF
/// carries the fired timing rule.
#[test]
fn sta_emits_json_and_sarif() {
    let (code, out) = autopipe(&["sta", &example("toy.psm"), "--format", "json"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("\"tool\": \"autopipe-sta\""), "{out}");
    assert!(out.contains("\"audit\""), "{out}");
    assert!(out.contains("\"verdict\": \"false-pruned\""), "{out}");
    let (code, out) = autopipe(&["sta", &example("toy.psm"), "--format", "sarif"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("\"ruleId\": \"AP0403\""), "{out}");
}

/// `--audit 0` disables the per-endpoint sweep; top-path pruning and
/// AP0403 are unaffected.
#[test]
fn sta_audit_zero_disables_the_sweep() {
    let (code, out) = autopipe(&["sta", &example("toy.psm"), "--audit", "0"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(!out.contains("control false-path audit"), "{out}");
    assert!(out.contains("AP0403 (warn)"), "{out}");
}

/// The rendered report is byte-identical for any worker count even
/// though SAT queries are sharded across unrollers.
#[test]
fn sta_output_is_deterministic_across_jobs() {
    for format in ["human", "json"] {
        let path = example("toy.psm");
        let (c1, o1, e1) = run_bin_stdout(
            env!("CARGO_BIN_EXE_autopipe"),
            &["sta", &path, "--format", format, "-j", "1"],
        );
        let (c4, o4, e4) = run_bin_stdout(
            env!("CARGO_BIN_EXE_autopipe"),
            &["sta", &path, "--format", format, "-j", "4"],
        );
        assert_eq!(c1, Some(0), "{e1}");
        assert_eq!(c4, Some(0), "{e4}");
        assert_eq!(o1, o4, "{format} must be byte-identical for -j 1 and -j 4");
        assert!(!o1.is_empty());
    }
}

/// `synth` refuses to run on a design with deny-level lint findings.
#[test]
fn synth_gates_on_lint_errors() {
    let (code, out) = autopipe(&["synth", &fixture("uncovered_read.psm")]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("error[AP0101]"), "{out}");
    let (code, out) = autopipe(&["synth", &fixture("dead_forward.psm")]);
    assert_eq!(code, Some(0), "warnings do not gate: {out}");
    assert!(out.contains("warning[AP0306]"), "{out}");
}

/// `hash` prints one digest line per obligation plus the netlist
/// digest, stable across runs, and the same digests in JSON form.
#[test]
fn hash_prints_stable_canonical_digests() {
    let toy = example("toy.psm");
    let (c1, o1, e1) = run_bin_stdout(env!("CARGO_BIN_EXE_autopipe"), &["hash", &toy]);
    assert_eq!(c1, Some(0), "{e1}");
    let text = String::from_utf8(o1.clone()).unwrap();
    assert!(text.starts_with("design acc\nnetlist "), "{text}");
    assert!(text.lines().count() > 3, "{text}");
    for line in text.lines().skip(2) {
        let digest = line.rsplit(' ').next().unwrap();
        assert_eq!(digest.len(), 32, "32-hex digest expected: {line}");
    }
    // Byte-identical on a second run.
    let (_, o2, _) = run_bin_stdout(env!("CARGO_BIN_EXE_autopipe"), &["hash", &toy]);
    assert_eq!(o1, o2);
    // JSON form carries the same netlist digest.
    let (c3, o3, e3) = run_bin_stdout(
        env!("CARGO_BIN_EXE_autopipe"),
        &["hash", &toy, "--format", "json"],
    );
    assert_eq!(c3, Some(0), "{e3}");
    let json = String::from_utf8(o3).unwrap();
    let netlist = text.lines().nth(1).unwrap().rsplit(' ').next().unwrap();
    assert!(
        json.contains(&format!("\"netlist\":\"{netlist}\"")),
        "{json}"
    );
}

/// `serve` answers protocol lines on stdout (deterministic) and keeps
/// wall-clock timing on stderr; a resubmitted design is fully cached.
#[test]
fn serve_stdio_roundtrip_with_cache_hits() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let toy = example("toy.psm");
    let requests = format!(
        "{{\"id\":1,\"op\":\"submit\",\"path\":\"{toy}\"}}\n\
{{\"id\":2,\"op\":\"submit\",\"path\":\"{toy}\"}}\n\
{{\"op\":\"status\"}}\n{{\"op\":\"shutdown\"}}\n"
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_autopipe"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert!(lines[0].contains("\"cached\":0"), "cold: {}", lines[0]);
    assert!(!lines[1].contains("\"cached\":false"), "warm: {}", lines[1]);
    assert!(lines[1].contains("\"cached\":true"), "warm: {}", lines[1]);
    assert!(lines[2].contains("\"requests\":3"), "{}", lines[2]);
    assert!(lines[3].contains("\"op\":\"shutdown\""), "{}", lines[3]);
    // Timing is out-of-band.
    assert!(stderr.contains("serve: request 2 answered in"), "{stderr}");
    assert!(!stdout.contains(" ms"), "{stdout}");
}

/// Satellite regression for graceful shutdown: SIGTERM on a daemon
/// busy with an in-flight submission drains instead of dying — the
/// response still arrives complete, the exit is clean, and the disk
/// cache holds no torn files, only entries that pass their checksum.
#[cfg(unix)]
#[test]
fn serve_daemon_drains_on_sigterm_without_torn_cache() {
    use autopipe::serve::StoredVerdict;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::process::{Command, Stdio};

    let cache = std::env::temp_dir().join(format!("autopipe_sigterm_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let mut child = Command::new(env!("CARGO_BIN_EXE_autopipe"))
        .args(["serve", "--tcp", "0", "--cache", &cache.to_string_lossy()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = {
        let mut line = String::new();
        loop {
            line.clear();
            if stderr.read_line(&mut line).unwrap() == 0 {
                panic!("daemon exited before announcing its port");
            }
            if let Some(rest) = line.trim().strip_prefix("serve: listening on ") {
                break rest.to_string();
            }
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).expect("daemon accepts");
    writeln!(
        conn,
        "{{\"id\":1,\"op\":\"submit\",\"path\":\"{}\"}}",
        example("toy.psm")
    )
    .unwrap();
    conn.flush().unwrap();
    // Give the session thread time to pick the request up, then kill
    // the daemon while it is (very likely) still solving. Rust's
    // `Child::kill` is SIGKILL, which would defeat the point — send a
    // real SIGTERM.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());

    // The drain contract: the in-flight response arrives complete.
    let mut resp = String::new();
    BufReader::new(conn)
        .read_line(&mut resp)
        .expect("response survives the drain");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.trim_end().ends_with('}'), "torn response: {resp}");

    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "{rest}");
    assert!(rest.contains("serve: signal received, draining"), "{rest}");
    assert!(rest.contains("serve: done"), "{rest}");

    // No torn state: no leftover temporaries, and every stored entry
    // passes its checksum.
    let mut entries = 0;
    let mut dirs = vec![cache.clone()];
    while let Some(d) = dirs.pop() {
        for e in std::fs::read_dir(&d).expect("cache dir exists").flatten() {
            let path = e.path();
            if path.is_dir() {
                dirs.push(path);
                continue;
            }
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "torn temporary left behind: {name}"
            );
            if name.ends_with(".json") {
                entries += 1;
                let text = std::fs::read_to_string(&path).unwrap();
                assert!(
                    StoredVerdict::parse_disk(&text).is_some(),
                    "corrupt entry after drain: {name}"
                );
            }
        }
    }
    assert!(
        entries > 0,
        "the drained submission must have been persisted"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

/// `serve` rejects a positional argument; `hash` requires one.
#[test]
fn serve_and_hash_argument_validation() {
    let (code, out) = autopipe(&["serve", &example("toy.psm")]);
    assert_eq!(code, Some(2), "{out}");
    assert!(out.contains("serve takes no positional argument"), "{out}");
    let (code, out) = autopipe(&["hash"]);
    assert_eq!(code, Some(2), "{out}");
    assert!(out.contains("missing <design.psm>"), "{out}");
}
