//! Smoke tests for the `dlx_run` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dlx_run"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr),
    )
}

fn write_prog(name: &str, text: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, text).expect("write temp program");
    path.to_string_lossy().into_owned()
}

#[test]
fn checked_pipelined_run() {
    let p = write_prog(
        "dlxrun_sum.s",
        "   addi r1, r0, 4
            addi r2, r1, 5
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--cycles", "60"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("checked against the sequential machine"),
        "{out}"
    );
    assert!(out.contains("(9)"), "DMEM[0] = 9 expected: {out}");
}

#[test]
fn isa_only_run_and_mem_preload() {
    let p = write_prog(
        "dlxrun_load.s",
        "   lw   r1, 8(r0)
            addi r2, r1, 1
            sw   r2, 12(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--isa", "--mem", "8=41"]);
    assert!(ok, "{out}");
    assert!(out.contains("(42)"), "{out}");
}

#[test]
fn disassembly_roundtrips_through_stdout() {
    let p = write_prog(
        "dlxrun_dis.s",
        "   addi r1, r0, 7
            beqz r1, 3
            nop
            halt",
    );
    let (ok, out) = run(&[&p, "--disasm"]);
    assert!(ok, "{out}");
    assert!(out.contains("addi r1, r0, 0x7"), "{out}");
    assert!(out.contains("beqz r1, 3"), "{out}");
}

#[test]
fn bad_source_is_reported_with_line() {
    let p = write_prog("dlxrun_bad.s", "nop\nbogus r1\n");
    let (ok, out) = run(&[&p]);
    assert!(!ok);
    assert!(out.contains("line 2"), "{out}");
}

#[test]
fn vcd_file_is_written() {
    let p = write_prog(
        "dlxrun_vcd.s",
        "   addi r1, r0, 1
            halt
            nop",
    );
    let vcd = std::env::temp_dir().join("dlxrun_trace.vcd");
    let vcd_s = vcd.to_string_lossy().into_owned();
    let (ok, out) = run(&[&p, "--no-check", "--cycles", "20", "--vcd", &vcd_s]);
    assert!(ok, "{out}");
    let text = std::fs::read_to_string(&vcd).expect("vcd written");
    assert!(text.contains("$enddefinitions"));
}

#[test]
fn verify_flag_discharges_obligations() {
    let p = write_prog(
        "dlxrun_verify.s",
        "   addi r1, r0, 2
            add  r2, r1, r1
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--verify", "--cycles", "40"]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict: PASS"), "{out}");
    assert!(out.contains("27 proved"), "{out}");
}

#[test]
fn optimize_flag_runs_the_checked_pipeline() {
    let p = write_prog(
        "dlxrun_opt.s",
        "   addi r1, r0, 3
            add  r2, r1, r1
            sw   r2, 0(r0)
            halt
            nop",
    );
    let (ok, out) = run(&[&p, "--optimize", "--cycles", "40"]);
    assert!(ok, "{out}");
    assert!(out.contains("(6)"), "DMEM[0] = 6 expected: {out}");
}
