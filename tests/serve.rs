//! Integration tests for the incremental verification daemon: cache
//! soundness, obligation-granular invalidation, and byte-deterministic
//! responses under concurrent sessions.

use autopipe::hdl::{cone_digest, cone_nets, Node};
use autopipe::serve::{elaborate, serve_tcp, Json, ServeConfig, Server};
use autopipe::trace::ndjson::escape;
use proptest::prelude::*;
use std::sync::Arc;

const TOY: &str = include_str!("../examples/programs/toy.psm");

/// Semantically distinct mutations of the toy machine (plus the
/// original): each pair elaborates to a different netlist.
fn toy_variants() -> Vec<String> {
    vec![
        TOY.to_string(),
        // A different PC step.
        TOY.replace("PC = PC + 4'd1;", "PC = PC + 4'd2;"),
        // A different instruction image.
        TOY.replace(
            "{ 16, 33, 54, 75, 92, 17, 38, 59 }",
            "{ 17, 33, 54, 75, 92, 17, 38, 59 }",
        ),
        // A wider immediate reaching the adder differently.
        TOY.replace("zext(IR[7:4], 8)", "zext(IR[7:2], 8)"),
    ]
}

fn submit_line(id: u64, source: &str, fresh: bool) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"submit\",\"source\":\"{}\",\"fresh\":{fresh}}}",
        escape(source)
    )
}

fn server_with_jobs(jobs: usize) -> Server {
    Server::new(ServeConfig {
        jobs,
        ..ServeConfig::default()
    })
    .expect("in-memory server")
}

/// The full cold+warm response transcript of a request sequence must be
/// byte-identical for every worker count — the serve equivalent of the
/// batch report's `--jobs` determinism contract.
#[test]
fn response_bytes_are_identical_for_any_jobs() {
    let variants = toy_variants();
    let transcript = |jobs: usize| -> String {
        let server = server_with_jobs(jobs);
        let mut all = String::new();
        // Two passes: cold solves, then warm cache hits — both must be
        // deterministic.
        for pass in 0..2 {
            for (i, v) in variants.iter().enumerate() {
                let id = (pass * variants.len() + i) as u64;
                all.push_str(&server.handle_line(&submit_line(id, v, false)));
                all.push('\n');
            }
        }
        all
    };
    let base = transcript(1);
    assert!(base.contains("\"ok\":true"));
    for jobs in [2, 0] {
        assert_eq!(base, transcript(jobs), "jobs={jobs} diverged from jobs=1");
    }
}

/// N concurrent TCP sessions submitting different design variants get
/// exactly the bytes a sequential session would: scheduling may
/// interleave work, but never leak into a response. `fresh` keeps each
/// response independent of what other sessions already cached.
#[test]
fn concurrent_tcp_sessions_match_sequential_responses() {
    let variants = toy_variants();
    // Sequential baseline, fresh on every submit.
    let baseline: Vec<String> = {
        let server = server_with_jobs(1);
        variants
            .iter()
            .map(|v| server.handle_line(&submit_line(7, v, true)))
            .collect()
    };

    let server = Arc::new(server_with_jobs(0));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || serve_tcp(&server, listener))
    };

    const ROUNDS: usize = 3;
    let workers: Vec<_> = variants
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let line = submit_line(7, v, true);
            std::thread::spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let mut got = Vec::new();
                for _ in 0..ROUNDS {
                    let mut conn = std::net::TcpStream::connect(addr).unwrap();
                    conn.write_all(line.as_bytes()).unwrap();
                    conn.write_all(b"\n").unwrap();
                    let mut resp = String::new();
                    BufReader::new(conn).read_line(&mut resp).unwrap();
                    got.push(resp.trim_end().to_string());
                }
                (i, got)
            })
        })
        .collect();
    for w in workers {
        let (i, got) = w.join().unwrap();
        for resp in got {
            assert_eq!(resp, baseline[i], "variant {i} diverged under concurrency");
        }
    }

    // Shut the acceptor down cleanly: wait for the ack (so the stop
    // flag is set) before poking the acceptor loose.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        BufReader::new(conn).read_line(&mut ack).unwrap();
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    }
    let _ = std::net::TcpStream::connect(addr);
    acceptor.join().unwrap().unwrap();
}

/// The acceptance criterion of obligation-granular caching: an edit
/// re-solves exactly the obligations whose canonical digest changed,
/// and serves every other verdict from cache. The toy machine's
/// control obligations share one cone, so the two interesting `.psm`
/// edits are the extremes — a pure data-path edit (different netlist,
/// zero cones touched: the warm resubmit is fully cached) and a hazard
/// edit (every control cone touched: fully re-solved). The
/// [`single_net_edit_invalidates_exactly_cone_obligations`] property
/// below pins the partial case at net granularity.
#[test]
fn edit_resolves_only_obligations_whose_cones_changed() {
    // Different immediate wiring into the EX adder: semantic, but
    // invisible to the stall/forwarding control.
    let data_edit = TOY.replace("zext(IR[7:4], 8)", "zext(IR[7:2], 8)");
    // Different source-register decoding: the forwarding hit compare
    // changes, and every control obligation's cone with it.
    let hazard_edit = TOY.replace("RF[IR[3:2]]", "RF[IR[5:4]]");

    let before = elaborate(TOY, "orig").unwrap();
    let server = server_with_jobs(1);
    server.handle_line(&submit_line(1, TOY, false));

    for (edited, expect_cached) in [(&data_edit, true), (&hazard_edit, false)] {
        let after = elaborate(edited, "edited").unwrap();
        assert_ne!(before.digest, after.digest, "the edit is semantic");
        assert_eq!(before.obligations.len(), after.obligations.len());
        let resp = server.handle_line(&submit_line(2, edited, false));
        let v = Json::parse(&resp).unwrap();
        let obs = v.get("obligations").unwrap().as_arr().unwrap();
        assert_eq!(obs.len(), after.obligations.len());
        for (i, ob) in obs.iter().enumerate() {
            let same_digest = before.cone_digests[i] == after.cone_digests[i];
            assert_eq!(
                same_digest, expect_cached,
                "cone digest expectation for {}",
                after.obligations[i].name
            );
            assert_eq!(
                ob.get("cached").unwrap().as_bool(),
                Some(same_digest),
                "obligation {} must be {} after the edit",
                after.obligations[i].name,
                if same_digest { "cached" } else { "re-solved" }
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any single-net edit of the elaborated toy machine invalidates
    /// exactly the obligations whose logic cones contain the edited
    /// net: digest changes ⇔ cone membership.
    #[test]
    fn single_net_edit_invalidates_exactly_cone_obligations(seed in any::<u64>()) {
        let summary = elaborate(TOY, "toy").unwrap();
        let nl = &summary.netlist;
        let net = nl.nets().nth(seed as usize % nl.node_count()).unwrap();
        // Forcing a constant-zero net to zero is the identity edit;
        // skip it (no digest can change).
        if matches!(nl.node(net), Node::Const { value: 0 }) {
            return Ok(());
        }
        let mut edited = nl.clone();
        edited.force_const(net, 0);
        for (i, ob) in summary.obligations.iter().enumerate() {
            let in_cone = cone_nets(nl, &[ob.net]).contains(&net);
            let changed =
                cone_digest(&edited, &[ob.net]) != summary.cone_digests[i];
            prop_assert_eq!(
                changed, in_cone,
                "net {:?} / obligation {}: digest changed={} but cone membership={}",
                net, &ob.name, changed, in_cone
            );
        }
    }
}

/// The release-profile version of the concurrency test, on the real DLX
/// machine. Debug-profile SAT on DLX takes minutes, so this is opt-in:
/// `cargo test --release --test serve -- --ignored`.
#[test]
#[ignore = "DLX solving is release-profile work; CI's serve-smoke covers the binary path"]
fn dlx_concurrent_sessions_are_deterministic() {
    let dlx = include_str!("../examples/programs/dlx.psm");
    let variants = [
        dlx.to_string(),
        // A different PC reset vector changes the init image but
        // leaves the forwarding control intact.
        dlx.replacen(
            "reg PC   : 32 writes(1) init 1",
            "reg PC   : 32 writes(1) init 2",
            1,
        ),
    ];
    let transcript = |jobs: usize| -> String {
        let server = server_with_jobs(jobs);
        let mut all = String::new();
        for (i, v) in variants.iter().enumerate() {
            all.push_str(&server.handle_line(&submit_line(i as u64, v, false)));
            all.push('\n');
        }
        all
    };
    let base = transcript(1);
    assert_eq!(base, transcript(0), "jobs=0 diverged from jobs=1 on DLX");
}
