//! Chaos-hardening integration tests: the kill-matrix sweep stays
//! byte-deterministic across worker counts, the `autopipe chaos` CLI
//! reports a full recovery on the toy design, and — under randomized
//! fault plans — recovered transcripts never diverge and a cached
//! `Refuted` verdict that survives disk faults still passes the
//! simulator replay guard.

use autopipe::hdl::{cone_digest, mutate, Backend, NetId, Netlist};
use autopipe::serve::{
    run_chaos, CacheKey, ChaosReport, ChaosSettings, ProofCache, ServeConfig, Server, StoredVerdict,
};
use autopipe::synth::{ObligationClass, PipelineSynthesizer};
use autopipe::trace::Trace;
use autopipe::verify::bmc::CexTrace;
use autopipe::verify::chaos::{Fault, FaultPlan, ALWAYS};
use autopipe::verify::{check_selected_traced, refutes_on, BmcOutcome, ObligationBudget};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const TOY: &str = include_str!("../examples/programs/toy.psm");

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("autopipe_chaos_it_{tag}_{}", std::process::id()))
}

// ------------------------------------------------------------- sweep

fn sweep(jobs: usize, tag: &str) -> ChaosReport {
    let settings = ChaosSettings {
        jobs,
        ..ChaosSettings::new(scratch_dir(tag))
    };
    run_chaos(TOY, &settings, &Trace::disabled()).expect("sweep runs")
}

/// The chaos analogue of the verify report's `--jobs` determinism
/// contract: the rendered kill matrix is byte-identical no matter how
/// many solver lanes the scenario servers ran — wall-clock recovery
/// latencies and scheduling-dependent storm counts live only in the
/// BENCH_8 record, never in the report.
#[test]
fn sweep_report_is_byte_identical_across_jobs() {
    let r1 = sweep(1, "j1");
    let r4 = sweep(4, "j4");
    assert!(r1.passed(), "jobs=1 sweep must pass:\n{r1}");
    assert!(r4.passed(), "jobs=4 sweep must pass:\n{r4}");
    assert_eq!(
        r1.to_string(),
        r4.to_string(),
        "kill-matrix report must be byte-identical for jobs=1 and jobs=4"
    );
    let text = r1.to_string();
    assert!(
        text.contains("chaos verdict: RECOVERED 8/8, zero unsound verdicts"),
        "{text}"
    );
    for fault in Fault::CATALOG {
        assert!(text.contains(fault.name()), "missing row: {}", fault.name());
    }
    // Per-fault injected counts are a pure function of the seed, so
    // they too must agree — and every fault must actually have fired.
    for (a, b) in r1.faults.iter().zip(&r4.faults) {
        assert_eq!(a.injected, b.injected, "{}", a.fault.name());
        assert!(a.injected > 0, "{} never fired", a.fault.name());
    }
}

/// `autopipe chaos` end to end on the toy design: exit 0, the
/// RECOVERED verdict on stdout, and a parseable BENCH_8 record.
#[test]
fn chaos_cli_runs_the_kill_matrix() {
    let toy = format!("{}/examples/programs/toy.psm", env!("CARGO_MANIFEST_DIR"));
    let bench =
        std::env::temp_dir().join(format!("autopipe_chaos_bench_{}.json", std::process::id()));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_autopipe"))
        .args([
            "chaos",
            &toy,
            "--seed",
            "0",
            "-j",
            "2",
            "--json",
            &bench.to_string_lossy(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stdout}\n{stderr}");
    assert!(
        stdout.contains("chaos verdict: RECOVERED 8/8, zero unsound verdicts"),
        "{stdout}"
    );
    assert!(!stdout.contains("UNSOUND"), "{stdout}");
    assert!(stderr.contains("bench record written to"), "{stderr}");
    let record = std::fs::read_to_string(&bench).expect("bench record written");
    let v = autopipe::serve::Json::parse(&record).expect("bench record parses");
    assert_eq!(
        v.get("schema").unwrap().as_str(),
        Some("autopipe-bench-8"),
        "{record}"
    );
    assert_eq!(v.get("recovered").unwrap().as_u64(), Some(8), "{record}");
    assert_eq!(v.get("unsound").unwrap().as_bool(), Some(false), "{record}");
    assert_eq!(
        v.get("faults").unwrap().as_arr().unwrap().len(),
        Fault::CATALOG.len(),
        "{record}"
    );
    let _ = std::fs::remove_file(&bench);
}

// ---------------------------------------------- randomized fault plans

/// Cold+warm submit transcript of the toy design on a server carrying
/// `plan`, `jobs` solver lanes.
fn faulty_transcript(jobs: usize, plan: FaultPlan) -> String {
    let server = Server::new(ServeConfig {
        jobs,
        chaos: Arc::new(plan),
        ..ServeConfig::default()
    })
    .expect("in-memory server");
    let src = autopipe::trace::ndjson::escape(TOY);
    let mut all = String::new();
    for id in 0..2u64 {
        all.push_str(&server.handle_line(&format!(
            "{{\"id\":{id},\"op\":\"submit\",\"source\":\"{src}\"}}"
        )));
        all.push('\n');
    }
    all
}

/// The solver-side faults a transcript can recover from in-process
/// (cache faults need a disk store; disconnects need a transport).
fn solver_plan(seed: u64, rates: (u8, u8, u8)) -> FaultPlan {
    FaultPlan::new(seed)
        .with(Fault::WorkerPanic, rates.0)
        .with(Fault::SlowSolver, rates.1)
        .with(Fault::BudgetStorm, rates.2)
        .with_slow_delay(std::time::Duration::from_millis(1))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// For *any* fault-plan seed and rate mix, recovery is invisible in
    /// the response bytes: the transcript matches the fault-free one,
    /// byte for byte, at every worker count — panicked obligations were
    /// retried (never `Crashed`), collapsed budgets climbed back, and
    /// injected delays never reordered anything observable.
    #[test]
    fn recovered_transcripts_are_byte_deterministic(
        seed in any::<u64>(),
        rates in (any::<u8>(), any::<u8>(), any::<u8>()),
    ) {
        let clean = faulty_transcript(1, FaultPlan::none());
        prop_assert!(clean.contains("\"ok\":true"));
        for jobs in [1usize, 4] {
            let faulty = faulty_transcript(jobs, solver_plan(seed, rates));
            prop_assert_eq!(
                &clean, &faulty,
                "seed {} rates {:?} jobs {} diverged from the fault-free transcript",
                seed, rates, jobs
            );
        }
    }
}

// ------------------------------------------------------ replay guard

/// A real refutation to cache: the first killed mutant of the toy
/// pipeline that yields a replayable counterexample. Computed once —
/// synthesis plus mutant BMC is the expensive part of these tests.
fn refutation() -> &'static (Netlist, NetId, usize, CexTrace) {
    static FIXTURE: OnceLock<(Netlist, NetId, usize, CexTrace)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let compiled = autopipe::front::compile(TOY, "toy.psm").unwrap_or_else(|d| panic!("{d}"));
        let plan = compiled.spec.plan().unwrap();
        let pm = PipelineSynthesizer::new(compiled.options)
            .run(&plan)
            .unwrap();
        let selected: Vec<usize> = (0..pm.obligations.len()).collect();
        for m in &mutate::catalog(&pm.netlist) {
            let mutant = mutate::apply(&pm.netlist, m);
            let reports = check_selected_traced(
                &mutant,
                &pm.obligations,
                &selected,
                2,
                1,
                &ObligationBudget::unlimited(),
                &Trace::disabled(),
            )
            .unwrap();
            for rep in &reports {
                if let (BmcOutcome::Violated { frame }, Some(cex)) = (&rep.report.outcome, &rep.cex)
                {
                    let net = pm.obligations[rep.index].net;
                    return (mutant, net, *frame, cex.clone());
                }
            }
        }
        panic!("no mutant produced a replayable refutation");
    })
}

fn refuted_key(mutant: &Netlist, net: NetId) -> CacheKey {
    CacheKey {
        digest: cone_digest(mutant, &[net]),
        class: ObligationClass::Inductive,
        max_k: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Satellite regression: a cached `Refuted` verdict stored under a
    /// random disk-fault plan is either served *identically* — its
    /// counterexample still replaying on the bit-parallel engine — or
    /// not served at all (quarantined/retried), after which a healthy
    /// re-store heals the stem. Corruption must never mutate evidence.
    #[test]
    fn cached_refutations_replay_after_fault_recovery(seed in any::<u64>()) {
        let (mutant, net, frame, cex) = refutation();
        let verdict = StoredVerdict::Refuted { frame: *frame, cex: cex.clone() };
        let key = refuted_key(mutant, *net);
        let disk_faults = [Fault::TornCacheWrite, Fault::BitFlipEntry, Fault::CacheWriteError];
        let fault = disk_faults[(seed % 3) as usize];
        let dir = scratch_dir(&format!("replay_{seed:x}"));
        let _ = std::fs::remove_dir_all(&dir);

        let writer = ProofCache::open_with_chaos(
            Some(&dir), 64, None, Arc::new(FaultPlan::new(seed).with(fault, ALWAYS)),
        ).unwrap();
        writer.put(&key, &verdict);
        writer.close();
        drop(writer);

        // A clean cache on the same store: whatever it serves must be
        // the exact verdict, and its evidence must still replay.
        let reader = ProofCache::open(Some(&dir), 64, None).unwrap();
        match reader.get(&key) {
            Some(StoredVerdict::Refuted { frame: f, cex: c }) => {
                prop_assert_eq!(f, *frame);
                prop_assert_eq!(&c, cex);
                prop_assert!(
                    refutes_on(mutant, *net, &c, Backend::Bitparallel).unwrap(),
                    "served counterexample must replay on the Sim64 engine"
                );
            }
            Some(other) => prop_assert!(false, "corruption changed the verdict: {other:?}"),
            None => {
                // Damaged on the way in; the store must have contained
                // the damage (quarantine or nothing), and a healthy
                // re-store heals the stem.
                let (_, corrupt, _) = reader.fsck();
                prop_assert_eq!(corrupt, 0, "corrupt entry left in the live store");
                reader.put(&key, &verdict);
                prop_assert_eq!(reader.get(&key), Some(verdict.clone()));
            }
        }
        let (_, corrupt, tmp) = reader.fsck();
        prop_assert_eq!((corrupt, tmp), (0, 0), "store must end clean");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite regression (hand-made corruption, no injection): flip one
/// bit of a stored entry on disk and the checksum guard must refuse to
/// serve it — the entry quarantines, and a re-store heals the stem.
#[test]
fn hand_flipped_disk_entry_is_never_served() {
    let (mutant, net, frame, cex) = refutation();
    let verdict = StoredVerdict::Refuted {
        frame: *frame,
        cex: cex.clone(),
    };
    let key = refuted_key(mutant, *net);
    let dir = scratch_dir("bitflip");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let cache = ProofCache::open(Some(&dir), 64, None).unwrap();
        cache.put(&key, &verdict);
    }
    // Flip one payload bit in the single stored entry file.
    let stem = key.stem();
    let path = dir.join("v1").join(&stem[..2]).join(format!("{stem}.json"));
    let mut bytes = std::fs::read(&path).expect("entry on disk");
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let cache = ProofCache::open(Some(&dir), 64, None).unwrap();
    assert_eq!(cache.get(&key), None, "flipped entry must read as a miss");
    assert_eq!(
        cache.quarantine_entries(),
        1,
        "flipped entry must quarantine"
    );
    assert_eq!(cache.stats().quarantined, 1);
    // Re-prove-and-store heals; the healthy entry then replays.
    cache.put(&key, &verdict);
    match cache.get(&key) {
        Some(StoredVerdict::Refuted { cex: c, .. }) => {
            assert!(refutes_on(mutant, *net, &c, Backend::Bitparallel).unwrap());
        }
        other => panic!("healed entry must serve: {other:?}"),
    }
    let (entries, corrupt, tmp) = cache.fsck();
    assert_eq!((entries, corrupt, tmp), (1, 0, 0));
    let _ = std::fs::remove_dir_all(&dir);
}
