//! Whole-stack end-to-end: assemble source text, pipeline the DLX,
//! execute under the checker, and compare architectural results with
//! the golden ISA simulator.

use autopipe::dlx::asm::assemble;
use autopipe::dlx::machine::load_program;
use autopipe::dlx::workload::fib;
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig, IsaSim};
use autopipe::synth::{MuxTopology, PipelineSynthesizer, PipelinedMachine};
use autopipe::verify::Cosim;

fn dlx(topology: MuxTopology) -> (DlxConfig, PipelinedMachine) {
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options().with_topology(topology))
        .run(&plan)
        .unwrap();
    (cfg, pm)
}

/// Runs `prog` on the pipelined DLX (checker on) until the ISA
/// simulator's halt point, then compares DMEM.
fn run_and_compare(prog: &[autopipe::dlx::Instr], max_cycles: u64) {
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
    let mut isa = IsaSim::new(DlxConfig::default(), &words);
    isa.run(100_000);
    assert!(isa.halted(), "reference must halt");

    for topology in [MuxTopology::Chain, MuxTopology::Tree] {
        let (cfg, pm) = dlx(topology);
        let mut cosim = Cosim::new(&pm).unwrap();
        load_program(cosim.sim_mut(), cfg, &words);
        load_program(cosim.seq_sim_mut(), cfg, &words);
        // Run until the halt has certainly retired.
        let needed = isa.retired * 3 + 40;
        cosim.run(needed.min(max_cycles)).unwrap();
        let dmem = {
            let nl = cosim.sim_mut().netlist();
            nl.mem_ids()
                .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
                .unwrap()
        };
        for (i, want) in isa.dmem.iter().enumerate() {
            assert_eq!(
                cosim.sim_mut().peek_mem(dmem, i),
                u64::from(*want),
                "DMEM[{i}] ({topology:?})"
            );
        }
    }
}

#[test]
fn fibonacci_matches_reference() {
    run_and_compare(&fib(15), 2000);
}

#[test]
fn bubble_sort_matches_reference() {
    // Seed DMEM[0..5] with stores, then bubble-sort in place (one
    // translation unit so the absolute jumps resolve correctly).
    let prog = assemble(
        "       addi r1, r0, 9
                sw   r1, 0(r0)
                addi r1, r0, 4
                sw   r1, 4(r0)
                addi r1, r0, 7
                sw   r1, 8(r0)
                addi r1, r0, 1
                sw   r1, 12(r0)
                addi r1, r0, 8
                sw   r1, 16(r0)
                addi r1, r0, 5     ; outer counter
        outer:  subi r1, r1, 1
                beqz r1, done
                nop
                addi r2, r0, 0     ; ptr
                add  r3, r1, r0    ; inner counter
        inner:  lw   r4, 0(r2)
                lw   r5, 4(r2)
                sltu r6, r5, r4
                beqz r6, noswap
                nop
                sw   r5, 0(r2)
                sw   r4, 4(r2)
        noswap: addi r2, r2, 4
                subi r3, r3, 1
                bnez r3, inner
                nop
                j    outer
                nop
        done:   halt
                nop",
    )
    .unwrap();
    run_and_compare(&prog, 8000);
}

#[test]
fn assembled_subroutine_with_jal_matches_reference() {
    let prog = assemble(
        "        addi r1, r0, 6
                 jal  double     ; r31 := return
                 nop             ; delay slot
                 sw   r2, 0(r0)  ; 12
                 jal  double
                 nop
                 sw   r2, 4(r0)  ; 24
                 halt
                 nop
         double: add  r2, r1, r1
                 add  r1, r2, r0
                 jr   r31
                 nop",
    )
    .unwrap();
    run_and_compare(&prog, 2000);
}
