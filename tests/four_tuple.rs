//! The paper's thesis in one test: a critical design should ship as a
//! **four-tuple** — (1) the design, (2) a specification, (3) a
//! human-readable proof, (4) a machine-verified proof — and the tool
//! generates the proofs alongside the hardware.
//!
//! This test produces all four for the five-stage DLX and checks each.

use autopipe::dlx::machine::load_program;
use autopipe::dlx::workload::{random_program, HazardProfile};
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::synth::PipelineSynthesizer;
use autopipe::verify::bmc::BmcOutcome;
use autopipe::verify::{check_obligations, Cosim};

#[test]
fn the_four_tuple() {
    // (1) The design: the generated pipelined machine.
    let cfg = DlxConfig::small();
    let plan = build_dlx_spec(cfg).unwrap().plan().unwrap();
    let pm = PipelineSynthesizer::new(dlx_synth_options())
        .run(&plan)
        .unwrap();
    assert!(pm.netlist.validate().is_ok());

    // (2) The specification: the prepared sequential machine of the
    // same plan — the paper's correctness reference. The cosim checker
    // holds the design to it cycle by cycle.
    let prog = random_program(cfg, 12, HazardProfile::default(), 1);
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
    let mut cosim = Cosim::new(&pm).unwrap();
    load_program(cosim.sim_mut(), cfg, &words);
    load_program(cosim.seq_sim_mut(), cfg, &words);
    cosim.run(150).expect("data consistency R_I^T = R_S^i");

    // (3) The human-readable proof: generated, instantiating the
    // paper's lemma structure for this concrete machine.
    let doc = pm.proof_document();
    for needle in [
        "Lemma 1",
        "Lemma 2",
        "Lemma 3",
        "Data consistency",
        "Liveness",
        "GPR",
    ] {
        assert!(doc.contains(needle), "proof document misses {needle}");
    }

    // (4) The machine-verified proof: every emitted obligation is
    // discharged by SAT (combinational) or k-induction (temporal).
    let reports = check_obligations(&pm.netlist, &pm.obligations, 2).unwrap();
    assert!(!reports.is_empty());
    for r in reports {
        assert!(
            matches!(r.outcome, BmcOutcome::Proved { .. }),
            "obligation {} not proved: {:?}",
            r.name,
            r.outcome
        );
    }
}
