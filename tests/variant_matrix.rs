//! Capstone matrix: every supported DLX pipeline variant goes through
//! the one-call verifier and must pass — and the deliberately broken
//! variant must fail.

use autopipe::dlx::machine::dlx_interlock_options;
use autopipe::dlx::workload::{random_program, HazardProfile};
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::synth::{
    ForwardingSpec, MuxTopology, PipelineSynthesizer, PipelinedMachine, SynthOptions,
};
use autopipe::verify::{verify_machine, VerifySettings};

/// Builds the variant with a hazard-dense program **baked into** the
/// instruction ROM, so the one-call verifier's co-simulation and
/// miters actually exercise forwarding.
fn build(cfg: DlxConfig, options: SynthOptions) -> PipelinedMachine {
    let prog = random_program(cfg, 12, HazardProfile::serial(), 9);
    let mut spec = build_dlx_spec(cfg).unwrap();
    for f in &mut spec.files {
        if f.name == "IMEM" {
            f.init = prog.iter().map(|i| u64::from(i.encode())).collect();
        }
    }
    let plan = spec.plan().unwrap();
    PipelineSynthesizer::new(options).run(&plan).unwrap()
}

fn settings() -> VerifySettings {
    VerifySettings {
        max_k: 2,
        equiv_writes: 0, // the cheap per-variant pass; equivalence runs elsewhere
        equiv_depth: 0,
        cosim_cycles: 120,
        jobs: 0,
        timeout: None,
    }
}

#[test]
fn all_supported_variants_verify() {
    let cfg = DlxConfig::small();
    let variants: Vec<(&str, PipelinedMachine)> = vec![
        ("chain", build(cfg, dlx_synth_options())),
        (
            "tree",
            build(cfg, dlx_synth_options().with_topology(MuxTopology::Tree)),
        ),
        ("interlock", build(cfg, dlx_interlock_options())),
        (
            "no-transitive-dhaz",
            build(cfg, dlx_synth_options().without_transitive_dhaz()),
        ),
        ("optimized", build(cfg, dlx_synth_options()).optimized()),
        (
            "ext-stalls",
            build(cfg, dlx_synth_options().with_ext_stalls()),
        ),
    ];
    for (name, pm) in variants {
        let report = verify_machine(&pm, settings());
        assert!(report.ok(), "variant `{name}` failed:\n{report}");
    }
}

#[test]
fn the_broken_variant_fails() {
    let cfg = DlxConfig::small();
    let pm = build(
        cfg,
        SynthOptions::new()
            .with_forwarding(ForwardingSpec::unprotected("GPR"))
            .with_forwarding(ForwardingSpec::forward_from_write_stage("DPC")),
    );
    let report = verify_machine(&pm, settings());
    assert!(
        !report.ok(),
        "the unprotected pipeline must be caught:\n{report}"
    );
}
